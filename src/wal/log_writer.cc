#include "wal/log_writer.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/strutil.h"

namespace ode {
namespace wal {

namespace {

Status Errno(const char* op, const std::string& path) {
  return Status::Internal(
      StrFormat("%s '%s': %s", op, path.c_str(), std::strerror(errno)));
}

}  // namespace

std::string ShardLogPath(const std::string& dir, size_t index) {
  return StrFormat("%s/shard-%zu.wal", dir.c_str(), index);
}

Status LogWriter::Open(const std::string& path, uint64_t start_lsn,
                       const WalOptions& options) {
  Close();
  fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC,
               0644);
  if (fd_ < 0) return Errno("open", path);
  path_ = path;
  options_ = options;
  last_lsn_.store(start_lsn, std::memory_order_relaxed);
  unsynced_records_.store(0, std::memory_order_relaxed);
  last_sync_ = std::chrono::steady_clock::now();
  has_failed_.store(false, std::memory_order_relaxed);
  failed_ = Status::OK();
  pending_.clear();
  writing_.clear();
  if (buffered()) {
    flush_stop_ = false;
    flush_requested_ = false;
    flusher_ = std::thread([this] { FlusherLoop(); });
  }
  return Status::OK();
}

Status LogWriter::GetFailed() {
  std::lock_guard<std::mutex> lock(failed_mu_);
  return failed_;
}

void LogWriter::SetFailed(const Status& s) {
  {
    std::lock_guard<std::mutex> lock(failed_mu_);
    if (failed_.ok()) failed_ = s;
  }
  has_failed_.store(true, std::memory_order_release);
}

Status LogWriter::WriteFully(const char* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    ssize_t n = ::write(fd_, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      // A partial record may now sit at the tail; the CRC framing makes it
      // indistinguishable from a torn write and recovery truncates it.
      Status s = Errno("write", path_);
      SetFailed(s);
      return s;
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status LogWriter::Append(WalRecord* record) {
  if (fd_ < 0) return Status::FailedPrecondition("wal writer is not open");
  if (has_failed_.load(std::memory_order_acquire)) return GetFailed();
  record->lsn = last_lsn_.load(std::memory_order_relaxed) + 1;
  buf_.clear();
  ODE_RETURN_IF_ERROR(AppendRecord(&buf_, *record));
  if (buffered()) {
    // Group commit: stage the framed record in memory; the flusher turns
    // whole groups into one write + one fsync. The poster pays a memcpy.
    std::lock_guard<std::mutex> lock(buf_mu_);
    pending_.append(buf_);
  } else {
    ODE_RETURN_IF_ERROR(WriteFully(buf_.data(), buf_.size()));
  }
  last_lsn_.fetch_add(1, std::memory_order_relaxed);
  appends_.fetch_add(1, std::memory_order_relaxed);
  bytes_written_.fetch_add(buf_.size(), std::memory_order_relaxed);
  uint64_t unsynced =
      unsynced_records_.fetch_add(1, std::memory_order_relaxed) + 1;

  switch (options_.fsync) {
    case FsyncPolicy::kAlways: {
      std::lock_guard<std::mutex> lock(sync_mu_);
      return FlushAndSyncLocked();
    }
    case FsyncPolicy::kEveryN:
      if (unsynced >= options_.fsync_every_n) {
        // Hand the group to the flusher; the poster keeps going. Setting
        // the flag under the mutex makes the notify race-free.
        {
          std::lock_guard<std::mutex> lock(flush_mu_);
          flush_requested_ = true;
        }
        flush_cv_.notify_one();
      }
      return Status::OK();
    case FsyncPolicy::kEveryMs:
      // The flusher wakes on its own interval clock; nothing to do here.
      return Status::OK();
    case FsyncPolicy::kNever:
      return Status::OK();
  }
  return Status::OK();
}

void LogWriter::FlusherLoop() {
  std::unique_lock<std::mutex> lock(flush_mu_);
  while (!flush_stop_) {
    if (options_.fsync == FsyncPolicy::kEveryMs) {
      flush_cv_.wait_for(lock, options_.fsync_interval, [&] {
        return flush_stop_ || flush_requested_;
      });
    } else {
      flush_cv_.wait(lock,
                     [&] { return flush_stop_ || flush_requested_; });
    }
    if (flush_stop_) break;
    flush_requested_ = false;
    lock.unlock();
    if (unsynced_records_.load(std::memory_order_relaxed) > 0) {
      std::lock_guard<std::mutex> sync_lock(sync_mu_);
      // Failure is sticky; the next Append reports it.
      (void)FlushAndSyncLocked();
    }
    lock.lock();
  }
}

void LogWriter::StopFlusher() {
  if (!flusher_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(flush_mu_);
    flush_stop_ = true;
  }
  flush_cv_.notify_one();
  flusher_.join();
}

Status LogWriter::Sync() {
  if (fd_ < 0) return Status::OK();
  if (has_failed_.load(std::memory_order_acquire)) return GetFailed();
  if (unsynced_records_.load(std::memory_order_relaxed) == 0) {
    return Status::OK();
  }
  std::lock_guard<std::mutex> lock(sync_mu_);
  return FlushAndSyncLocked();
}

Status LogWriter::FlushAndSyncLocked() {
  // Take the staged group. Everything appended so far is either already
  // on the file or in this group, so the count read under buf_mu_ is
  // exactly what this fsync will cover; records staged afterwards stay in
  // the unsynced count. sync_mu_ (held by the caller) keeps groups
  // hitting the file in lsn order.
  uint64_t covered;
  {
    std::lock_guard<std::mutex> lock(buf_mu_);
    std::swap(writing_, pending_);
    covered = unsynced_records_.load(std::memory_order_relaxed);
  }
  if (!writing_.empty()) {
    Status s = WriteFully(writing_.data(), writing_.size());
    writing_.clear();
    ODE_RETURN_IF_ERROR(s);
  }
  if (::fsync(fd_) != 0) {
    Status s = Errno("fsync", path_);
    SetFailed(s);
    return s;
  }
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  unsynced_records_.fetch_sub(covered, std::memory_order_relaxed);
  last_sync_ = std::chrono::steady_clock::now();
  return Status::OK();
}

Status LogWriter::Truncate() {
  if (fd_ < 0) return Status::FailedPrecondition("wal writer is not open");
  if (has_failed_.load(std::memory_order_acquire)) return GetFailed();
  std::lock_guard<std::mutex> lock(sync_mu_);
  {
    // Staged records are all <= the checkpoint's covered lsn (producers
    // are gated out while this runs); drop them with the file bytes.
    std::lock_guard<std::mutex> buf_lock(buf_mu_);
    pending_.clear();
    unsynced_records_.store(0, std::memory_order_relaxed);
  }
  if (::ftruncate(fd_, 0) != 0) {
    Status s = Errno("ftruncate", path_);
    SetFailed(s);
    return s;
  }
  if (::fsync(fd_) != 0) {
    Status s = Errno("fsync", path_);
    SetFailed(s);
    return s;
  }
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  last_sync_ = std::chrono::steady_clock::now();
  return Status::OK();
}

void LogWriter::Close() {
  StopFlusher();
  if (fd_ >= 0) {
    if (unsynced_records_.load(std::memory_order_relaxed) > 0 &&
        !has_failed_.load(std::memory_order_acquire)) {
      // Final group: no threads left, but the locks are cheap and keep
      // the invariants obvious.
      std::lock_guard<std::mutex> lock(sync_mu_);
      (void)FlushAndSyncLocked();
    }
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace wal
}  // namespace ode
