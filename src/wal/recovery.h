#ifndef ODE_WAL_RECOVERY_H_
#define ODE_WAL_RECOVERY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "wal/checkpoint.h"
#include "wal/log_format.h"
#include "wal/log_reader.h"

namespace ode {
namespace wal {

/// Everything on disk under a durability directory, assembled for replay.
/// LoadDurableState never mutates the log or checkpoint files (a crash
/// during recovery simply reruns it); the only write is unlinking a stale
/// checkpoint.tmp left by a crash mid-checkpoint.
struct RecoveredState {
  bool had_checkpoint = false;
  CheckpointData checkpoint;  ///< Default-constructed when none on disk.

  /// Per old log-file index: the records recovery must replay, already
  /// filtered down to lsn > covered_lsn (records at or below it are inside
  /// the checkpoint snapshot — the crash-between-rename-and-truncate case).
  std::map<size_t, std::vector<WalRecord>> replay;
  /// Per old log-file index: the highest lsn ever assigned in that file —
  /// max(covered_lsn, last lsn read). Writers reopening a file must start
  /// above this so new records always sort after covered history.
  std::map<size_t, uint64_t> file_last_lsn;

  uint64_t replay_records = 0;    ///< Total records across `replay`.
  uint64_t skipped_covered = 0;   ///< Records dropped by the lsn filter.
  uint64_t torn_files = 0;        ///< Files with a discarded invalid tail.
  uint64_t torn_bytes = 0;        ///< Bytes across all discarded tails.
  std::vector<std::string> notes; ///< Human-readable recovery log.

  bool found() const {
    return had_checkpoint || !file_last_lsn.empty();
  }
};

/// Reads the checkpoint (if any) and every shard-*.wal under `dir`. Torn
/// tails are tolerated and reported via notes/torn_*; a checkpoint that
/// exists but fails its checksum is a hard error (silently dropping it
/// would replay the whole log against an empty database).
Result<RecoveredState> LoadDurableState(const std::string& dir);

}  // namespace wal
}  // namespace ode

#endif  // ODE_WAL_RECOVERY_H_
