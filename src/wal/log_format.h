#ifndef ODE_WAL_LOG_FORMAT_H_
#define ODE_WAL_LOG_FORMAT_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/value.h"

namespace ode {
namespace wal {

/// CRC-32 (IEEE 802.3 polynomial, reflected). Every WAL record frames its
/// payload with this checksum so recovery can tell a torn tail or a
/// bit-flipped record from valid history.
uint32_t Crc32(const void* data, size_t n);

/// When the log writer calls fsync(2):
///  * kAlways   — after every record. A Post that returned OK is durable
///                (the ACK-implies-durable setting; slowest).
///  * kEveryN   — group commit: after every `fsync_every_n` records (and
///                at Sync/Truncate/Stop barriers). A crash can lose up to
///                N-1 recent *acknowledged-but-unsynced* records; they are
///                replayed by the client on reconnect (docs/DURABILITY.md).
///  * kEveryMs  — after a record if `fsync_interval` elapsed since the
///                last sync. Same loss window, bounded in time not count.
///  * kNever    — only at explicit Sync/Truncate/Stop barriers (bench
///                baseline; not a durability mode).
enum class FsyncPolicy { kAlways, kEveryN, kEveryMs, kNever };

const char* FsyncPolicyName(FsyncPolicy policy);

/// Durability configuration carried inside runtime::IngestOptions. An
/// empty `dir` disables the subsystem entirely (zero hot-path cost).
struct WalOptions {
  /// Directory holding shard-<i>.wal logs and the checkpoint file.
  /// Created (one level) if missing. Empty = durability off.
  std::string dir;
  FsyncPolicy fsync = FsyncPolicy::kEveryN;
  size_t fsync_every_n = 64;
  std::chrono::milliseconds fsync_interval{5};

  bool enabled() const { return !dir.empty(); }
};

/// One durable event: what Shard::Enqueue accepted into a queue, in queue
/// order. `lsn` is per-shard-log monotone (assigned by LogWriter).
/// `producer_id`/`producer_seq` carry the network client's durable
/// identity for exactly-once replay dedup; both are empty/0 for anonymous
/// in-process posts.
struct WalRecord {
  uint64_t lsn = 0;
  Oid oid;
  std::string method;
  std::vector<Value> args;
  std::string producer_id;
  uint64_t producer_seq = 0;
};

/// Caps mirroring the wire protocol's (src/net/wire.h): a record that a
/// legal frame could carry always encodes, and a corrupt length field
/// cannot make the reader allocate unboundedly.
inline constexpr size_t kMaxWalPayload = 1u << 20;
inline constexpr size_t kMaxWalMethodLen = 4096;
inline constexpr size_t kMaxWalArgs = 1024;
inline constexpr size_t kMaxWalIdentityLen = 256;

/// On-disk framing: u32 payload_len | u32 crc32(payload) | payload, all
/// little-endian. The payload is
///   u64 lsn | u64 oid | u64 producer_seq | u16 id_len | id
///   | u16 method_len | method | u16 argc | argc x (u16 len | value-text)
/// where value-text is the snapshot value codec (ode/snapshot_codec.h).
/// kInvalidArgument when the record exceeds the caps; *out untouched.
Status AppendRecord(std::string* out, const WalRecord& record);

enum class DecodeStatus {
  kRecord,    ///< *out holds the next record; *consumed advanced.
  kNeedMore,  ///< The buffer ends mid-record (torn tail).
  kCorrupt,   ///< Framing or CRC violation at the cursor; see *error.
};

/// Decodes one record from [data, data+size). On kRecord, *consumed is the
/// framed size. kNeedMore/kCorrupt leave *consumed at 0.
DecodeStatus DecodeRecord(const char* data, size_t size, WalRecord* out,
                          size_t* consumed, std::string* error);

/// A set of u64 sequence numbers stored as sorted disjoint closed runs —
/// the per-producer "applied" set behind exactly-once replay dedup. A
/// single max-watermark is NOT sound here: the client re-sends bounced
/// (ERR_WOULD_BLOCK) posts under fresh seqs but replays unacked posts with
/// their original seqs, so the applied set can legitimately have holes
/// (post 8 bounced with the reply lost, post 9 applied). Runs keep the
/// common dense case O(1) in memory.
class SeqSet {
 public:
  void Add(uint64_t seq);
  bool Contains(uint64_t seq) const;

  bool empty() const { return runs_.empty(); }
  /// Largest member; 0 when empty (seq 0 is never used by producers).
  uint64_t max_seq() const { return runs_.empty() ? 0 : runs_.back().second; }
  uint64_t count() const;
  size_t run_count() const { return runs_.size(); }

  /// "1-5,7,9-12" (empty string for the empty set).
  std::string ToString() const;
  static Result<SeqSet> Parse(std::string_view text);

  bool operator==(const SeqSet& other) const { return runs_ == other.runs_; }

 private:
  std::vector<std::pair<uint64_t, uint64_t>> runs_;  ///< Closed [lo, hi].
};

}  // namespace wal
}  // namespace ode

#endif  // ODE_WAL_LOG_FORMAT_H_
