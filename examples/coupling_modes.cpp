// §7: every E-C-A coupling mode expressed as a plain E-A event expression.
// For each mode, the same scenario runs (a transaction bumps an object and
// commits, then another aborts), and the program prints *when* the trigger
// fired — at the event, at transaction completion, or after commit/abort in
// a system transaction.
//
//   $ ./build/examples/coupling_modes
#include <cstdio>
#include <vector>

#include "ode/database.h"
#include "trigger/coupling.h"

using namespace ode;

namespace {

std::vector<std::string>* g_log = nullptr;
TxnId g_user_txn = 0;
Database* g_db = nullptr;

Status Record(const ActionContext& ctx) {
  const Transaction* user = g_db->txn(g_user_txn);
  std::string entry = std::string(BasicEventKindName(ctx.event->kind)) +
                      " (user txn " +
                      std::string(user ? TxnStateName(user->state()) : "?") +
                      ")";
  g_log->push_back(entry);
  return Status::OK();
}

}  // namespace

int main() {
  for (int mode = 1; mode <= 9; ++mode) {
    CouplingMode m = static_cast<CouplingMode>(mode);
    Result<EventExprPtr> expr =
        BuildCouplingFromText(m, "after bump", "ready");
    if (!expr.ok()) {
      std::printf("%d %s: build failed: %s\n", mode,
                  std::string(CouplingModeName(m)).c_str(),
                  expr.status().ToString().c_str());
      continue;
    }

    Database db;
    g_db = &db;
    std::vector<std::string> log;
    g_log = &log;
    (void)db.RegisterAction("record", Record);

    ClassDef def("obj");
    def.AddAttr("n", Value(0));
    def.AddAttr("ready", Value(true));
    def.AddMethod(MethodDef{"bump",
                            {},
                            MethodKind::kUpdate,
                            [](MethodContext* ctx) -> Status {
                              ODE_ASSIGN_OR_RETURN(Value n, ctx->Get("n"));
                              ODE_ASSIGN_OR_RETURN(Value nx, n.Add(Value(1)));
                              return ctx->Set("n", nx);
                            }});
    TriggerSpec spec;
    spec.name = "K";
    spec.perpetual = true;
    spec.event = *expr;
    spec.action = "record";
    def.AddTrigger(spec, HistoryView::kFull, /*auto_activate=*/true);
    if (!db.RegisterClass(def).ok()) continue;

    TxnId setup = db.Begin().value();
    Oid obj = db.New(setup, "obj").value();
    (void)db.Commit(setup);

    // Scenario A: bump then commit.
    g_user_txn = db.Begin().value();
    (void)db.Call(g_user_txn, obj, "bump");
    (void)db.Commit(g_user_txn);
    std::string commit_firing = log.empty() ? "(never)" : log.back();
    size_t after_commit = log.size();

    // Scenario B: bump then abort.
    g_user_txn = db.Begin().value();
    (void)db.Call(g_user_txn, obj, "bump");
    (void)db.Abort(g_user_txn);
    std::string abort_firing =
        log.size() == after_commit ? "(never)" : log.back();

    std::printf("%d. %-24s commit: fired at %-28s abort: fired at %s\n",
                mode, std::string(CouplingModeName(m)).c_str(),
                commit_firing.c_str(), abort_firing.c_str());
    std::printf("   event = %s\n", (*expr)->ToString().c_str());
  }
  return 0;
}
