// The §3.5 process-control example: a vessel whose trigger watches for a
// pressure drop followed by the valve opening (motorStart then motorStop).
//
//   $ ./build/examples/process_control
#include <cstdio>

#include "ode/database.h"

using namespace ode;

int main() {
  Database db;
  Status s = db.RegisterAction(
      "checkPressure", [](const ActionContext& ctx) -> Status {
        Result<Value> p = ctx.db->PeekAttr(ctx.self, "pressure");
        if (!p.ok()) return p.status();
        std::printf("  >> T: pressure dropped and the valve opened — "
                    "checking pressure (now %s)\n",
                    p->ToString().c_str());
        return Status::OK();
      });
  if (!s.ok()) return 1;

  ClassDef vessel("vessel");
  vessel.AddAttr("pressure", Value(100.0));
  vessel.AddAttr("low_limit", Value(50.0));
  vessel.AddMethod(MethodDef{
      "setPressure",
      {{"float", "p"}},
      MethodKind::kUpdate,
      [](MethodContext* ctx) -> Status {
        ODE_ASSIGN_OR_RETURN(Value p, ctx->Arg("p"));
        return ctx->Set("pressure", p);
      }});
  vessel.AddMethod(MethodDef{"motorStart", {}, MethodKind::kUpdate, nullptr});
  vessel.AddMethod(MethodDef{"motorStop", {}, MethodKind::kUpdate, nullptr});
  // #define pDrop (pressure < low_limit)
  // #define valveOpen relative(after motorStart, after motorStop)
  // T(): relative(pDrop, valveOpen) ==> checkPressure;
  vessel.AddTrigger(
      "T(): relative((pressure < low_limit), "
      "relative(after motorStart, after motorStop)) ==> checkPressure",
      HistoryView::kFull, /*auto_activate=*/true);

  if (!db.RegisterClass(std::move(vessel)).ok()) return 1;

  TxnId t = db.Begin().value();
  Oid v = db.New(t, "vessel").value();
  if (!db.Commit(t).ok()) return 1;

  auto call = [&](const char* method, std::vector<Value> args = {}) {
    TxnId txn = db.Begin().value();
    std::printf("%s\n", method);
    Result<Value> r = db.Call(txn, v, method, std::move(args));
    if (!r.ok()) {
      std::printf("  failed: %s\n", r.status().ToString().c_str());
      return;
    }
    (void)db.Commit(txn);
  };

  call("motorStart");                    // Valve cycling at high pressure —
  call("motorStop");                     // no alarm.
  call("setPressure", {Value(32.5)});    // Pressure drop!
  call("motorStart");                    // Valve opens...
  call("motorStop");                     // ...fully → trigger fires.

  std::printf("fire count: %llu\n",
              static_cast<unsigned long long>(db.FireCount(v, "T")));
  return 0;
}
