// The paper's §3.5 stockRoom example, end to end: items, authorized users,
// the eight triggers T1–T8, a virtual day of trading.
//
//   $ ./build/examples/stockroom
#include <cstdio>

#include "ode/database.h"

using namespace ode;

namespace {

int64_t g_current_user = 7;  // 7 is authorized; anyone else is not.

Status Bump(const ActionContext& ctx, const char* attr, const char* msg) {
  Result<Value> v = ctx.db->PeekAttr(ctx.self, attr);
  if (!v.ok()) return v.status();
  Result<Value> next = v->Add(Value(1));
  if (!next.ok()) return next.status();
  std::printf("  >> %s\n", msg);
  return ctx.db->SetAttr(ctx.txn, ctx.self, attr, *next);
}

ClassDef MakeItemClass() {
  ClassDef def("Item");
  def.AddAttr("balance", Value(0));
  def.AddAttr("eoq", Value(20));
  return def;
}

ClassDef MakeStockRoomClass() {
  ClassDef def("stockRoom");
  for (const char* c :
       {"orders", "summaries", "reports", "averages", "logs", "printed"}) {
    def.AddAttr(c, Value(0));
  }
  auto adjust = [](MethodContext* ctx, int sign) -> Status {
    ODE_ASSIGN_OR_RETURN(Value item, ctx->Arg("i"));
    ODE_ASSIGN_OR_RETURN(Oid oid, item.AsOid());
    ODE_ASSIGN_OR_RETURN(Value q, ctx->Arg("q"));
    ODE_ASSIGN_OR_RETURN(Value bal, ctx->db()->GetAttr(ctx->txn(), oid,
                                                       "balance"));
    ODE_ASSIGN_OR_RETURN(Value delta, q.Mul(Value(sign)));
    ODE_ASSIGN_OR_RETURN(Value next, bal.Add(delta));
    return ctx->db()->SetAttr(ctx->txn(), oid, "balance", next);
  };
  def.AddMethod(MethodDef{"deposit",
                          {{"Item", "i"}, {"int", "q"}},
                          MethodKind::kUpdate,
                          [adjust](MethodContext* c) { return adjust(c, 1); }});
  def.AddMethod(MethodDef{"withdraw",
                          {{"Item", "i"}, {"int", "q"}},
                          MethodKind::kUpdate,
                          [adjust](MethodContext* c) { return adjust(c, -1); }});

  // The trigger section, §3.5 — dayBegin is 09:00, dayEnd is 17:00.
  def.AddTrigger(
      "T1(): perpetual before withdraw && !authorized(user()) ==> tabort",
      HistoryView::kFull, true);
  def.AddTrigger(
      "T2(): after withdraw(Item i, int q) && i.balance < reorder(i) "
      "==> order",
      HistoryView::kFull, true);
  def.AddTrigger("T3(): perpetual at time(HR=17) ==> summary",
                 HistoryView::kFull, true);
  def.AddTrigger(
      "T4(): perpetual relative(at time(HR=9), "
      "prior(choose 5 (after tcommit), after tcommit) & "
      "!prior(at time(HR=9), after tcommit)) ==> report",
      HistoryView::kFull, true);
  def.AddTrigger("T5(): perpetual every 5 (after access) ==> updateAverages",
                 HistoryView::kFull, true);
  def.AddTrigger("T6(): perpetual after withdraw (i, q) && q > 100 ==> log",
                 HistoryView::kFull, true);
  def.AddTrigger(
      "T7(): perpetual fa(at time(HR=9), "
      "choose 5 (after withdraw (i, q) && q > 100), at time(HR=9)) "
      "==> summary",
      HistoryView::kFull, true);
  def.AddTrigger("T8(): perpetual after deposit; before withdraw ==> printLog",
                 HistoryView::kFull, true);
  return def;
}

}  // namespace

int main() {
  Database db;
  auto action = [&](const char* name, const char* attr, const char* msg) {
    Status s = db.RegisterAction(
        name, [attr, msg](const ActionContext& ctx) -> Status {
          return Bump(ctx, attr, msg);
        });
    if (!s.ok()) std::printf("%s\n", s.ToString().c_str());
  };
  action("order", "orders", "T2: stock below EOQ — ordering more");
  action("summary", "summaries", "T3/T7: printing summary");
  action("report", "reports", "T4: busy day — reporting transaction");
  action("updateAverages", "averages", "T5: updating averages");
  action("log", "logs", "T6: recording large withdrawal");
  action("printLog", "printed", "T8: deposit then withdrawal — printing log");

  Status s = db.RegisterHostFunction(
      "user", [](const std::vector<Value>&, const HostContext&)
                  -> Result<Value> { return Value(g_current_user); });
  s = db.RegisterHostFunction(
      "authorized",
      [](const std::vector<Value>& args, const HostContext&) -> Result<Value> {
        return Value(args.at(0).AsInt().value() == 7);
      });
  s = db.RegisterHostFunction(
      "reorder", [](const std::vector<Value>& args,
                    const HostContext& ctx) -> Result<Value> {
        Result<Oid> item = args.at(0).AsOid();
        if (!item.ok()) return item.status();
        return ctx.db->PeekAttr(*item, "eoq");
      });
  (void)s;

  if (!db.RegisterClass(MakeItemClass()).ok() ||
      !db.RegisterClass(MakeStockRoomClass()).ok()) {
    std::printf("class registration failed\n");
    return 1;
  }

  TxnId setup = db.Begin().value();
  Oid room = db.New(setup, "stockRoom").value();
  Oid bolts = db.New(setup, "Item", {{"balance", Value(500)}}).value();
  if (!db.Commit(setup).ok()) return 1;

  auto run = [&](const char* what, const char* method, int q) {
    TxnId t = db.Begin().value();
    std::printf("%s %d:\n", what, q);
    Result<Value> r = db.Call(t, room, method, {Value(bolts), Value(q)});
    if (!r.ok()) {
      std::printf("  transaction aborted: %s\n",
                  r.status().message().c_str());
      return;
    }
    if (Status c = db.Commit(t); !c.ok()) {
      std::printf("  commit failed: %s\n", c.ToString().c_str());
    }
  };

  std::printf("== the day begins ==\n");
  if (!db.AdvanceClockTo(9 * 3600 * 1000LL + 1).ok()) return 1;

  run("deposit", "deposit", 300);
  run("withdraw", "withdraw", 150);  // Large → T6; also follows a deposit → T8.
  g_current_user = 13;
  run("withdraw (as intruder)", "withdraw", 10);  // T1 aborts it.
  g_current_user = 7;
  for (int i = 0; i < 5; ++i) run("withdraw", "withdraw", 120);  // T7 at 5th.
  run("withdraw", "withdraw", 200);  // Drives balance under EOQ → T2.

  // A restock immediately consumed, in one transaction → T8.
  {
    TxnId t = db.Begin().value();
    std::printf("deposit 50 then withdraw 10 (one transaction):\n");
    (void)db.Call(t, room, "deposit", {Value(bolts), Value(50)});
    (void)db.Call(t, room, "withdraw", {Value(bolts), Value(10)});
    (void)db.Commit(t);
  }

  std::printf("== the day ends ==\n");
  if (!db.AdvanceClockTo(17 * 3600 * 1000LL + 1).ok()) return 1;  // T3.

  std::printf("\ncounters:\n");
  for (const char* c :
       {"orders", "summaries", "reports", "averages", "logs", "printed"}) {
    std::printf("  %-10s %s\n", c,
                db.PeekAttr(room, c).value().ToString().c_str());
  }
  std::printf("item balance: %s\n",
              db.PeekAttr(bolts, "balance").value().ToString().c_str());
  return 0;
}
