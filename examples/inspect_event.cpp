// Developer utility: parse a composite-event expression, print its
// desugared form, alphabet, compile statistics, and (optionally) the
// minimal DFA as Graphviz dot.
//
//   $ ./build/examples/inspect_event 'fa(after a, after b, after c)'
//   $ ./build/examples/inspect_event --dot 'after a; after b' > seq.dot
#include <cstdio>
#include <cstring>
#include <string>

#include "automaton/dot.h"
#include "compile/compiler.h"
#include "compile/decompile.h"
#include "lang/event_parser.h"

using namespace ode;

int main(int argc, char** argv) {
  bool dot = false;
  bool roundtrip = false;
  std::string text;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dot") == 0) {
      dot = true;
    } else if (std::strcmp(argv[i], "--roundtrip") == 0) {
      roundtrip = true;
    } else {
      if (!text.empty()) text += " ";
      text += argv[i];
    }
  }
  if (text.empty()) {
    std::printf("usage: inspect_event [--dot|--roundtrip] "
                "'<event expression>'\n");
    std::printf("example: inspect_event 'choose 5 (after withdraw (i, q) && "
                "q > 100)'\n");
    return 2;
  }

  Result<EventExprPtr> expr = ParseEvent(text);
  if (!expr.ok()) {
    std::printf("parse error: %s\n", expr.status().ToString().c_str());
    return 1;
  }

  Result<CompiledEvent> compiled = CompileEvent(*expr, CompileOptions());
  if (!compiled.ok()) {
    std::printf("compile error: %s\n", compiled.status().ToString().c_str());
    return 1;
  }

  if (dot) {
    std::printf("%s", DfaToDot(compiled->dfa,
                               compiled->alphabet.SymbolNames())
                          .c_str());
    return 0;
  }

  if (roundtrip) {
    // The §4 equivalence theorem, converse direction: DFA back to an
    // expression over the core operators.
    Result<EventExprPtr> back =
        DecompileDfa(compiled->dfa, compiled->alphabet);
    if (!back.ok()) {
      std::printf("decompile error: %s\n", back.status().ToString().c_str());
      return 1;
    }
    std::printf("decompiled (%zu nodes):\n%s\n", (*back)->NodeCount(),
                (*back)->ToString().c_str());
    return 0;
  }

  std::printf("expression : %s\n", (*expr)->ToString().c_str());
  std::printf("canonical  : %s\n", compiled->expr->ToString().c_str());
  std::printf("alphabet   : %zu symbols (%zu with gate bits)\n",
              compiled->alphabet.size(),
              compiled->extended_alphabet_size());
  for (const std::string& name : compiled->alphabet.SymbolNames()) {
    std::printf("             %s\n", name.c_str());
  }
  if (!compiled->gates.empty()) {
    std::printf("gates      : %zu (nested composite masks)\n",
                compiled->gates.size());
    for (size_t i = 0; i < compiled->gates.size(); ++i) {
      std::printf("             gate %zu: %s && %s  (%zu DFA states)\n", i,
                  compiled->gates[i].inner->ToString().c_str(),
                  compiled->gates[i].mask->ToString().c_str(),
                  compiled->gates[i].dfa.num_states());
    }
  }
  std::printf("NFA states : %zu\n", compiled->stats.nfa_states);
  std::printf("DFA states : %zu (minimized: %zu)\n",
              compiled->stats.dfa_states, compiled->stats.min_dfa_states);
  std::printf("table size : %zu bytes shared per class; %zu bytes per "
              "object (§5)\n",
              compiled->dfa.TableBytes(),
              (1 + compiled->gates.size()) * sizeof(int32_t));
  return 0;
}
