// Quickstart: declare a class with a composite-event trigger, run a few
// transactions, and watch the trigger fire.
//
//   $ ./build/examples/quickstart
//
// The trigger below is the paper's T6 flavor: record every large
// withdrawal (§3.5), plus a composite: order a refill the first time the
// balance dips below a threshold after a day's trading begins.
#include <cstdio>

#include "ode/database.h"

using namespace ode;  // Example code; library users may prefer explicit ode::.

int main() {
  Database db;

  // 1. Actions are named C++ callbacks (the paper's O++ blocks).
  Status s = db.RegisterAction("log", [](const ActionContext& ctx) -> Status {
    const Value* q = ctx.event->FindArg("q");
    std::printf("  [trigger %s] large withdrawal: q=%s\n",
                ctx.trigger_name.c_str(),
                q != nullptr ? q->ToString().c_str() : "?");
    return Status::OK();
  });
  if (!s.ok()) return 1;
  s = db.RegisterAction("order", [](const ActionContext& ctx) -> Status {
    std::printf("  [trigger %s] balance low — placing an order\n",
                ctx.trigger_name.c_str());
    return Status::OK();
  });
  if (!s.ok()) return 1;

  // 2. A class with attributes, methods, and a trigger section (§2).
  ClassDef account("account");
  account.AddAttr("balance", Value(1000));
  account.AddMethod(MethodDef{
      "withdraw",
      {{"int", "q"}},
      MethodKind::kUpdate,
      [](MethodContext* ctx) -> Status {
        ODE_ASSIGN_OR_RETURN(Value balance, ctx->Get("balance"));
        ODE_ASSIGN_OR_RETURN(Value q, ctx->Arg("q"));
        ODE_ASSIGN_OR_RETURN(Value next, balance.Sub(q));
        return ctx->Set("balance", next);
      }});
  // Logical event with a mask (§3.2). The declared parameter binds
  // positionally to the method's argument.
  account.AddTrigger(
      "Large(): perpetual after withdraw (q) && q > 100 ==> log",
      HistoryView::kFull, /*auto_activate=*/true);
  // Object-state shorthand (§3.3): fires when an update leaves the balance
  // below 200.
  account.AddTrigger("Low(): balance < 200 ==> order", HistoryView::kFull,
                     /*auto_activate=*/true);

  Result<ClassId> cls = db.RegisterClass(std::move(account));
  if (!cls.ok()) {
    std::printf("register failed: %s\n", cls.status().ToString().c_str());
    return 1;
  }

  // 3. Transactions (§2).
  TxnId t = db.Begin().value();
  Oid acct = db.New(t, "account").value();
  std::printf("created account %llu with balance 1000\n",
              static_cast<unsigned long long>(acct.id));

  for (int q : {50, 400, 30, 350}) {
    std::printf("withdraw %d:\n", q);
    Result<Value> r = db.Call(t, acct, "withdraw", {Value(q)});
    if (!r.ok()) {
      std::printf("  failed: %s\n", r.status().ToString().c_str());
      return 1;
    }
  }
  if (Status commit = db.Commit(t); !commit.ok()) {
    std::printf("commit failed: %s\n", commit.ToString().c_str());
    return 1;
  }

  std::printf("final balance: %s\n",
              db.PeekAttr(acct, "balance").value().ToString().c_str());
  std::printf("events posted: %llu, triggers fired: %llu\n",
              static_cast<unsigned long long>(db.stats().events_posted),
              static_cast<unsigned long long>(db.stats().triggers_fired));
  return 0;
}
