// Replay a textual event trace against a composite-event expression and
// print where the event occurs — a standalone detector for experimenting
// with the algebra.
//
//   $ printf 'after deposit q=70\nafter withdraw q=30\n' | \
//       ./build/examples/replay_trace 'relative(after deposit, after withdraw)'
//
// Trace lines: `after NAME [arg=value ...]`, `before NAME [...]`, or a
// bare `.` for an unrelated event. Values parse as integers when they look
// like one, else strings.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "compile/compiler.h"
#include "lang/event_parser.h"
#include "mask/mask_eval.h"

using namespace ode;

namespace {

Result<PostedEvent> ParseLine(const std::string& line) {
  std::istringstream in(line);
  std::string qualifier;
  in >> qualifier;
  if (qualifier == ".") {
    return MakePostedMethod(EventQualifier::kAfter, "__unrelated");
  }
  EventQualifier q;
  if (qualifier == "after") {
    q = EventQualifier::kAfter;
  } else if (qualifier == "before") {
    q = EventQualifier::kBefore;
  } else {
    return Status::ParseError("trace lines start with 'after', 'before' "
                              "or '.'");
  }
  std::string name;
  in >> name;
  if (name.empty()) return Status::ParseError("missing event name");

  std::vector<EventArg> args;
  std::string pair;
  while (in >> pair) {
    auto eq = pair.find('=');
    if (eq == std::string::npos) {
      return Status::ParseError("arguments are name=value");
    }
    std::string arg_name = pair.substr(0, eq);
    std::string text = pair.substr(eq + 1);
    char* end = nullptr;
    long long as_int = std::strtoll(text.c_str(), &end, 10);
    Value value = (end != nullptr && *end == '\0' && !text.empty())
                      ? Value(static_cast<int64_t>(as_int))
                      : Value(text);
    args.push_back(EventArg{std::move(arg_name), std::move(value)});
  }
  return MakePostedMethod(q, std::move(name), std::move(args));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::printf("usage: replay_trace '<event expression>' < trace.txt\n");
    return 2;
  }
  std::string text;
  for (int i = 1; i < argc; ++i) {
    if (!text.empty()) text += " ";
    text += argv[i];
  }
  Result<EventExprPtr> expr = ParseEvent(text);
  if (!expr.ok()) {
    std::printf("parse error: %s\n", expr.status().ToString().c_str());
    return 1;
  }
  Result<CompiledEvent> compiled = CompileEvent(*expr, CompileOptions());
  if (!compiled.ok()) {
    std::printf("compile error: %s\n", compiled.status().ToString().c_str());
    return 1;
  }
  if (compiled->num_gates() > 0) {
    std::printf("expressions with nested composite masks need the full "
                "engine (they read database state)\n");
    return 1;
  }

  Alphabet::MaskEvalFn eval = [](const MaskSlot& slot,
                                 const PostedEvent& event) -> Result<bool> {
    SimpleMaskEnv env;
    for (size_t i = 0; i < slot.params.size() && i < event.args.size();
         ++i) {
      env.Bind(slot.params[i].name, event.args[i].value);
    }
    for (const EventArg& a : event.args) env.Bind(a.name, a.value);
    return EvalMaskBool(*slot.mask, env);
  };

  Dfa::State state = compiled->dfa.start();
  size_t position = 0;
  size_t occurrences = 0;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty() || line[0] == '#') continue;
    Result<PostedEvent> event = ParseLine(line);
    if (!event.ok()) {
      std::printf("line %zu: %s\n", position + 1,
                  event.status().ToString().c_str());
      return 1;
    }
    Result<SymbolId> sym = compiled->alphabet.Classify(*event, eval);
    if (!sym.ok()) {
      std::printf("line %zu: %s\n", position + 1,
                  sym.status().ToString().c_str());
      return 1;
    }
    state = compiled->dfa.Step(state, *sym);
    ++position;
    bool occurs = compiled->dfa.accepting(state);
    occurrences += occurs ? 1 : 0;
    std::printf("%4zu  %-40s %s\n", position, line.c_str(),
                occurs ? "<== occurs" : "");
  }
  std::printf("\n%zu event(s), %zu occurrence(s); DFA has %zu states "
              "(%zu-symbol alphabet)\n",
              position, occurrences, compiled->dfa.num_states(),
              compiled->alphabet.size());
  return 0;
}
