// Fraud watch: a banking scenario exercising the library's §9 extensions —
// a per-account composite fraud pattern with argument capture, a
// class-scope trigger auditing the merged stream of every account, and a
// post-hoc history query for the analyst's report.
//
//   $ ./build/examples/fraud_watch
#include <cstdio>

#include "event/history_query.h"
#include "ode/database.h"

using namespace ode;

int main() {
  Database db;

  ClassDef account("account");
  account.AddAttr("balance", Value(10000));
  account.AddAttr("owner", Value("?"));
  auto adjust = [](MethodContext* ctx, int sign) -> Status {
    ODE_ASSIGN_OR_RETURN(Value balance, ctx->Get("balance"));
    ODE_ASSIGN_OR_RETURN(Value q, ctx->Arg("q"));
    ODE_ASSIGN_OR_RETURN(Value delta, q.Mul(Value(sign)));
    ODE_ASSIGN_OR_RETURN(Value next, balance.Add(delta));
    return ctx->Set("balance", next);
  };
  account.AddMethod(MethodDef{"deposit",
                              {{"int", "q"}},
                              MethodKind::kUpdate,
                              [adjust](MethodContext* c) {
                                return adjust(c, 1);
                              }});
  account.AddMethod(MethodDef{"withdraw",
                              {{"int", "q"}},
                              MethodKind::kUpdate,
                              [adjust](MethodContext* c) {
                                return adjust(c, -1);
                              }});

  // Per-account fraud pattern (auto-activated on creation): anchored at a
  // large withdrawal, fires at the completion of two more with no deposit
  // in between — fa's "no intervening event" semantics (§3.4).
  account.AddTrigger(
      "Fraud(): perpetual fa(after withdraw (q) && q > 500, "
      "relative(after withdraw (q) && q > 500, "
      "after withdraw (q) && q > 500), after deposit) ==> alert",
      HistoryView::kFull, /*auto_activate=*/true);
  // Bank-wide audit: every 3rd large withdrawal anywhere in the class —
  // the merged-stream semantics is the point of class-scope monitoring.
  account.AddTrigger(
      "Audit(): perpetual every 3 (after withdraw (q) && q > 500) "
      "==> audit");

  Status s = db.RegisterAction(
      "alert", [](const ActionContext& ctx) -> Status {
        Result<Value> owner = ctx.db->PeekAttr(ctx.self, "owner");
        // §9 argument capture: the composite itself has no parameters, but
        // the witnesses carry the constituents' arguments.
        Value last_q = ctx.WitnessArg("withdraw", "q");
        std::printf("  !! FRAUD ALERT on %s's account — third large "
                    "withdrawal (last amount %s) with no deposit between\n",
                    owner.ok() ? owner->AsString().value_or("?").c_str()
                               : "?",
                    last_q.ToString().c_str());
        return Status::OK();
      });
  if (!s.ok()) return 1;
  s = db.RegisterAction("audit", [](const ActionContext& ctx) -> Status {
    std::printf("  -- bank-wide audit checkpoint (triggered by account "
                "@%llu)\n",
                static_cast<unsigned long long>(ctx.self.id));
    return Status::OK();
  });
  if (!s.ok()) return 1;
  if (!db.RegisterClass(std::move(account)).ok()) return 1;

  // One class-scope activation covers every instance — the §9 "system
  // level" monitoring question.
  if (Status a = db.ActivateClassTrigger("account", "Audit"); !a.ok()) {
    std::printf("activation failed: %s\n", a.ToString().c_str());
    return 1;
  }

  TxnId t = db.Begin().value();
  Oid alice = db.New(t, "account", {{"owner", Value("alice")}}).value();
  Oid bob = db.New(t, "account", {{"owner", Value("bob")}}).value();
  (void)db.Commit(t);

  auto run = [&](Oid who, const char* method, int q) {
    TxnId txn = db.Begin().value();
    std::printf("%s %s %d\n",
                db.PeekAttr(who, "owner").value().AsString().value().c_str(),
                method, q);
    (void)db.Call(txn, who, method, {Value(q)});
    (void)db.Commit(txn);
  };

  // Alice: two large withdrawals, a deposit resets the fraud pattern, one
  // more large — no alert (but the bank-wide audit counts all of them).
  run(alice, "withdraw", 800);
  run(alice, "withdraw", 900);
  run(alice, "deposit", 100);
  run(alice, "withdraw", 700);  // 3rd large bank-wide → audit fires.

  // Bob: three large withdrawals in a row — fraud alert on the third,
  // which is also the 6th large bank-wide → audit fires too.
  run(bob, "withdraw", 600);
  run(bob, "withdraw", 1200);
  run(bob, "withdraw", 2500);

  // Post-hoc analysis with history expressions (§9).
  std::printf("\nanalyst report (history expressions):\n");
  for (Oid who : {alice, bob}) {
    const EventHistory* h = db.history(who);
    if (h == nullptr) continue;
    HistoryQuery large =
        HistoryQuery::Over(*h)
            .Method("withdraw", EventQualifier::kAfter)
            .Where([](const PostedEvent& e) {
              return e.FindArg("q")->AsInt().value() > 500;
            });
    std::printf("  %s: %zu large withdrawals, total %s, max %s\n",
                db.PeekAttr(who, "owner").value().AsString().value().c_str(),
                large.Count(), large.SumArg("q").value().ToString().c_str(),
                large.Empty()
                    ? "-"
                    : large.MaxArg("q").value().ToString().c_str());
  }
  std::printf("fraud alerts: alice=%llu bob=%llu; bank-wide audits: %llu\n",
              static_cast<unsigned long long>(db.FireCount(alice, "Fraud")),
              static_cast<unsigned long long>(db.FireCount(bob, "Fraud")),
              static_cast<unsigned long long>(
                  db.ClassFireCount("account", "Audit")));
  return 0;
}
