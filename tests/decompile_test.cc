// The converse of the §4 equivalence theorem, executable: any DFA over a
// trigger alphabet decompiles to an event expression with the same
// occurrence semantics. Round-trip property: compile → decompile →
// recompile yields a language-equivalent automaton.
#include "compile/decompile.h"

#include <gtest/gtest.h>

#include <random>

#include "automaton/determinize.h"
#include "automaton/minimize.h"
#include "test_util.h"

namespace ode {
namespace {

using testing_util::ParseOrDie;
using testing_util::RandomExpr;

/// compile(expr) → DFA → decompile → compile again over the SAME alphabet
/// → language equivalence.
void ExpectRoundTrip(const EventExprPtr& expr) {
  Result<CompiledEvent> compiled = CompileEvent(expr, CompileOptions());
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  ASSERT_EQ(compiled->num_gates(), 0u);

  Result<EventExprPtr> back = DecompileDfa(compiled->dfa, compiled->alphabet);
  ASSERT_TRUE(back.ok()) << expr->ToString() << ": "
                         << back.status().ToString();

  Result<Nfa> nfa = CompileToNfa(**back, compiled->alphabet);
  ASSERT_TRUE(nfa.ok()) << nfa.status().ToString();
  Result<Dfa> redone = Determinize(*nfa);
  ASSERT_TRUE(redone.ok()) << redone.status().ToString();
  EXPECT_TRUE(DfaEquivalent(Minimize(*redone), Minimize(compiled->dfa)))
      << "expr: " << expr->ToString()
      << "\ndecompiled: " << (*back)->ToString();
}

class DecompileRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(DecompileRoundTrip, LanguagePreserved) {
  ExpectRoundTrip(ParseOrDie(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    Exprs, DecompileRoundTrip,
    ::testing::Values("after a", "after a | before b",
                      "relative(after a, after b)", "!after a",
                      "after a; after b", "prior(after a, after b)",
                      "choose 3 (after a)", "every 2 (after a)",
                      "fa(after a, after b, after c)",
                      "relative+ (after a | after b)", "empty",
                      "faAbs(after a, after b, after c)",
                      "relative 3 (after a)"));

TEST(DecompileTest, RandomExpressionsRoundTrip) {
  std::mt19937 rng(4242);
  int done = 0;
  for (int trial = 0; trial < 30 && done < 20; ++trial) {
    EventExprPtr expr = RandomExpr(&rng, 2);
    Result<CompiledEvent> compiled = CompileEvent(expr, CompileOptions());
    if (!compiled.ok()) continue;
    if (compiled->dfa.num_states() > 12) continue;  // Keep elimination sane.
    ExpectRoundTrip(expr);
    ++done;
  }
  EXPECT_GT(done, 0);
}

TEST(DecompileTest, UsesOnlyCoreOperators) {
  // The §4 "core" claim: union, relative, relative+, &, !, atoms suffice.
  EventExprPtr expr = ParseOrDie("choose 2 (after a); before b");
  CompiledEvent compiled = CompileEvent(expr, CompileOptions()).value();
  EventExprPtr back = DecompileDfa(compiled.dfa, compiled.alphabet).value();
  std::function<void(const EventExpr&)> walk = [&](const EventExpr& e) {
    switch (e.kind) {
      case EventExprKind::kEmpty:
      case EventExprKind::kAtom:
      case EventExprKind::kOr:
      case EventExprKind::kAnd:
      case EventExprKind::kNot:
      case EventExprKind::kRelative:
      case EventExprKind::kRelativePlus:
      case EventExprKind::kPrior:  // Used only inside the length-1 helper.
        break;
      default:
        ADD_FAILURE() << "non-core operator in decompiled expression: "
                      << EventExprKindName(e.kind);
    }
    for (const EventExprPtr& c : e.children) walk(*c);
  };
  walk(*back);
}

TEST(DecompileTest, Len1HelperSemantics) {
  // L(!prior(!empty, !empty)) = strings of length exactly 1.
  EventExprPtr len1 = ParseOrDie("!prior(!empty, !empty)");
  CompiledEvent compiled = CompileEvent(len1, CompileOptions()).value();
  // Alphabet is just OTHER here.
  EXPECT_TRUE(compiled.dfa.Accepts({compiled.alphabet.other_symbol()}));
  EXPECT_FALSE(compiled.dfa.Accepts({compiled.alphabet.other_symbol(),
                                     compiled.alphabet.other_symbol()}));
  EXPECT_FALSE(compiled.dfa.Accepts({}));
}

TEST(DecompileTest, MaskedAlphabetRejected) {
  EventExprPtr expr = ParseOrDie("after f(q) && q > 1");
  CompiledEvent compiled = CompileEvent(expr, CompileOptions()).value();
  EXPECT_EQ(DecompileDfa(compiled.dfa, compiled.alphabet).status().code(),
            StatusCode::kUnimplemented);
}

TEST(DecompileTest, EpsilonAcceptingDfaRejected) {
  EventExprPtr expr = ParseOrDie("after a");
  CompiledEvent compiled = CompileEvent(expr, CompileOptions()).value();
  Dfa bad = compiled.dfa;
  bad.SetAccepting(bad.start(), true);
  EXPECT_EQ(DecompileDfa(bad, compiled.alphabet).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DecompileTest, BudgetGuard) {
  EventExprPtr expr = ParseOrDie(
      "choose 6 (after a) & every 4 (after b | after a)");
  CompiledEvent compiled = CompileEvent(expr, CompileOptions()).value();
  EXPECT_EQ(DecompileDfa(compiled.dfa, compiled.alphabet, /*max_nodes=*/8)
                .status()
                .code(),
            StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace ode
