#include "event/history_query.h"

#include <gtest/gtest.h>

#include "ode/database.h"
#include "test_util.h"

namespace ode {
namespace {

EventHistory MakeHistory() {
  EventHistory h;
  auto method = [](EventQualifier q, const char* name, int arg_q,
                   TxnId txn, TimeMs t) {
    PostedEvent e =
        MakePostedMethod(q, name, {{"q", Value(arg_q)}}, txn);
    e.time = t;
    return e;
  };
  h.Append(MakePosted(BasicEventKind::kCreate, EventQualifier::kAfter, 1));
  h.Append(method(EventQualifier::kAfter, "deposit", 100, 1, 10));
  h.Append(method(EventQualifier::kAfter, "withdraw", 30, 1, 20));
  h.Append(method(EventQualifier::kAfter, "withdraw", 200, 2, 30));
  h.Append(MakePosted(BasicEventKind::kTcommit, EventQualifier::kAfter, 2));
  h.Append(method(EventQualifier::kAfter, "deposit", 50, 3, 40));
  h.Append(method(EventQualifier::kBefore, "withdraw", 7, 3, 50));
  return h;
}

TEST(HistoryQueryTest, CountAndFilters) {
  EventHistory h = MakeHistory();
  EXPECT_EQ(HistoryQuery::Over(h).Count(), 7u);
  EXPECT_EQ(HistoryQuery::Over(h).Method("withdraw").Count(), 3u);
  EXPECT_EQ(
      HistoryQuery::Over(h).Method("withdraw", EventQualifier::kAfter).Count(),
      2u);
  EXPECT_EQ(HistoryQuery::Over(h).Kind(BasicEventKind::kTcommit).Count(), 1u);
  EXPECT_EQ(HistoryQuery::Over(h).InTxn(1).Count(), 3u);
  EXPECT_EQ(HistoryQuery::Over(h).Between(20, 40).Count(), 3u);
}

TEST(HistoryQueryTest, FiltersCompose) {
  EventHistory h = MakeHistory();
  size_t n = HistoryQuery::Over(h)
                 .Method("withdraw", EventQualifier::kAfter)
                 .Where([](const PostedEvent& e) {
                   return e.FindArg("q")->AsInt().value() > 100;
                 })
                 .Count();
  EXPECT_EQ(n, 1u);
}

TEST(HistoryQueryTest, FirstAndLast) {
  EventHistory h = MakeHistory();
  HistoryQuery deposits = HistoryQuery::Over(h).Method("deposit");
  ASSERT_NE(deposits.First(), nullptr);
  EXPECT_EQ(deposits.First()->FindArg("q")->AsInt().value(), 100);
  EXPECT_EQ(deposits.Last()->FindArg("q")->AsInt().value(), 50);
  EXPECT_EQ(HistoryQuery::Over(h).Method("nothing").First(), nullptr);
}

TEST(HistoryQueryTest, Aggregates) {
  EventHistory h = MakeHistory();
  HistoryQuery withdraws =
      HistoryQuery::Over(h).Method("withdraw", EventQualifier::kAfter);
  EXPECT_EQ(withdraws.SumArg("q").value().AsInt().value(), 230);
  EXPECT_EQ(withdraws.MinArg("q").value().AsInt().value(), 30);
  EXPECT_EQ(withdraws.MaxArg("q").value().AsInt().value(), 200);
  // Sum over nothing is 0; min over nothing errors.
  EXPECT_EQ(HistoryQuery::Over(h).Method("x").SumArg("q").value()
                .AsInt()
                .value(),
            0);
  EXPECT_FALSE(HistoryQuery::Over(h).Method("x").MinArg("q").ok());
}

TEST(HistoryQueryTest, AggregateErrorsOnMissingArg) {
  EventHistory h = MakeHistory();
  // The create event has no q argument.
  EXPECT_FALSE(HistoryQuery::Over(h).SumArg("q").ok());
}

TEST(HistoryQueryTest, SinceLastTruncation) {
  EventHistory h = MakeHistory();
  // §4-style truncation: events after the last commit.
  BasicEvent commit =
      BasicEvent::Make(BasicEventKind::kTcommit, EventQualifier::kAfter);
  HistoryQuery after_commit = HistoryQuery::Over(h).SinceLast(commit);
  EXPECT_EQ(after_commit.Count(), 2u);
  // Anchor absent → whole history.
  BasicEvent abort_marker =
      BasicEvent::Make(BasicEventKind::kTabort, EventQualifier::kAfter);
  EXPECT_EQ(HistoryQuery::Over(h).SinceLast(abort_marker).Count(), 7u);
}

TEST(HistoryQueryTest, MatchingHonorsArity) {
  EventHistory h = MakeHistory();
  BasicEvent one_arg = BasicEvent::Method(EventQualifier::kAfter, "withdraw",
                                          {{"int", "q"}});
  BasicEvent two_args = BasicEvent::Method(
      EventQualifier::kAfter, "withdraw", {{"Item", "i"}, {"int", "q"}});
  EXPECT_EQ(HistoryQuery::Over(h).Matching(one_arg).Count(), 2u);
  EXPECT_EQ(HistoryQuery::Over(h).Matching(two_args).Count(), 0u);
}

TEST(HistoryQueryTest, EndToEndWithDatabase) {
  // The intended §9 use: post-hoc analysis of a live object's history.
  ClassDef def("account");
  def.AddAttr("balance", Value(1000));
  def.AddMethod(MethodDef{"withdraw",
                          {{"int", "q"}},
                          MethodKind::kUpdate,
                          nullptr});
  Database db;
  ODE_ASSERT_OK(db.RegisterClass(std::move(def)).status());
  TxnId t = db.Begin().value();
  Oid acct = db.New(t, "account").value();
  for (int q : {10, 250, 40, 300}) {
    ODE_ASSERT_OK(db.Call(t, acct, "withdraw", {Value(q)}).status());
  }
  ODE_ASSERT_OK(db.Commit(t));

  const EventHistory* h = db.history(acct);
  ASSERT_NE(h, nullptr);
  HistoryQuery large =
      HistoryQuery::Over(*h)
          .Method("withdraw", EventQualifier::kAfter)
          .Where([](const PostedEvent& e) {
            return e.FindArg("q")->AsInt().value() > 100;
          });
  EXPECT_EQ(large.Count(), 2u);
  EXPECT_EQ(large.SumArg("q").value().AsInt().value(), 550);
}

}  // namespace
}  // namespace ode
