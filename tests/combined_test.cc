// §5 footnote 5: several triggers' automata combined into one product with
// bitmask acceptance. Property: the product's per-trigger bits equal each
// component automaton's acceptance on every input.
#include "compile/combined.h"

#include <gtest/gtest.h>

#include <random>

#include "test_util.h"

namespace ode {
namespace {

TriggerSpec Spec(const char* text) {
  Result<TriggerSpec> spec = ParseTriggerSpec(text);
  EXPECT_TRUE(spec.ok()) << text << ": " << spec.status().ToString();
  return spec.ok() ? *spec : TriggerSpec{};
}

TEST(CombinedTest, BitsMatchComponents) {
  Result<CombinedProgram> combined = CombinedProgram::Build({
      Spec("A(): perpetual after deposit"),
      Spec("B(): perpetual relative(after deposit, after withdraw)"),
      Spec("C(): perpetual choose 2 (after withdraw)"),
  });
  ASSERT_TRUE(combined.ok()) << combined.status().ToString();
  ASSERT_EQ(combined->num_triggers(), 3u);

  std::mt19937 rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<SymbolId> history(20);
    for (SymbolId& s : history) {
      s = static_cast<SymbolId>(rng() % combined->alphabet().size());
    }
    Dfa::State prod = combined->dfa().start();
    std::vector<Dfa::State> comps;
    for (const Dfa& d : combined->component_dfas()) comps.push_back(d.start());
    for (SymbolId sym : history) {
      prod = combined->dfa().Step(prod, sym);
      uint64_t mask = combined->AcceptMask(prod);
      for (size_t i = 0; i < comps.size(); ++i) {
        comps[i] = combined->component_dfas()[i].Step(comps[i], sym);
        EXPECT_EQ((mask >> i) & 1,
                  combined->component_dfas()[i].accepting(comps[i]) ? 1u
                                                                     : 0u);
      }
    }
  }
}

TEST(CombinedTest, SharedAlphabetDeduplicatesMasks) {
  // Two triggers using the same masked logical event share its
  // micro-symbols; a third mask on the same basic event adds one bit.
  Result<CombinedProgram> combined = CombinedProgram::Build({
      Spec("A(): after w(q) && q > 10"),
      Spec("B(): relative(after w(q) && q > 10, after w(q) && q > 20)"),
  });
  ASSERT_TRUE(combined.ok()) << combined.status().ToString();
  // Group w has masks {q>10, q>20} → 4 micro-symbols, + OTHER.
  EXPECT_EQ(combined->alphabet().size(), 5u);
}

TEST(CombinedTest, StockroomTriggerGroup) {
  // A realistic group: the §3.5 stockroom's non-timer triggers share one
  // product automaton.
  Result<CombinedProgram> combined = CombinedProgram::Build({
      Spec("T5(): perpetual every 5 (after access)"),
      Spec("T6(): perpetual after withdraw (i, q) && q > 100"),
      Spec("T8(): perpetual after deposit; before withdraw"),
  });
  ASSERT_TRUE(combined.ok()) << combined.status().ToString();
  // One integer of state instead of three.
  EXPECT_GT(combined->dfa().num_states(), 0u);
  // The product's shared table is bounded by the components' product...
  size_t product_bound = 1;
  for (const Dfa& d : combined->component_dfas()) {
    product_bound *= d.num_states();
  }
  EXPECT_LE(combined->dfa().num_states(), product_bound);
}

TEST(CombinedTest, RootCompositeMasksKeptPerTrigger) {
  Result<CombinedProgram> combined = CombinedProgram::Build({
      Spec("A(): (after f | after g) && ready"),
      Spec("B(): after f"),
  });
  ASSERT_TRUE(combined.ok()) << combined.status().ToString();
  EXPECT_EQ(combined->composite_masks(0).size(), 1u);
  EXPECT_TRUE(combined->composite_masks(1).empty());
}

TEST(CombinedTest, GatedTriggersRejected) {
  Result<CombinedProgram> combined = CombinedProgram::Build({
      Spec("A(): fa((after f | after g) && ready, before tcomplete, "
           "after tbegin)"),
  });
  EXPECT_EQ(combined.status().code(), StatusCode::kUnimplemented);
}

TEST(CombinedTest, LimitsEnforced) {
  EXPECT_EQ(CombinedProgram::Build({}).status().code(),
            StatusCode::kInvalidArgument);

  std::vector<TriggerSpec> many;
  for (int i = 0; i < 65; ++i) {
    many.push_back(Spec("T(): after f"));
  }
  EXPECT_EQ(CombinedProgram::Build(std::move(many)).status().code(),
            StatusCode::kInvalidArgument);

  // Product-state guard.
  CombinedProgram::Options opts;
  opts.max_product_states = 4;
  EXPECT_EQ(CombinedProgram::Build(
                {Spec("A(): choose 5 (after f)"),
                 Spec("B(): choose 7 (after g)")},
                opts)
                .status()
                .code(),
            StatusCode::kResourceExhausted);
}

TEST(CombinedTest, ProductSmallerThanComponentsSometimes) {
  // Related triggers share structure: the product can be far below the
  // worst-case bound. (This is the footnote's "more efficient
  // monitoring".)
  Result<CombinedProgram> combined = CombinedProgram::Build({
      Spec("A(): prior 2 (after f)"),
      Spec("B(): prior 3 (after f)"),
  });
  ASSERT_TRUE(combined.ok());
  // prior-2 has ~3 live states, prior-3 ~4; the product collapses to ~4
  // because the counters advance in lockstep.
  EXPECT_LE(combined->dfa().num_states(), 5u);
}

}  // namespace
}  // namespace ode
