// Durable event log unit tests: SeqSet algebra, record codec roundtrips
// and caps, writer/reader roundtrips under every fsync policy, torn-tail
// and bit-flip detection, checkpoint file roundtrips, and clean-restart
// recovery through IngestRuntime (stop → new runtime over the same dir →
// identical state, each event applied exactly once).
#include <gtest/gtest.h>
#include <stdlib.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "ode/database.h"
#include "runtime/ingest_runtime.h"
#include "test_util.h"
#include "wal/checkpoint.h"
#include "wal/log_format.h"
#include "wal/log_reader.h"
#include "wal/log_writer.h"
#include "wal/recovery.h"

namespace ode {
namespace {

using runtime::IngestOptions;
using runtime::IngestRuntime;
using wal::CheckpointData;
using wal::FsyncPolicy;
using wal::LogReadResult;
using wal::LogWriter;
using wal::SeqSet;
using wal::WalOptions;
using wal::WalRecord;

/// Self-cleaning temp directory for one test.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/ode-wal-test-XXXXXX";
    char* got = mkdtemp(tmpl);
    EXPECT_NE(got, nullptr);
    path_ = got != nullptr ? got : "";
  }
  ~TempDir() {
    if (!path_.empty()) {
      std::string cmd = "rm -rf '" + path_ + "'";
      (void)!system(cmd.c_str());
    }
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ---- SeqSet ------------------------------------------------------------

TEST(SeqSetTest, AddAndContains) {
  SeqSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.Contains(1));
  EXPECT_EQ(s.max_seq(), 0u);

  s.Add(5);
  s.Add(3);
  s.Add(4);  // Bridges 3..5 into one run.
  s.Add(9);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_TRUE(s.Contains(4));
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(6));
  EXPECT_TRUE(s.Contains(9));
  EXPECT_EQ(s.max_seq(), 9u);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_EQ(s.run_count(), 2u);
  EXPECT_EQ(s.ToString(), "3-5,9");
}

TEST(SeqSetTest, DuplicateAddIsNoOp) {
  SeqSet s;
  s.Add(7);
  s.Add(7);
  s.Add(7);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.run_count(), 1u);
}

TEST(SeqSetTest, MergesAdjacentRuns) {
  SeqSet s;
  s.Add(1);
  s.Add(3);
  EXPECT_EQ(s.run_count(), 2u);
  s.Add(2);  // Closes the hole.
  EXPECT_EQ(s.run_count(), 1u);
  EXPECT_EQ(s.ToString(), "1-3");
}

TEST(SeqSetTest, ParseRoundtrip) {
  SeqSet s;
  for (uint64_t v : {1, 2, 3, 4, 5, 7, 9, 10, 11, 12}) s.Add(v);
  EXPECT_EQ(s.ToString(), "1-5,7,9-12");
  Result<SeqSet> parsed = SeqSet::Parse(s.ToString());
  ODE_ASSERT_OK(parsed.status());
  EXPECT_EQ(*parsed, s);

  Result<SeqSet> empty = SeqSet::Parse("");
  ODE_ASSERT_OK(empty.status());
  EXPECT_TRUE(empty->empty());

  EXPECT_FALSE(SeqSet::Parse("3-1").ok());     // Inverted run.
  EXPECT_FALSE(SeqSet::Parse("1,,2").ok());    // Empty element.
  EXPECT_FALSE(SeqSet::Parse("banana").ok());  // Not numbers.
}

// ---- Record codec ------------------------------------------------------

WalRecord SampleRecord() {
  WalRecord r;
  r.oid = Oid{42};
  r.method = "add";
  r.args = {Value(7), Value("text with spaces\nand newline")};
  r.producer_id = "client-a";
  r.producer_seq = 19;
  return r;
}

TEST(WalRecordTest, EncodeDecodeRoundtrip) {
  WalRecord in = SampleRecord();
  in.lsn = 3;
  std::string buf;
  ODE_ASSERT_OK(wal::AppendRecord(&buf, in));

  WalRecord out;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(wal::DecodeRecord(buf.data(), buf.size(), &out, &consumed, &error),
            wal::DecodeStatus::kRecord)
      << error;
  EXPECT_EQ(consumed, buf.size());
  EXPECT_EQ(out.lsn, 3u);
  EXPECT_EQ(out.oid.id, 42u);
  EXPECT_EQ(out.method, "add");
  ASSERT_EQ(out.args.size(), 2u);
  EXPECT_EQ(out.args[0].AsInt().value(), 7);
  EXPECT_EQ(out.producer_id, "client-a");
  EXPECT_EQ(out.producer_seq, 19u);
}

TEST(WalRecordTest, RejectsOverCapRecords) {
  std::string buf;
  WalRecord method_too_long = SampleRecord();
  method_too_long.method.assign(wal::kMaxWalMethodLen + 1, 'm');
  EXPECT_FALSE(wal::AppendRecord(&buf, method_too_long).ok());
  EXPECT_TRUE(buf.empty());

  WalRecord too_many_args = SampleRecord();
  too_many_args.args.assign(wal::kMaxWalArgs + 1, Value(1));
  EXPECT_FALSE(wal::AppendRecord(&buf, too_many_args).ok());
  EXPECT_TRUE(buf.empty());
}

TEST(WalRecordTest, TruncatedBufferNeedsMore) {
  std::string buf;
  WalRecord in = SampleRecord();
  ODE_ASSERT_OK(wal::AppendRecord(&buf, in));
  WalRecord out;
  size_t consumed = 0;
  std::string error;
  for (size_t n = 0; n < buf.size(); ++n) {
    EXPECT_EQ(wal::DecodeRecord(buf.data(), n, &out, &consumed, &error),
              wal::DecodeStatus::kNeedMore)
        << "at prefix " << n;
  }
}

TEST(WalRecordTest, BitFlipFailsCrc) {
  std::string buf;
  WalRecord in = SampleRecord();
  ODE_ASSERT_OK(wal::AppendRecord(&buf, in));
  // Flip one payload bit (past the 8-byte header).
  buf[10] = static_cast<char>(buf[10] ^ 0x40);
  WalRecord out;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(wal::DecodeRecord(buf.data(), buf.size(), &out, &consumed, &error),
            wal::DecodeStatus::kCorrupt);
  EXPECT_FALSE(error.empty());
}

// ---- Writer / reader ---------------------------------------------------

WalOptions PolicyOptions(const std::string& dir, FsyncPolicy policy) {
  WalOptions o;
  o.dir = dir;
  o.fsync = policy;
  o.fsync_every_n = 3;
  return o;
}

TEST(LogWriterTest, RoundtripUnderEveryPolicy) {
  for (FsyncPolicy policy : {FsyncPolicy::kAlways, FsyncPolicy::kEveryN,
                             FsyncPolicy::kEveryMs, FsyncPolicy::kNever}) {
    SCOPED_TRACE(wal::FsyncPolicyName(policy));
    TempDir dir;
    const std::string path = wal::ShardLogPath(dir.path(), 0);
    LogWriter writer;
    ODE_ASSERT_OK(writer.Open(path, /*start_lsn=*/0,
                              PolicyOptions(dir.path(), policy)));
    for (int i = 0; i < 10; ++i) {
      WalRecord r = SampleRecord();
      r.producer_seq = static_cast<uint64_t>(i + 1);
      ODE_ASSERT_OK(writer.Append(&r));
      EXPECT_EQ(r.lsn, static_cast<uint64_t>(i + 1));
    }
    ODE_ASSERT_OK(writer.Sync());
    EXPECT_EQ(writer.last_lsn(), 10u);
    writer.Close();

    Result<LogReadResult> log = wal::ReadLogFile(path);
    ODE_ASSERT_OK(log.status());
    EXPECT_FALSE(log->torn);
    ASSERT_EQ(log->records.size(), 10u);
    EXPECT_EQ(log->records.back().lsn, 10u);
    EXPECT_EQ(log->records.back().producer_seq, 10u);
  }
}

TEST(LogWriterTest, ReopenContinuesLsnAndTruncateKeepsCounter) {
  TempDir dir;
  const std::string path = wal::ShardLogPath(dir.path(), 0);
  WalOptions options = PolicyOptions(dir.path(), FsyncPolicy::kAlways);
  {
    LogWriter writer;
    ODE_ASSERT_OK(writer.Open(path, 0, options));
    WalRecord r = SampleRecord();
    ODE_ASSERT_OK(writer.Append(&r));
    EXPECT_EQ(r.lsn, 1u);
  }
  {
    // Reopen where the file left off (recovery's append mode).
    LogWriter writer;
    ODE_ASSERT_OK(writer.Open(path, /*start_lsn=*/1, options));
    WalRecord r = SampleRecord();
    ODE_ASSERT_OK(writer.Append(&r));
    EXPECT_EQ(r.lsn, 2u);

    // Truncation empties the file but the lsn counter keeps running, so
    // later records stay above any checkpoint's covered lsn.
    ODE_ASSERT_OK(writer.Truncate());
    r = SampleRecord();
    ODE_ASSERT_OK(writer.Append(&r));
    EXPECT_EQ(r.lsn, 3u);
  }
  Result<LogReadResult> log = wal::ReadLogFile(path);
  ODE_ASSERT_OK(log.status());
  ASSERT_EQ(log->records.size(), 1u);
  EXPECT_EQ(log->records[0].lsn, 3u);
}

TEST(LogReaderTest, TornTailIsReportedAndPrefixKept) {
  TempDir dir;
  const std::string path = wal::ShardLogPath(dir.path(), 0);
  {
    LogWriter writer;
    ODE_ASSERT_OK(writer.Open(path, 0, PolicyOptions(dir.path(),
                                                     FsyncPolicy::kAlways)));
    for (int i = 0; i < 4; ++i) {
      WalRecord r = SampleRecord();
      ODE_ASSERT_OK(writer.Append(&r));
    }
  }
  Result<LogReadResult> whole = wal::ReadLogFile(path);
  ODE_ASSERT_OK(whole.status());
  ASSERT_EQ(whole->records.size(), 4u);
  // Cut the file mid-way through the last record: a crash torn tail.
  ODE_ASSERT_OK(wal::TruncateLogFile(path, whole->total_bytes - 5));

  Result<LogReadResult> torn = wal::ReadLogFile(path);
  ODE_ASSERT_OK(torn.status());
  EXPECT_TRUE(torn->torn);
  EXPECT_EQ(torn->records.size(), 3u);
  EXPECT_EQ(torn->last_lsn(), 3u);
  EXPECT_GT(torn->torn_bytes(), 0u);

  // Repair (what ode-waldump --repair does) leaves a clean log.
  ODE_ASSERT_OK(wal::TruncateLogFile(path, torn->valid_bytes));
  Result<LogReadResult> repaired = wal::ReadLogFile(path);
  ODE_ASSERT_OK(repaired.status());
  EXPECT_FALSE(repaired->torn);
  EXPECT_EQ(repaired->records.size(), 3u);
}

TEST(LogReaderTest, BitFlippedRecordCutsTheLog) {
  TempDir dir;
  const std::string path = wal::ShardLogPath(dir.path(), 0);
  uint64_t first_record_bytes = 0;
  {
    LogWriter writer;
    ODE_ASSERT_OK(writer.Open(path, 0, PolicyOptions(dir.path(),
                                                     FsyncPolicy::kAlways)));
    WalRecord r = SampleRecord();
    ODE_ASSERT_OK(writer.Append(&r));
    first_record_bytes = writer.bytes_written();
    for (int i = 0; i < 2; ++i) {
      r = SampleRecord();
      ODE_ASSERT_OK(writer.Append(&r));
    }
  }
  // Flip a bit inside the second record's payload.
  FILE* f = fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(fseek(f, static_cast<long>(first_record_bytes) + 12, SEEK_SET), 0);
  int c = fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(fseek(f, -1, SEEK_CUR), 0);
  fputc(c ^ 0x01, f);
  fclose(f);

  Result<LogReadResult> log = wal::ReadLogFile(path);
  ODE_ASSERT_OK(log.status());
  EXPECT_TRUE(log->torn);
  ASSERT_EQ(log->records.size(), 1u);  // Only the intact prefix survives.
  EXPECT_EQ(log->valid_bytes, first_record_bytes);
}

// ---- Checkpoint file ---------------------------------------------------

TEST(CheckpointTest, RoundtripAllSections) {
  TempDir dir;
  CheckpointData in;
  in.num_shards = 2;
  in.snapshot_body = "ODE-SNAPSHOT v1\nclock 5\nnext_oid 9\n";
  in.covered_lsn[0] = 17;
  in.covered_lsn[3] = 4;  // Orphan file from an older shard layout.
  in.shard_metrics.resize(2);
  in.shard_metrics[0].enqueued = 100;
  in.shard_metrics[1].fired = 7;
  in.base_metrics.processed = 55;
  in.has_base_metrics = true;
  in.applied["client a"].Add(1);  // Space forces token escaping.
  in.applied["client a"].Add(2);
  in.applied["client a"].Add(9);
  in.inflight.resize(2);
  in.inflight[1].push_back(SampleRecord());
  ODE_ASSERT_OK(wal::WriteCheckpointFile(dir.path(), in));

  Result<CheckpointData> out = wal::ReadCheckpointFile(dir.path());
  ODE_ASSERT_OK(out.status());
  EXPECT_EQ(out->num_shards, 2u);
  EXPECT_EQ(out->snapshot_body, in.snapshot_body);
  EXPECT_EQ(out->covered_lsn, in.covered_lsn);
  ASSERT_EQ(out->shard_metrics.size(), 2u);
  EXPECT_EQ(out->shard_metrics[0].enqueued, 100u);
  EXPECT_EQ(out->shard_metrics[1].fired, 7u);
  EXPECT_TRUE(out->has_base_metrics);
  EXPECT_EQ(out->base_metrics.processed, 55u);
  ASSERT_EQ(out->applied.count("client a"), 1u);
  EXPECT_EQ(out->applied.at("client a").ToString(), "1-2,9");
  ASSERT_EQ(out->inflight.size(), 2u);
  ASSERT_EQ(out->inflight[1].size(), 1u);
  EXPECT_EQ(out->inflight[1][0].method, "add");
  EXPECT_EQ(out->inflight[1][0].producer_id, "client-a");
}

TEST(CheckpointTest, MissingIsNotFoundCorruptIsInvalid) {
  TempDir dir;
  Result<CheckpointData> missing = wal::ReadCheckpointFile(dir.path());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  CheckpointData data;
  data.num_shards = 1;
  data.snapshot_body = "ODE-SNAPSHOT v1\n";
  data.inflight.resize(1);
  ODE_ASSERT_OK(wal::WriteCheckpointFile(dir.path(), data));
  // Flip a byte: the checksum must catch it, and a corrupt checkpoint is
  // a hard error (silently skipping it would replay the full log against
  // an empty database).
  const std::string path = wal::CheckpointPath(dir.path());
  FILE* f = fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(fseek(f, 20, SEEK_SET), 0);
  fputc('!', f);
  fclose(f);
  Result<CheckpointData> corrupt = wal::ReadCheckpointFile(dir.path());
  EXPECT_EQ(corrupt.status().code(), StatusCode::kInvalidArgument);
}

// ---- LoadDurableState --------------------------------------------------

TEST(RecoveryTest, FiltersRecordsCoveredByTheCheckpoint) {
  TempDir dir;
  {
    LogWriter writer;
    ODE_ASSERT_OK(writer.Open(wal::ShardLogPath(dir.path(), 0), 0,
                              PolicyOptions(dir.path(),
                                            FsyncPolicy::kAlways)));
    for (int i = 0; i < 6; ++i) {
      WalRecord r = SampleRecord();
      ODE_ASSERT_OK(writer.Append(&r));
    }
  }
  CheckpointData ckpt;
  ckpt.num_shards = 1;
  ckpt.snapshot_body = "ODE-SNAPSHOT v1\n";
  ckpt.covered_lsn[0] = 4;  // Crash landed between rename and truncate.
  ckpt.inflight.resize(1);
  ODE_ASSERT_OK(wal::WriteCheckpointFile(dir.path(), ckpt));

  Result<wal::RecoveredState> state = wal::LoadDurableState(dir.path());
  ODE_ASSERT_OK(state.status());
  EXPECT_TRUE(state->had_checkpoint);
  ASSERT_EQ(state->replay.count(0), 1u);
  ASSERT_EQ(state->replay.at(0).size(), 2u);  // lsns 5 and 6 only.
  EXPECT_EQ(state->replay.at(0)[0].lsn, 5u);
  EXPECT_EQ(state->skipped_covered, 4u);
  EXPECT_EQ(state->file_last_lsn.at(0), 6u);
}

// ---- Runtime recovery (clean restart) ----------------------------------

Status CountAction(const ActionContext& ctx) {
  Result<Value> t = ctx.db->PeekAttr(ctx.self, "touches");
  if (!t.ok()) return t.status();
  Result<Value> next = t->Add(Value(1));
  if (!next.ok()) return next.status();
  return ctx.db->SetAttr(ctx.txn, ctx.self, "touches", next.value());
}

ClassDef CellClass() {
  ClassDef def("cell");
  def.AddAttr("v", Value(0));
  def.AddAttr("touches", Value(0));
  def.AddMethod(MethodDef{
      "add",
      {{"int", "d"}},
      MethodKind::kUpdate,
      [](MethodContext* ctx) -> Status {
        ODE_ASSIGN_OR_RETURN(Value v, ctx->Get("v"));
        ODE_ASSIGN_OR_RETURN(Value d, ctx->Arg("d"));
        ODE_ASSIGN_OR_RETURN(Value next, v.Add(d));
        return ctx->Set("v", next);
      }});
  def.AddTrigger("T1(): perpetual every 3 (after add) ==> count");
  return def;
}

std::vector<Oid> SetupCells(Database* db, size_t n) {
  EXPECT_TRUE(db->RegisterAction("count", CountAction).ok());
  EXPECT_TRUE(db->RegisterClass(CellClass()).status().ok());
  std::vector<Oid> oids;
  TxnId t = db->Begin().value();
  for (size_t i = 0; i < n; ++i) {
    Result<Oid> oid = db->New(t, "cell");
    EXPECT_TRUE(oid.ok());
    oids.push_back(*oid);
    ODE_EXPECT_OK(db->ActivateTrigger(t, *oid, "T1"));
  }
  ODE_EXPECT_OK(db->Commit(t));
  return oids;
}

IngestOptions DurableOptions(const std::string& dir) {
  IngestOptions o;
  o.num_shards = 2;
  o.durability.dir = dir;
  o.durability.fsync = FsyncPolicy::kAlways;
  return o;
}

TEST(DurableRuntimeTest, CleanRestartRestoresStateWithoutReplay) {
  TempDir dir;
  constexpr int kEvents = 50;
  {
    Database db;
    std::vector<Oid> oids = SetupCells(&db, 4);
    IngestRuntime rt(&db, DurableOptions(dir.path()));
    ODE_ASSERT_OK(rt.Start());
    for (int i = 0; i < kEvents; ++i) {
      ODE_ASSERT_OK(rt.Post(oids[i % oids.size()], "add", {Value(1)}));
    }
    ODE_ASSERT_OK(rt.Drain());
    ODE_ASSERT_OK(rt.Checkpoint());  // Everything lands in the snapshot.
    ODE_ASSERT_OK(rt.Stop());
  }
  {
    Database db;
    std::vector<Oid> oids = SetupCells(&db, 4);
    IngestRuntime rt(&db, DurableOptions(dir.path()));
    ODE_ASSERT_OK(rt.Start());
    EXPECT_TRUE(rt.recovery().had_checkpoint);
    EXPECT_EQ(rt.recovery().replayed_events, 0u);  // Checkpoint covered all.
    int64_t total = 0;
    int64_t touches = 0;
    for (const Oid& oid : oids) {
      total += db.PeekAttr(oid, "v").value().AsInt().value();
      touches += db.PeekAttr(oid, "touches").value().AsInt().value();
    }
    EXPECT_EQ(total, kEvents);
    // 50 adds over 4 cells: 12+13+13+12 adds → 4+4+4+4 T1 firings... the
    // exact split depends on oid routing, so check the invariant instead:
    // touches == sum over cells of floor(adds/3).
    int64_t expect_touches = 0;
    for (const Oid& oid : oids) {
      expect_touches += db.PeekAttr(oid, "v").value().AsInt().value() / 3;
    }
    EXPECT_EQ(touches, expect_touches);
    // Metrics baselines carried the first run's history.
    EXPECT_GE(rt.Metrics().total.processed, static_cast<uint64_t>(kEvents));
    ODE_ASSERT_OK(rt.Stop());
  }
}

TEST(DurableRuntimeTest, StopWithoutCheckpointReplaysTheLog) {
  TempDir dir;
  constexpr int kEvents = 30;
  {
    Database db;
    std::vector<Oid> oids = SetupCells(&db, 2);
    IngestRuntime rt(&db, DurableOptions(dir.path()));
    ODE_ASSERT_OK(rt.Start());
    for (int i = 0; i < kEvents; ++i) {
      ODE_ASSERT_OK(rt.Post(oids[i % oids.size()], "add", {Value(1)}));
    }
    ODE_ASSERT_OK(rt.Stop());  // Graceful, but no checkpoint: WAL keeps all.
  }
  {
    Database db;
    std::vector<Oid> oids = SetupCells(&db, 2);
    IngestRuntime rt(&db, DurableOptions(dir.path()));
    ODE_ASSERT_OK(rt.Start());
    // The baseline checkpoint from run 1's Start covered the pre-Start
    // state; all posts after it replay from the log.
    EXPECT_EQ(rt.recovery().replayed_events, static_cast<uint64_t>(kEvents));
    int64_t total = 0;
    for (const Oid& oid : oids) {
      total += db.PeekAttr(oid, "v").value().AsInt().value();
    }
    EXPECT_EQ(total, kEvents);
    ODE_ASSERT_OK(rt.Stop());
  }
}

TEST(DurableRuntimeTest, AppliedSeqsSurviveRestartExactlyOnce) {
  TempDir dir;
  {
    Database db;
    std::vector<Oid> oids = SetupCells(&db, 1);
    IngestRuntime rt(&db, DurableOptions(dir.path()));
    ODE_ASSERT_OK(rt.Start());
    for (uint64_t seq = 1; seq <= 10; ++seq) {
      ODE_ASSERT_OK(
          rt.Post(oids[0], "add", {Value(1)}, nullptr, "client-x", seq));
    }
    ODE_ASSERT_OK(rt.Drain());
    ODE_ASSERT_OK(rt.Checkpoint());
    ODE_ASSERT_OK(rt.Stop());
  }
  {
    Database db;
    std::vector<Oid> oids = SetupCells(&db, 1);
    IngestRuntime rt(&db, DurableOptions(dir.path()));
    ODE_ASSERT_OK(rt.Start());
    SeqSet applied = rt.AppliedSeqs("client-x");
    EXPECT_EQ(applied.ToString(), "1-10");
    EXPECT_TRUE(applied.Contains(5));
    EXPECT_TRUE(rt.AppliedSeqs("nobody").empty());
    ODE_ASSERT_OK(rt.Stop());
  }
}

TEST(DurableRuntimeTest, WalDisabledLeavesCheckpointUnavailable) {
  Database db;
  std::vector<Oid> oids = SetupCells(&db, 1);
  IngestRuntime rt(&db);  // No durability configured.
  ODE_ASSERT_OK(rt.Start());
  EXPECT_FALSE(rt.recovery().attempted);
  EXPECT_EQ(rt.Checkpoint().code(), StatusCode::kFailedPrecondition);
  // Identity tracking still works without a WAL (in-memory dedup).
  ODE_ASSERT_OK(rt.Post(oids[0], "add", {Value(1)}, nullptr, "mem-client", 1));
  ODE_ASSERT_OK(rt.Drain());
  EXPECT_TRUE(rt.AppliedSeqs("mem-client").Contains(1));
  ODE_ASSERT_OK(rt.Stop());
}

TEST(DurableRuntimeTest, ShardCountChangeReplaysOrphanLogs) {
  TempDir dir;
  constexpr int kEvents = 24;
  {
    Database db;
    std::vector<Oid> oids = SetupCells(&db, 3);
    IngestOptions o = DurableOptions(dir.path());
    o.num_shards = 4;
    IngestRuntime rt(&db, o);
    ODE_ASSERT_OK(rt.Start());
    for (int i = 0; i < kEvents; ++i) {
      ODE_ASSERT_OK(rt.Post(oids[i % oids.size()], "add", {Value(1)}));
    }
    ODE_ASSERT_OK(rt.Stop());
  }
  {
    Database db;
    std::vector<Oid> oids = SetupCells(&db, 3);
    IngestOptions o = DurableOptions(dir.path());
    o.num_shards = 1;  // Fewer shards: files 1..3 become orphans.
    IngestRuntime rt(&db, o);
    ODE_ASSERT_OK(rt.Start());
    EXPECT_EQ(rt.recovery().replayed_events, static_cast<uint64_t>(kEvents));
    int64_t total = 0;
    for (const Oid& oid : oids) {
      total += db.PeekAttr(oid, "v").value().AsInt().value();
    }
    EXPECT_EQ(total, kEvents);
    // The post-recovery checkpoint unlinked the orphan files.
    EXPECT_EQ(wal::ListShardLogs(dir.path()), std::vector<size_t>{0});
    ODE_ASSERT_OK(rt.Stop());
  }
}

}  // namespace
}  // namespace ode
