#include "txn/lock_manager.h"

#include <gtest/gtest.h>

namespace ode {
namespace {

constexpr Oid kA{1};
constexpr Oid kB{2};

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, kA, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(2, kA, LockMode::kShared).ok());
  EXPECT_EQ(lm.HoldersOf(kA).size(), 2u);
}

TEST(LockManagerTest, ExclusiveConflicts) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, kA, LockMode::kExclusive).ok());
  EXPECT_EQ(lm.Acquire(2, kA, LockMode::kShared).code(),
            StatusCode::kWouldBlock);
  EXPECT_EQ(lm.Acquire(2, kA, LockMode::kExclusive).code(),
            StatusCode::kWouldBlock);
  lm.Release(1);
  EXPECT_TRUE(lm.Acquire(2, kA, LockMode::kExclusive).ok());
}

TEST(LockManagerTest, ReentrantAndUpgrade) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, kA, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(1, kA, LockMode::kShared).ok());
  // Sole holder upgrades S -> X.
  EXPECT_TRUE(lm.Acquire(1, kA, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Holds(1, kA, LockMode::kExclusive));
  // X implies S.
  EXPECT_TRUE(lm.Acquire(1, kA, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Holds(1, kA, LockMode::kExclusive));
}

TEST(LockManagerTest, UpgradeBlockedByOtherReader) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, kA, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(2, kA, LockMode::kShared).ok());
  EXPECT_EQ(lm.Acquire(1, kA, LockMode::kExclusive).code(),
            StatusCode::kWouldBlock);
  lm.Release(2);
  EXPECT_TRUE(lm.Acquire(1, kA, LockMode::kExclusive).ok());
}

TEST(LockManagerTest, DeadlockDetected) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, kA, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(2, kB, LockMode::kExclusive).ok());
  // 1 waits for B (held by 2).
  EXPECT_EQ(lm.Acquire(1, kB, LockMode::kExclusive).code(),
            StatusCode::kWouldBlock);
  // 2 waiting for A would close the cycle.
  EXPECT_EQ(lm.Acquire(2, kA, LockMode::kExclusive).code(),
            StatusCode::kDeadlock);
  EXPECT_EQ(lm.deadlocks_detected(), 1u);
}

TEST(LockManagerTest, ThreeWayDeadlock) {
  LockManager lm;
  constexpr Oid kC{3};
  EXPECT_TRUE(lm.Acquire(1, kA, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(2, kB, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(3, kC, LockMode::kExclusive).ok());
  EXPECT_EQ(lm.Acquire(1, kB, LockMode::kExclusive).code(),
            StatusCode::kWouldBlock);
  EXPECT_EQ(lm.Acquire(2, kC, LockMode::kExclusive).code(),
            StatusCode::kWouldBlock);
  EXPECT_EQ(lm.Acquire(3, kA, LockMode::kExclusive).code(),
            StatusCode::kDeadlock);
}

TEST(LockManagerTest, ReleaseClearsWaitEdges) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, kA, LockMode::kExclusive).ok());
  EXPECT_EQ(lm.Acquire(2, kA, LockMode::kExclusive).code(),
            StatusCode::kWouldBlock);
  lm.Release(1);
  // 2 can retry; and 1 waiting on 2's (new) lock is not a stale deadlock.
  EXPECT_TRUE(lm.Acquire(2, kA, LockMode::kExclusive).ok());
  EXPECT_EQ(lm.Acquire(1, kA, LockMode::kExclusive).code(),
            StatusCode::kWouldBlock);
}

TEST(LockManagerTest, ObjectsLockedBy) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, kA, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(1, kB, LockMode::kExclusive).ok());
  EXPECT_EQ(lm.ObjectsLockedBy(1).size(), 2u);
  lm.Release(1);
  EXPECT_EQ(lm.ObjectsLockedBy(1).size(), 0u);
  EXPECT_EQ(lm.num_locked_objects(), 0u);
}

}  // namespace
}  // namespace ode
