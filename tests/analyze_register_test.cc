// The registration hook: DatabaseOptions::analyze_triggers runs the
// ode-lint layers inside Database::RegisterClass.
#include <gtest/gtest.h>

#include <string>

#include "ode/database.h"

namespace ode {
namespace {

ClassDef AccountWith(const std::string& trigger_dsl) {
  ClassDef def("account");
  def.AddAttr("balance", Value(0));
  def.AddMethod(MethodDef{
      "withdraw", {{"int", "amount"}}, MethodKind::kUpdate, nullptr});
  def.AddMethod(MethodDef{
      "deposit", {{"int", "amount"}}, MethodKind::kUpdate, nullptr});
  def.AddTrigger(trigger_dsl, HistoryView::kFull, /*auto_activate=*/false);
  return def;
}

const Diagnostic* Find(const std::vector<Diagnostic>& diags,
                       std::string_view id) {
  for (const Diagnostic& d : diags) {
    if (d.id == id) return &d;
  }
  return nullptr;
}

TEST(RegisterAnalysisTest, OffModeRecordsNothing) {
  Database db;  // analyze_triggers defaults to kOff.
  Result<ClassId> id = db.RegisterClass(
      AccountWith("dead(): after withdraw(q) && q > 9 && q < 1 ==> noop"));
  EXPECT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_TRUE(db.analysis_diagnostics().empty());
}

TEST(RegisterAnalysisTest, WarnModeRecordsButRegisters) {
  DatabaseOptions options;
  options.analyze_triggers = DatabaseOptions::TriggerAnalysisMode::kWarn;
  Database db(options);
  Result<ClassId> id = db.RegisterClass(
      AccountWith("dead(): after withdraw(q) && q > 9 && q < 1 ==> noop"));
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  const std::vector<Diagnostic>& diags = db.analysis_diagnostics();
  const Diagnostic* l001 = Find(diags, "L001");
  ASSERT_NE(l001, nullptr);
  EXPECT_EQ(l001->trigger, "dead");
  EXPECT_NE(Find(diags, "A001"), nullptr);

  // The class is fully usable despite the findings.
  EXPECT_NE(db.classes().Find("account"), nullptr);
}

TEST(RegisterAnalysisTest, RejectModeFailsRegistrationOnError) {
  DatabaseOptions options;
  options.analyze_triggers = DatabaseOptions::TriggerAnalysisMode::kReject;
  Database db(options);
  Result<ClassId> id = db.RegisterClass(
      AccountWith("dead(): after withdraw(q) && q > 9 && q < 1 ==> noop"));
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(id.status().message().find("rejected by trigger analysis"),
            std::string::npos)
      << id.status().ToString();
  EXPECT_EQ(db.classes().Find("account"), nullptr);
}

TEST(RegisterAnalysisTest, RejectModeAcceptsCleanClassRecordingWarnings) {
  DatabaseOptions options;
  options.analyze_triggers = DatabaseOptions::TriggerAnalysisMode::kReject;
  Database db(options);
  // A warning-level finding (universal event part) must not reject.
  ClassDef def("account");
  def.AddAttr("balance", Value(0));
  def.AddMethod(MethodDef{
      "withdraw", {{"int", "amount"}}, MethodKind::kUpdate, nullptr});
  def.AddTrigger("noisy(): after withdraw | !after withdraw ==> noop",
                 HistoryView::kFull, /*auto_activate=*/false);
  def.AddTrigger("fine(): after withdraw(amount) && amount > balance "
                 "==> noop",
                 HistoryView::kFull, /*auto_activate=*/false);
  Result<ClassId> id = db.RegisterClass(std::move(def));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_NE(Find(db.analysis_diagnostics(), "A002"), nullptr);
  EXPECT_EQ(Find(db.analysis_diagnostics(), "L004"), nullptr);
}

TEST(RegisterAnalysisTest, UnknownMethodFlaggedWithClassContext) {
  DatabaseOptions options;
  options.analyze_triggers = DatabaseOptions::TriggerAnalysisMode::kWarn;
  Database db(options);
  Result<ClassId> id = db.RegisterClass(
      AccountWith("typo(): after withdrw ==> noop"));  // Misspelled.
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_NE(Find(db.analysis_diagnostics(), "L003"), nullptr);
}

TEST(RegisterAnalysisTest, PairwiseDuplicateAcrossClassTriggers) {
  DatabaseOptions options;
  options.analyze_triggers = DatabaseOptions::TriggerAnalysisMode::kWarn;
  Database db(options);
  ClassDef def("account");
  def.AddMethod(MethodDef{
      "withdraw", {{"int", "amount"}}, MethodKind::kUpdate, nullptr});
  def.AddMethod(MethodDef{
      "deposit", {{"int", "amount"}}, MethodKind::kUpdate, nullptr});
  def.AddTrigger("one(): after withdraw | after deposit ==> noop",
                 HistoryView::kFull, false);
  def.AddTrigger("two(): after deposit | after withdraw ==> noop",
                 HistoryView::kFull, false);
  Result<ClassId> id = db.RegisterClass(std::move(def));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  const Diagnostic* dup = Find(db.analysis_diagnostics(), "A004");
  ASSERT_NE(dup, nullptr);
  EXPECT_EQ(dup->trigger, "two");
}

TEST(RegisterAnalysisTest, DiagnosticsAccumulateAcrossRegistrations) {
  DatabaseOptions options;
  options.analyze_triggers = DatabaseOptions::TriggerAnalysisMode::kWarn;
  Database db(options);
  ASSERT_TRUE(db.RegisterClass(
                    AccountWith("dead(): after withdraw(q) && q > 9 && "
                                "q < 1 ==> noop"))
                  .ok());
  size_t first = db.analysis_diagnostics().size();
  EXPECT_GT(first, 0u);
  ClassDef other("vault");
  other.AddMethod(MethodDef{"open", {}, MethodKind::kUpdate, nullptr});
  other.AddTrigger("loop(): !after open ==> noop", HistoryView::kFull,
                   false);
  ASSERT_TRUE(db.RegisterClass(std::move(other)).ok());
  EXPECT_GT(db.analysis_diagnostics().size(), first);
}

TEST(RegisterAnalysisTest, CrossClassEquivalentTriggersAreFlagged) {
  DatabaseOptions options;
  options.analyze_triggers = DatabaseOptions::TriggerAnalysisMode::kWarn;
  Database db(options);

  // Two independent classes declare deposit(int); their triggers watch
  // the same history symbols and fire at the same points.
  ClassDef checking("checking");
  checking.AddMethod(MethodDef{
      "deposit", {{"int", "amount"}}, MethodKind::kUpdate, nullptr});
  checking.AddTrigger("watch(): every 2 (after deposit) ==> noop",
                      HistoryView::kFull, false);
  ASSERT_TRUE(db.RegisterClass(std::move(checking)).ok());
  size_t before = db.analysis_diagnostics().size();

  ClassDef savings("savings");
  savings.AddMethod(MethodDef{
      "deposit", {{"int", "amount"}}, MethodKind::kUpdate, nullptr});
  savings.AddTrigger("audit(): every 2 (after deposit) ==> noop",
                     HistoryView::kFull, false);
  ASSERT_TRUE(db.RegisterClass(std::move(savings)).ok());

  std::vector<Diagnostic> fresh(db.analysis_diagnostics().begin() + before,
                                db.analysis_diagnostics().end());
  const Diagnostic* dup = Find(fresh, "A004");
  ASSERT_NE(dup, nullptr);
  EXPECT_EQ(dup->trigger, "savings::audit");
  EXPECT_NE(dup->message.find("checking::watch"), std::string::npos)
      << dup->message;
}

TEST(RegisterAnalysisTest, CrossClassArityMismatchIsNotCompared) {
  DatabaseOptions options;
  options.analyze_triggers = DatabaseOptions::TriggerAnalysisMode::kWarn;
  Database db(options);

  ClassDef checking("checking");
  checking.AddMethod(MethodDef{
      "deposit", {{"int", "amount"}}, MethodKind::kUpdate, nullptr});
  checking.AddTrigger("watch(): after deposit ==> noop", HistoryView::kFull,
                      false);
  ASSERT_TRUE(db.RegisterClass(std::move(checking)).ok());
  size_t before = db.analysis_diagnostics().size();

  // Same method name, different arity: `deposit` here is a different
  // event, so no cross-class verdict may be produced.
  ClassDef ledger("ledger");
  ledger.AddMethod(MethodDef{"deposit",
                             {{"int", "amount"}, {"string", "memo"}},
                             MethodKind::kUpdate, nullptr});
  ledger.AddTrigger("watch(): after deposit ==> noop", HistoryView::kFull,
                    false);
  ASSERT_TRUE(db.RegisterClass(std::move(ledger)).ok());

  std::vector<Diagnostic> fresh(db.analysis_diagnostics().begin() + before,
                                db.analysis_diagnostics().end());
  EXPECT_EQ(Find(fresh, "A004"), nullptr);
  EXPECT_EQ(Find(fresh, "A005"), nullptr);
}

TEST(RegisterAnalysisTest, CrossClassSubsumptionIsFlagged) {
  DatabaseOptions options;
  options.analyze_triggers = DatabaseOptions::TriggerAnalysisMode::kWarn;
  Database db(options);

  ClassDef broad("broad");
  broad.AddMethod(MethodDef{
      "deposit", {{"int", "amount"}}, MethodKind::kUpdate, nullptr});
  broad.AddMethod(MethodDef{
      "withdraw", {{"int", "amount"}}, MethodKind::kUpdate, nullptr});
  broad.AddTrigger("any(): after deposit | after withdraw ==> noop",
                   HistoryView::kFull, false);
  ASSERT_TRUE(db.RegisterClass(std::move(broad)).ok());

  ClassDef narrow("narrow");
  narrow.AddMethod(MethodDef{
      "deposit", {{"int", "amount"}}, MethodKind::kUpdate, nullptr});
  narrow.AddMethod(MethodDef{
      "withdraw", {{"int", "amount"}}, MethodKind::kUpdate, nullptr});
  narrow.AddTrigger("just_d(): after deposit ==> noop", HistoryView::kFull,
                    false);
  ASSERT_TRUE(db.RegisterClass(std::move(narrow)).ok());

  const Diagnostic* sub = Find(db.analysis_diagnostics(), "A005");
  ASSERT_NE(sub, nullptr);
  EXPECT_EQ(sub->trigger, "narrow::just_d");
  EXPECT_NE(sub->message.find("broad::any"), std::string::npos)
      << sub->message;
}

}  // namespace
}  // namespace ode
