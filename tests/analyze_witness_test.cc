// The witness engine (analyze/witness.h): every layer-2 verdict on the
// shipped fixture specifications must carry a concrete event history,
// validated against the §4 oracle, demonstrating the claim — A001
// emptiness, A002 universality, A004/A005/A007 pair relations, and G001
// group suggestions. Also covers the exposed building blocks
// (ShortestAcceptedString, RenderSymbolEvent) and the accounting
// invariants (attached counters match, zero validation failures).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analyze/analyzer.h"
#include "analyze/witness.h"
#include "lang/event_parser.h"
#include "semantics/oracle.h"
#include "test_util.h"

namespace ode {
namespace {

using testing_util::CompileOrDie;
using testing_util::Compiled;

TriggerAnalysis Analyze(const std::string& source,
                        AnalyzeOptions options = {}) {
  Result<TriggerSpec> spec = ParseTriggerSpec(source);
  EXPECT_TRUE(spec.ok()) << source << ": " << spec.status().ToString();
  if (!spec.ok()) return {};
  return AnalyzeTrigger(*spec, options);
}

const Diagnostic* Find(const std::vector<Diagnostic>& diags,
                       std::string_view id) {
  for (const Diagnostic& d : diags) {
    if (d.id == id) return &d;
  }
  return nullptr;
}

size_t CountFires(const WitnessStep& step) {
  return static_cast<size_t>(
      std::count(step.fires.begin(), step.fires.end(), true));
}

// Mirrors tests/fixtures/never_fires.trig.
constexpr char kNeverFires[] =
    "overdrawn(): after withdraw(amount) && amount > 100 && amount < 50 "
    "==> alert\n"
    "\n"
    "impossible(): after deposit & after withdraw ==> alert\n";

// Mirrors tests/fixtures/universal.trig.
constexpr char kUniversal[] =
    "chatty(): perpetual after withdraw | !after withdraw ==> audit\n";

// Mirrors tests/fixtures/duplicates.trig.
constexpr char kDuplicates[] =
    "both_a(): after withdraw | after deposit ==> log\n"
    "\n"
    "both_b(): after deposit | after withdraw ==> log\n"
    "\n"
    "just_w(): after withdraw ==> log\n";

// ---------------------------------------------------------------- A001 --

TEST(WitnessTest, EmptinessGapCutCarriesIntegerCertificate) {
  // No integer lies strictly between 1 and 2: the only accepting path
  // needs an unrealizable symbol, and the note must say why — with the
  // gap cut called out, since the same masks are satisfiable over reals.
  TriggerAnalysis ta =
      Analyze("t(): after w(int q) && q > 1 && q < 2 ==> x");
  const Diagnostic* d = Find(ta.diagnostics, "A001");
  ASSERT_NE(d, nullptr);
  ASSERT_FALSE(d->witness.empty());
  EXPECT_EQ(ta.witness_failures, 0u);
  EXPECT_GE(ta.witnesses, d->witness.size());

  bool saw_gap_cut = false;
  for (const WitnessHistory& w : d->witness) {
    for (const WitnessStep& s : w.steps) {
      if (s.note.find("gap cut") != std::string::npos) saw_gap_cut = true;
    }
  }
  EXPECT_TRUE(saw_gap_cut);
}

TEST(WitnessTest, EmptinessProbeNeverFires) {
  TriggerAnalysis ta = Analyze("t(): after a & after b ==> x");
  const Diagnostic* d = Find(ta.diagnostics, "A001");
  ASSERT_NE(d, nullptr);
  ASSERT_FALSE(d->witness.empty());
  EXPECT_EQ(ta.witness_failures, 0u);

  // The realizable probe demonstrates non-firing: no step fires.
  const WitnessHistory* probe = nullptr;
  for (const WitnessHistory& w : d->witness) {
    if (w.claim.find("probe") != std::string::npos) probe = &w;
  }
  ASSERT_NE(probe, nullptr);
  ASSERT_FALSE(probe->steps.empty());
  for (const WitnessStep& s : probe->steps) {
    EXPECT_EQ(CountFires(s), 0u) << s.event;
  }
}

// ---------------------------------------------------------------- A002 --

TEST(WitnessTest, UniversalityWitnessFiresAtEveryStep) {
  TriggerAnalysis ta = Analyze(kUniversal);
  const Diagnostic* d = Find(ta.diagnostics, "A002");
  ASSERT_NE(d, nullptr);
  ASSERT_FALSE(d->witness.empty());
  EXPECT_EQ(ta.witness_failures, 0u);
  const WitnessHistory& w = d->witness.front();
  ASSERT_FALSE(w.steps.empty());
  for (const WitnessStep& s : w.steps) {
    EXPECT_EQ(CountFires(s), 1u) << s.event;  // One column, always firing.
  }
}

// ---------------------------------------- A004 / A005 / A007 (pairwise) --

TEST(WitnessTest, EquivalenceWitnessFiresBothTriggers) {
  AnalysisReport report = AnalyzeSpecSource(kDuplicates);
  const Diagnostic* d = Find(report.file_diagnostics, "A004");
  ASSERT_NE(d, nullptr);
  ASSERT_FALSE(d->witness.empty());
  const WitnessHistory& w = d->witness.front();
  ASSERT_EQ(w.columns.size(), 2u);
  ASSERT_FALSE(w.steps.empty());
  // The demonstration point is the last step: both triggers fire there.
  EXPECT_EQ(CountFires(w.steps.back()), 2u);
  EXPECT_EQ(report.witness_failures, 0u);
}

TEST(WitnessTest, SubsumptionWitnessDemonstratesStrictness) {
  AnalysisReport report = AnalyzeSpecSource(kDuplicates);
  const Diagnostic* d = Find(report.file_diagnostics, "A005");
  ASSERT_NE(d, nullptr);
  // Two parts: a history where both fire, then one firing only the outer
  // trigger (the containment is strict).
  ASSERT_EQ(d->witness.size(), 2u);
  ASSERT_FALSE(d->witness[0].steps.empty());
  EXPECT_EQ(CountFires(d->witness[0].steps.back()), 2u);
  ASSERT_FALSE(d->witness[1].steps.empty());
  EXPECT_EQ(CountFires(d->witness[1].steps.back()), 1u);
}

TEST(WitnessTest, SubsumptionWitnessUsesIntegerModels) {
  // firings(big) ⊂ firings(pos): the both-fire history needs a concrete
  // integer above 10 (smallest admissible: 11), the strictness history one
  // in (0, 10].
  AnalysisReport report = AnalyzeSpecSource(
      "big(): (after w(int q)) && q > 10 ==> x\n"
      "\n"
      "pos(): (after w(int q)) && q > 0 ==> x\n");
  const Diagnostic* d = Find(report.file_diagnostics, "A005");
  ASSERT_NE(d, nullptr);
  ASSERT_EQ(d->witness.size(), 2u);
  EXPECT_EQ(d->witness[0].steps.back().event, "w(q=11)");
  EXPECT_EQ(d->witness[1].steps.back().event, "w(q=1)");
  EXPECT_EQ(report.witness_failures, 0u);
}

TEST(WitnessTest, MaskImplicationPairCarriesWitness) {
  // Root composite masks differ, so the verdict needs the solver-proved
  // implication (A007); the witness must note the arithmetic caveat.
  AnalysisReport report = AnalyzeSpecSource(
      "loose(): (after deposit | after withdraw) && (q > 0 || q <= 0) "
      "==> log\n"
      "\n"
      "tight(): every 1 (after deposit) ==> log\n");
  const Diagnostic* d = Find(report.file_diagnostics, "A007");
  ASSERT_NE(d, nullptr);
  ASSERT_FALSE(d->witness.empty());
  EXPECT_NE(d->witness.front().claim.find("solver-proven"),
            std::string::npos);
  ASSERT_FALSE(d->witness.front().steps.empty());
  EXPECT_EQ(CountFires(d->witness.front().steps.back()), 2u);
  EXPECT_EQ(report.witness_failures, 0u);
}

// ---------------------------------------------------------------- G001 --

TEST(WitnessTest, GroupWitnessShowsSharedFiringPoint) {
  AnalysisReport report = AnalyzeSpecSource(kDuplicates);
  ASSERT_FALSE(report.groups.empty());
  const TriggerGroupPlan& plan = report.groups.front();
  ASSERT_FALSE(plan.witness.empty());
  EXPECT_EQ(plan.witness_failures, 0u);
  const WitnessHistory& w = plan.witness.front();
  EXPECT_EQ(w.columns.size(), plan.member_names.size());
  ASSERT_FALSE(w.steps.empty());
  // The overlap point: at least two grouped triggers fire together.
  EXPECT_GE(CountFires(w.steps.back()), 2u);

  // The G001 diagnostic carries the same history.
  const Diagnostic* d = Find(report.file_diagnostics, "G001");
  ASSERT_NE(d, nullptr);
  ASSERT_FALSE(d->witness.empty());
  EXPECT_EQ(d->witness.front().claim, w.claim);
}

// ----------------------------------------------------- fixture parity ---

TEST(WitnessTest, EveryFixtureVerdictCarriesAValidatedWitness) {
  // The acceptance bar: on the shipped fixture specifications, every
  // A001/A002/A004/A005/A007 finding carries a witness and no history was
  // suppressed by oracle replay.
  for (const char* source : {kNeverFires, kUniversal, kDuplicates}) {
    AnalysisReport report = AnalyzeSpecSource(source);
    size_t attached = 0;
    for (const Diagnostic& d : report.AllDiagnostics()) {
      if (d.id == "A001" || d.id == "A002" || d.id == "A004" ||
          d.id == "A005" || d.id == "A007") {
        EXPECT_FALSE(d.witness.empty())
            << d.id << " on '" << d.trigger << "' lacks a witness";
      }
      attached += d.witness.size();
    }
    EXPECT_EQ(report.witnesses, attached) << source;
    EXPECT_EQ(report.witness_failures, 0u) << source;
  }
}

TEST(WitnessTest, WitnessesOffAttachesNothing) {
  AnalyzeOptions options;
  options.witnesses = false;
  AnalysisReport report = AnalyzeSpecSource(kNeverFires, options);
  for (const Diagnostic& d : report.AllDiagnostics()) {
    EXPECT_TRUE(d.witness.empty()) << d.id;
  }
  EXPECT_EQ(report.witnesses, 0u);
  EXPECT_EQ(report.witness_failures, 0u);
}

// ------------------------------------------------------ building blocks --

TEST(WitnessTest, ShortestAcceptedStringIsLexLeastShortest) {
  // Over {0, 1}: accept anything that has seen symbol 1.
  Dfa dfa(2, 2);
  dfa.SetStart(0);
  dfa.SetStep(0, 0, 0);
  dfa.SetStep(0, 1, 1);
  dfa.SetStep(1, 0, 1);
  dfa.SetStep(1, 1, 1);
  dfa.SetAccepting(1, true);

  std::optional<std::vector<SymbolId>> s =
      ShortestAcceptedString(dfa, {true, true}, 4);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s, (std::vector<SymbolId>{1}));

  // With symbol 1 unrealizable the language over possible symbols is
  // empty: no witness string exists.
  EXPECT_FALSE(ShortestAcceptedString(dfa, {true, false}, 4).has_value());
}

TEST(WitnessTest, ShortestAcceptedStringReplaysThroughOracle) {
  // Building-block consistency: the string the BFS finds really is a
  // history at whose final point the expression occurs (§4).
  Compiled c = CompileOrDie("after a | after b");
  std::vector<bool> possible(c.event.alphabet.size(), true);
  std::optional<std::vector<SymbolId>> s =
      ShortestAcceptedString(c.event.dfa, possible, 8);
  ASSERT_TRUE(s.has_value());
  Oracle oracle(c.expr, &c.event.alphabet);
  Result<std::vector<bool>> points = oracle.OccurrencePoints(*s);
  ASSERT_TRUE(points.ok()) << points.status().ToString();
  EXPECT_TRUE(points->back());
}

TEST(WitnessTest, RenderSymbolEventShowsConcreteArguments) {
  Compiled c = CompileOrDie("after w(int q) && q > 10");
  const Alphabet& alphabet = c.event.alphabet;
  bool saw_model = false;
  for (size_t s = 0; s < alphabet.size(); ++s) {
    std::string rendered =
        RenderSymbolEvent(alphabet, static_cast<SymbolId>(s));
    if (rendered == "w(q=11)") saw_model = true;
  }
  EXPECT_TRUE(saw_model);
  EXPECT_EQ(RenderSymbolEvent(alphabet, alphabet.other_symbol()),
            "<other>");
}

}  // namespace
}  // namespace ode
