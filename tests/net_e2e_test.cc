// End-to-end loopback tests for the network ingest front end: an
// IngestServer over a real IngestRuntime, talked to by real IngestClients
// over TCP.
//
// The headline test drives >= 100k events from 4 concurrent client
// threads and checks oracle parity: each thread owns a disjoint set of
// objects, so a single-threaded Database replaying each thread's stream
// in order must produce the identical attribute state and trigger-firing
// counts. The remaining tests cover the wire-level contracts: kReject
// backpressure with retry-to-exactly-once delivery, the kShutdown
// handshake, malformed-frame handling, metrics/producer attribution,
// ping, and client reconnect.
#include <gtest/gtest.h>

#include <stdlib.h>
#include <sys/socket.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "ode/database.h"
#include "runtime/ingest_runtime.h"
#include "test_util.h"

namespace ode {
namespace net {
namespace {

using runtime::BackpressurePolicy;
using runtime::IngestOptions;
using runtime::IngestRuntime;

// `count` bumps `touches` — the standard observable action.
Status CountAction(const ActionContext& ctx) {
  ODE_ASSIGN_OR_RETURN(Value t, ctx.db->PeekAttr(ctx.self, "touches"));
  ODE_ASSIGN_OR_RETURN(Value next, t.Add(Value(1)));
  return ctx.db->SetAttr(ctx.txn, ctx.self, "touches", next);
}

// Parity class (same construction as runtime_ingest_test): all three
// triggers are insensitive to how events are batched into transactions,
// so concurrent sharded ingest must reproduce the single-threaded outcome
// exactly.
ClassDef ParityClass() {
  ClassDef def("cell");
  def.AddAttr("v", Value(0));
  def.AddAttr("touches", Value(0));
  def.AddMethod(MethodDef{
      "add",
      {{"int", "d"}},
      MethodKind::kUpdate,
      [](MethodContext* ctx) -> Status {
        ODE_ASSIGN_OR_RETURN(Value v, ctx->Get("v"));
        ODE_ASSIGN_OR_RETURN(Value d, ctx->Arg("d"));
        ODE_ASSIGN_OR_RETURN(Value next, v.Add(d));
        return ctx->Set("v", next);
      }});
  def.AddMethod(MethodDef{"peek", {}, MethodKind::kReadOnly, nullptr});
  def.AddTrigger("T1(): perpetual every 3 (after add) ==> count");
  def.AddTrigger("T2(): perpetual after add (d) && d > 50 ==> count");
  def.AddTrigger("T3(): perpetual relative(after add, after peek) ==> count");
  return def;
}

std::vector<Oid> SetupParityDb(Database* db, size_t num_objects) {
  EXPECT_TRUE(db->RegisterAction("count", CountAction).ok());
  EXPECT_TRUE(db->RegisterClass(ParityClass()).status().ok());
  std::vector<Oid> oids;
  TxnId t = db->Begin().value();
  for (size_t i = 0; i < num_objects; ++i) {
    Result<Oid> oid = db->New(t, "cell");
    EXPECT_TRUE(oid.ok()) << oid.status().ToString();
    oids.push_back(*oid);
    for (const char* trig : {"T1", "T2", "T3"}) {
      ODE_EXPECT_OK(db->ActivateTrigger(t, *oid, trig));
    }
  }
  ODE_EXPECT_OK(db->Commit(t));
  return oids;
}

struct WorkItem {
  size_t obj;   ///< Index into the owning thread's object slice.
  bool is_add;
  int delta;
};

std::vector<WorkItem> MakeWorkload(size_t num_objects, size_t num_events,
                                   uint32_t seed) {
  // Deterministic xorshift so the oracle can replay the exact stream.
  uint64_t state = seed * 2654435761u + 1;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  std::vector<WorkItem> work;
  work.reserve(num_events);
  for (size_t i = 0; i < num_events; ++i) {
    WorkItem w;
    w.obj = next() % num_objects;
    w.is_add = next() % 4 != 0;
    w.delta = static_cast<int>(next() % 100);
    work.push_back(w);
  }
  return work;
}

/// Full server+runtime fixture over the parity schema.
struct Rig {
  explicit Rig(IngestOptions ingest_options = {}, size_t num_objects = 16,
               ServerOptions server_options = {})
      : oids(SetupParityDb(&db, num_objects)),
        rt(&db, ingest_options),
        server(&rt, server_options) {
    ODE_EXPECT_OK(rt.Start());
    ODE_EXPECT_OK(server.Start());
  }

  ClientOptions Client() const {
    ClientOptions options;
    options.port = server.port();
    options.recv_timeout_ms = 30000;
    return options;
  }

  Database db;
  std::vector<Oid> oids;
  IngestRuntime rt;
  IngestServer server;
};

// >= 100k events from 4 concurrent clients, each owning a disjoint slice
// of objects. Parity oracle: replay each thread's stream single-threaded,
// in order, and demand identical per-object state (v, touches).
TEST(NetE2eTest, FourClientsLoopbackMatchesOracle) {
  constexpr size_t kThreads = 4;
  constexpr size_t kObjectsPerThread = 4;
  constexpr size_t kEventsPerThread = 25000;  // 100k total.

  IngestOptions ingest_options;
  ingest_options.num_shards = 4;
  ingest_options.queue_capacity = 4096;
  ingest_options.max_batch = 256;
  Rig rig(ingest_options, kThreads * kObjectsPerThread);

  std::vector<std::vector<WorkItem>> work(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    work[t] = MakeWorkload(kObjectsPerThread, kEventsPerThread,
                           static_cast<uint32_t>(t + 1));
  }

  std::vector<IngestClient::Stats> stats(kThreads);
  std::vector<Status> results(kThreads, Status::OK());
  {
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        IngestClient client(rig.Client());
        Status s = client.Connect();
        for (const WorkItem& w : work[t]) {
          if (!s.ok()) break;
          Oid oid = rig.oids[t * kObjectsPerThread + w.obj];
          s = w.is_add ? client.Post(oid, "add", {Value(w.delta)})
                       : client.Post(oid, "peek");
        }
        if (s.ok()) s = client.Drain();
        results[t] = s;
        stats[t] = client.stats();
      });
    }
    for (std::thread& th : threads) th.join();
  }
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(results[t].ok())
        << "thread " << t << ": " << results[t].ToString();
    EXPECT_EQ(stats[t].posted, kEventsPerThread) << "thread " << t;
    EXPECT_EQ(stats[t].errors, 0u) << "thread " << t;
  }

  // Runtime totals match the client-side counts exactly.
  runtime::RuntimeMetricsSnapshot snap = rig.rt.Metrics();
  EXPECT_EQ(snap.total.enqueued, kThreads * kEventsPerThread);
  EXPECT_EQ(snap.total.processed, kThreads * kEventsPerThread);
  EXPECT_EQ(snap.total.dropped, 0u);
  EXPECT_EQ(snap.total.dead_lettered, 0u);
  uint64_t producer_accepted = 0;
  for (const auto& p : snap.producers) producer_accepted += p.accepted;
  EXPECT_EQ(producer_accepted, kThreads * kEventsPerThread);

  // Oracle: one transaction per event, fully single-threaded, respecting
  // each thread's post order (threads own disjoint objects, so per-object
  // order is exactly the owning thread's order).
  Database oracle;
  std::vector<Oid> oracle_oids =
      SetupParityDb(&oracle, kThreads * kObjectsPerThread);
  for (size_t t = 0; t < kThreads; ++t) {
    for (const WorkItem& w : work[t]) {
      TxnId txn = oracle.Begin().value();
      Oid oid = oracle_oids[t * kObjectsPerThread + w.obj];
      Result<Value> r = w.is_add
                            ? oracle.Call(txn, oid, "add", {Value(w.delta)})
                            : oracle.Call(txn, oid, "peek");
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      ODE_ASSERT_OK(oracle.Commit(txn));
    }
  }
  for (size_t i = 0; i < rig.oids.size(); ++i) {
    Result<Value> v = rig.db.PeekAttr(rig.oids[i], "v");
    Result<Value> ov = oracle.PeekAttr(oracle_oids[i], "v");
    Result<Value> touches = rig.db.PeekAttr(rig.oids[i], "touches");
    Result<Value> otouches = oracle.PeekAttr(oracle_oids[i], "touches");
    ASSERT_TRUE(v.ok() && ov.ok() && touches.ok() && otouches.ok());
    EXPECT_EQ(v->AsInt().value(), ov->AsInt().value()) << "object " << i;
    EXPECT_EQ(touches->AsInt().value(), otouches->AsInt().value())
        << "object " << i;
  }
}

// kReject backpressure: tiny queues bounce posts with ERR_WOULD_BLOCK;
// Drain's retry rounds must deliver every event exactly once.
TEST(NetE2eTest, RejectBackpressureRetriesToExactlyOnce) {
  constexpr size_t kEvents = 5000;
  IngestOptions ingest_options;
  ingest_options.num_shards = 2;
  ingest_options.queue_capacity = 16;
  ingest_options.max_batch = 8;
  ingest_options.backpressure = BackpressurePolicy::kReject;
  Rig rig(ingest_options, 4);

  ClientOptions client_options = rig.Client();
  client_options.flush_threshold = 4096;  // Burst hard at the small queues.
  client_options.max_drain_retries = 16;
  IngestClient client(client_options);
  ODE_ASSERT_OK(client.Connect());
  for (size_t i = 0; i < kEvents; ++i) {
    ODE_ASSERT_OK(client.Post(rig.oids[i % 4], "add", {Value(1)}));
  }
  ODE_ASSERT_OK(client.Drain());

  // Exactly-once: every add landed exactly once, regardless of how many
  // times kReject bounced it on the way in.
  int64_t total = 0;
  for (const Oid& oid : rig.oids) {
    total += rig.db.PeekAttr(oid, "v").value().AsInt().value();
  }
  EXPECT_EQ(total, static_cast<int64_t>(kEvents));
  runtime::RuntimeMetricsSnapshot snap = rig.rt.Metrics();
  EXPECT_EQ(snap.total.processed, kEvents);
  const IngestClient::Stats& st = client.stats();
  EXPECT_EQ(st.posted, kEvents);
  EXPECT_EQ(st.resent, st.rejected);  // Every bounce was retried.
}

// Post after IngestRuntime::Stop(): the server replies ERR_SHUTTING_DOWN
// and closes; the client surfaces kShutdown.
TEST(NetE2eTest, ShutdownHandshake) {
  Rig rig;
  ClientOptions client_options = rig.Client();
  client_options.auto_reconnect = false;
  IngestClient client(client_options);
  ODE_ASSERT_OK(client.Connect());
  ODE_ASSERT_OK(client.Post(rig.oids[0], "add", {Value(1)}));
  ODE_ASSERT_OK(client.Drain());

  ODE_ASSERT_OK(rig.rt.Stop());
  ODE_ASSERT_OK(client.Post(rig.oids[0], "add", {Value(2)}));
  Status s = client.Drain();
  EXPECT_EQ(s.code(), StatusCode::kShutdown) << s.ToString();
  EXPECT_FALSE(client.connected());
}

// Garbage bytes on a raw socket: the server answers with one
// ERR_MALFORMED frame and closes the connection.
TEST(NetE2eTest, MalformedFrameGetsErrAndClose) {
  Rig rig;
  Result<Socket> sock = TcpConnect("127.0.0.1", rig.server.port());
  ODE_ASSERT_OK(sock.status());
  // A header declaring a payload far beyond kMaxFramePayload.
  const unsigned char garbage[] = {0xFF, 0xFF, 0xFF, 0xFF, 0x01};
  ASSERT_EQ(::send(sock->fd(), garbage, sizeof(garbage), MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(garbage)));

  FrameDecoder decoder;
  Frame frame;
  bool got_err = false;
  bool closed = false;
  char chunk[4096];
  while (!closed) {
    ssize_t n = ::recv(sock->fd(), chunk, sizeof(chunk), 0);
    if (n <= 0) {
      closed = true;
      break;
    }
    decoder.Append(chunk, static_cast<size_t>(n));
    while (decoder.Next(&frame) == FrameDecoder::State::kFrame) {
      EXPECT_EQ(frame.type, FrameType::kErr);
      EXPECT_EQ(frame.error, WireError::kMalformed);
      got_err = true;
    }
  }
  EXPECT_TRUE(got_err);
  EXPECT_TRUE(closed);
}

TEST(NetE2eTest, PingAndRemoteMetrics) {
  Rig rig;
  IngestClient client(rig.Client());
  ODE_ASSERT_OK(client.Connect());
  ODE_ASSERT_OK(client.Ping());
  for (int i = 0; i < 10; ++i) {
    ODE_ASSERT_OK(client.Post(rig.oids[0], "add", {Value(1)}));
  }
  ODE_ASSERT_OK(client.Drain());

  Result<RemoteMetrics> metrics = client.Metrics();
  ODE_ASSERT_OK(metrics.status());
  EXPECT_EQ(metrics->total.enqueued, 10u);
  EXPECT_EQ(metrics->total.processed, 10u);
  EXPECT_EQ(metrics->shards.size(), rig.rt.num_shards());
  ASSERT_FALSE(metrics->producers.empty());
  uint64_t accepted = 0;
  for (const auto& p : metrics->producers) accepted += p.accepted;
  EXPECT_EQ(accepted, 10u);
  // The remote snapshot agrees with the in-process one.
  runtime::RuntimeMetricsSnapshot local = rig.rt.Metrics();
  EXPECT_EQ(metrics->total.enqueued, local.total.enqueued);
  EXPECT_EQ(metrics->total.fired, local.total.fired);
}

// Connection churn: each disconnect retires the connection's producer
// into the aggregate "retired[n]" entry, so the producer list (and the
// METRICS_REPLY payload) stays bounded on a long-running daemon while the
// totals are preserved.
TEST(NetE2eTest, DisconnectRetiresProducers) {
  Rig rig;
  constexpr int kChurn = 8;
  for (int i = 0; i < kChurn; ++i) {
    IngestClient client(rig.Client());
    ODE_ASSERT_OK(client.Connect());
    ODE_ASSERT_OK(client.Post(rig.oids[0], "add", {Value(1)}));
    ODE_ASSERT_OK(client.Drain());
    client.Close();
  }
  // Retirement happens when the server's loop observes the disconnect;
  // poll briefly for the list to collapse to the aggregate entry.
  runtime::RuntimeMetricsSnapshot snap;
  for (int spin = 0; spin < 200; ++spin) {
    snap = rig.rt.Metrics();
    if (snap.producers.size() == 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(snap.producers.size(), 1u);
  EXPECT_EQ(snap.producers[0].name, "retired[8]");
  EXPECT_EQ(snap.producers[0].posted, static_cast<uint64_t>(kChurn));
  EXPECT_EQ(snap.producers[0].accepted, static_cast<uint64_t>(kChurn));
}

// The server survives a mid-stream disconnect, and a client reconnects to
// a fresh server on the same port and replays its pipeline.
TEST(NetE2eTest, ClientReconnectsAndReplays) {
  Database db;
  std::vector<Oid> oids = SetupParityDb(&db, 4);
  IngestRuntime rt(&db, {});
  ODE_ASSERT_OK(rt.Start());
  auto server1 = std::make_unique<IngestServer>(&rt);
  ODE_ASSERT_OK(server1->Start());
  uint16_t port = server1->port();

  ClientOptions client_options;
  client_options.port = port;
  client_options.recv_timeout_ms = 30000;
  client_options.max_reconnect_attempts = 20;
  client_options.reconnect_backoff = std::chrono::milliseconds(50);
  IngestClient client(client_options);
  ODE_ASSERT_OK(client.Connect());
  ODE_ASSERT_OK(client.Post(oids[0], "add", {Value(1)}));
  ODE_ASSERT_OK(client.Drain());

  server1->Stop();
  server1.reset();
  IngestServer server2(&rt, [port] {
    ServerOptions o;
    o.port = port;
    return o;
  }());
  ODE_ASSERT_OK(server2.Start());

  // Posts queue locally; Drain hits the dead socket, reconnects (possibly
  // on a later attempt), and replays the pipeline to server2.
  ODE_ASSERT_OK(client.Post(oids[1], "add", {Value(5)}));
  Status s;
  for (int attempt = 0; attempt < 10; ++attempt) {
    s = client.Drain();
    if (s.ok()) break;
  }
  ODE_ASSERT_OK(s);
  EXPECT_GE(client.stats().reconnects, 1u);
  EXPECT_EQ(db.PeekAttr(oids[1], "v").value().AsInt().value(), 5);
  ODE_ASSERT_OK(rt.Stop());
}

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/ode-net-e2e-XXXXXX";
    char* got = mkdtemp(tmpl);
    EXPECT_NE(got, nullptr);
    path_ = got != nullptr ? got : "";
  }
  ~TempDir() {
    if (!path_.empty()) {
      std::string cmd = "rm -rf '" + path_ + "'";
      (void)!system(cmd.c_str());
    }
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Posts `n` add(1)s to `oid` and waits until the runtime has accepted
/// them all, WITHOUT draining — the server's cumulative-ACK cadence
/// (default every 1024) means the client still holds every post unacked,
/// which is exactly the duplicate-delivery hazard on reconnect.
void PostUnacked(IngestClient* client, IngestRuntime* rt, Oid oid, int n,
                 uint64_t expect_enqueued) {
  for (int i = 0; i < n; ++i) {
    ODE_ASSERT_OK(client->Post(oid, "add", {Value(1)}));
  }
  ODE_ASSERT_OK(client->Flush());
  for (int spin = 0; spin < 500; ++spin) {
    if (rt->Metrics().total.enqueued >= expect_enqueued) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(rt->Metrics().total.enqueued, expect_enqueued);
  EXPECT_EQ(client->stats().acked, 0u);
}

// A client with a durable identity replays its unacked pipeline across a
// server swap; the server's applied-seq snapshot recognizes every replayed
// seq and ACKs without re-posting — exactly-once with no WAL involved.
TEST(NetE2eTest, IdentityDedupsReplayAcrossServerSwap) {
  Database db;
  std::vector<Oid> oids = SetupParityDb(&db, 4);
  IngestRuntime rt(&db, {});
  ODE_ASSERT_OK(rt.Start());
  auto server1 = std::make_unique<IngestServer>(&rt);
  ODE_ASSERT_OK(server1->Start());
  uint16_t port = server1->port();

  ClientOptions client_options;
  client_options.port = port;
  client_options.recv_timeout_ms = 30000;
  client_options.max_reconnect_attempts = 20;
  client_options.reconnect_backoff = std::chrono::milliseconds(50);
  client_options.identity = "e2e-swap-client";
  IngestClient client(client_options);
  ODE_ASSERT_OK(client.Connect());
  constexpr int kFirst = 10;
  PostUnacked(&client, &rt, oids[0], kFirst, kFirst);

  // Swap servers: the applied posts are gone from no one's memory — the
  // runtime keeps the identity's applied set.
  server1->Stop();
  server1.reset();
  IngestServer server2(&rt, [port] {
    ServerOptions o;
    o.port = port;
    return o;
  }());
  ODE_ASSERT_OK(server2.Start());

  ODE_ASSERT_OK(client.Post(oids[0], "add", {Value(1)}));
  Status s;
  for (int attempt = 0; attempt < 10; ++attempt) {
    s = client.Drain();
    if (s.ok()) break;
  }
  ODE_ASSERT_OK(s);
  EXPECT_GE(client.stats().reconnects, 1u);

  // Exactly-once: kFirst + 1 applications, not kFirst*2 + 1.
  EXPECT_EQ(db.PeekAttr(oids[0], "v").value().AsInt().value(), kFirst + 1);
  EXPECT_EQ(server2.posts_deduped(), static_cast<uint64_t>(kFirst));
  ODE_ASSERT_OK(rt.Stop());
}

// The shutdown-path complement to the swap test: a clean Stop() flushes
// each connection's earned ACK watermark, so a client that pumps its
// replies before redialing has an empty replay pipeline — the follow-up
// session posts only new work and the dedup path never fires.
TEST(NetE2eTest, StopFlushedAcksKeepReplayExactlyOnce) {
  Database db;
  std::vector<Oid> oids = SetupParityDb(&db, 4);
  IngestRuntime rt(&db, {});
  ODE_ASSERT_OK(rt.Start());
  auto server1 = std::make_unique<IngestServer>(&rt);
  ODE_ASSERT_OK(server1->Start());
  uint16_t port = server1->port();

  ClientOptions client_options;
  client_options.port = port;
  client_options.recv_timeout_ms = 30000;
  client_options.max_reconnect_attempts = 20;
  client_options.reconnect_backoff = std::chrono::milliseconds(50);
  client_options.identity = "e2e-stop-flush-client";
  IngestClient client(client_options);
  ODE_ASSERT_OK(client.Connect());
  constexpr int kFirst = 10;
  PostUnacked(&client, &rt, oids[0], kFirst, kFirst);

  // Stop() sends the watermark before closing (the data precedes the FIN,
  // so one reply pump is enough); the ACK empties the client's unacked
  // pipeline.
  server1->Stop();
  server1.reset();
  ODE_ASSERT_OK(client.Flush());
  EXPECT_EQ(client.stats().acked, static_cast<uint64_t>(kFirst));

  IngestServer server2(&rt, [port] {
    ServerOptions o;
    o.port = port;
    return o;
  }());
  ODE_ASSERT_OK(server2.Start());

  ODE_ASSERT_OK(client.Post(oids[0], "add", {Value(1)}));
  Status s;
  for (int attempt = 0; attempt < 10; ++attempt) {
    s = client.Drain();
    if (s.ok()) break;
  }
  ODE_ASSERT_OK(s);
  EXPECT_GE(client.stats().reconnects, 1u);

  // Exactly-once with zero replay: only the new post crossed the wire.
  EXPECT_EQ(db.PeekAttr(oids[0], "v").value().AsInt().value(), kFirst + 1);
  EXPECT_EQ(server2.posts_deduped(), 0u);
  ODE_ASSERT_OK(rt.Stop());
}

// The tentpole end-to-end: server AND runtime restart over the same WAL
// directory (crash-recovery), and a reconnecting identified client still
// observes exactly-once — its replayed posts are recognized from the
// recovered applied-seq state and ACKed without re-posting.
TEST(NetE2eTest, ExactlyOnceAcrossServerRestartWithWal) {
  TempDir wal_dir;
  IngestOptions durable;
  durable.num_shards = 2;
  durable.durability.dir = wal_dir.path();
  durable.durability.fsync = wal::FsyncPolicy::kAlways;

  ClientOptions client_options;
  client_options.recv_timeout_ms = 30000;
  client_options.max_reconnect_attempts = 20;
  client_options.reconnect_backoff = std::chrono::milliseconds(50);
  client_options.identity = "e2e-restart-client";

  constexpr int kFirst = 12;
  constexpr int kSecond = 5;
  uint16_t port = 0;

  auto db1 = std::make_unique<Database>();
  std::vector<Oid> oids = SetupParityDb(db1.get(), 4);
  auto rt1 = std::make_unique<IngestRuntime>(db1.get(), durable);
  ODE_ASSERT_OK(rt1->Start());
  auto server1 = std::make_unique<IngestServer>(rt1.get());
  ODE_ASSERT_OK(server1->Start());
  port = server1->port();

  client_options.port = port;
  IngestClient client(client_options);
  ODE_ASSERT_OK(client.Connect());
  PostUnacked(&client, rt1.get(), oids[0], kFirst, kFirst);
  ODE_ASSERT_OK(rt1->Drain());  // Server-side: process what arrived.

  // "Restart": tear down the whole process state except the WAL dir.
  // (Stop() fsyncs; the kill-without-fsync case is wal_crash_test's.)
  server1->Stop();
  server1.reset();
  ODE_ASSERT_OK(rt1->Stop());
  rt1.reset();
  db1.reset();

  Database db2;
  std::vector<Oid> oids2 = SetupParityDb(&db2, 4);
  IngestRuntime rt2(&db2, durable);
  ODE_ASSERT_OK(rt2.Start());  // Recovers snapshot + replays the WAL.
  EXPECT_EQ(rt2.AppliedSeqs(client_options.identity).count(),
            static_cast<uint64_t>(kFirst));
  IngestServer server2(&rt2, [port] {
    ServerOptions o;
    o.port = port;
    return o;
  }());
  ODE_ASSERT_OK(server2.Start());

  // The client never saw an ACK for its first pipeline: on the next
  // Drain it reconnects, HELLOs, and replays all kFirst + kSecond posts.
  for (int i = 0; i < kSecond; ++i) {
    ODE_ASSERT_OK(client.Post(oids2[0], "add", {Value(1)}));
  }
  Status s;
  for (int attempt = 0; attempt < 10; ++attempt) {
    s = client.Drain();
    if (s.ok()) break;
  }
  ODE_ASSERT_OK(s);
  EXPECT_GE(client.stats().reconnects, 1u);

  // Exactly-once across the restart: every one of the kFirst pre-restart
  // posts was applied exactly once (recovered), every post-restart post
  // exactly once, duplicates ACKed away.
  EXPECT_EQ(db2.PeekAttr(oids2[0], "v").value().AsInt().value(),
            kFirst + kSecond);
  EXPECT_EQ(server2.posts_deduped(), static_cast<uint64_t>(kFirst));
  ODE_ASSERT_OK(rt2.Stop());
}

}  // namespace
}  // namespace net
}  // namespace ode
