#include "mask/mask_eval.h"

#include <gtest/gtest.h>

#include "lang/mask_parser.h"
#include "test_util.h"

namespace ode {
namespace {

using testing_util::ParseMaskOrDie;

Value Eval(const std::string& text, const SimpleMaskEnv& env) {
  MaskExprPtr m = ParseMaskOrDie(text);
  Result<Value> v = EvalMask(*m, env);
  EXPECT_TRUE(v.ok()) << text << ": " << v.status().ToString();
  return v.ok() ? *v : Value();
}

TEST(MaskParseTest, Precedence) {
  // * binds tighter than +, + than <, < than &&, && than ||.
  MaskExprPtr m = ParseMaskOrDie("a + b * c < d && e || f");
  EXPECT_EQ(m->ToString(), "((((a + (b * c)) < d) && e) || f)");
  SimpleMaskEnv env;
  env.Bind("a", 1);
  env.Bind("b", 2);
  env.Bind("c", 3);
  env.Bind("d", 10);
  env.Bind("e", true);
  env.Bind("f", false);
  EXPECT_TRUE(Eval("a + b * c < d && e || f", env).AsBool().value());
  env.Bind("d", 5);  // 1 + 6 < 5 is false; e irrelevant; f false.
  EXPECT_FALSE(Eval("a + b * c < d && e || f", env).AsBool().value());
}

TEST(MaskParseTest, RejectsKeywordsAsIdentifiers) {
  EXPECT_FALSE(ParseMask("before > 1").ok());
  EXPECT_FALSE(ParseMask("relative + 1").ok());
}

TEST(MaskParseTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseMask("a + ").ok());
  EXPECT_FALSE(ParseMask("a b").ok());
}

TEST(MaskEvalTest, ComparisonOperators) {
  SimpleMaskEnv env;
  env.Bind("q", 1500);
  EXPECT_TRUE(Eval("q > 1000", env).AsBool().value());
  EXPECT_FALSE(Eval("q <= 1000", env).AsBool().value());
  EXPECT_TRUE(Eval("q != 0", env).AsBool().value());
  EXPECT_TRUE(Eval("q == 1500", env).AsBool().value());
}

TEST(MaskEvalTest, ShortCircuit) {
  SimpleMaskEnv env;
  env.Bind("x", 0);
  // `undefined` is unbound; && short-circuits so no error surfaces.
  EXPECT_FALSE(Eval("x != 0 && undefined > 1", env).Truthy());
  EXPECT_TRUE(Eval("x == 0 || undefined > 1", env).Truthy());
  // Without short-circuit the unbound identifier is an error.
  MaskExprPtr m = ParseMaskOrDie("x == 0 && undefined > 1");
  EXPECT_FALSE(EvalMask(*m, env).ok());
}

TEST(MaskEvalTest, UnaryOperators) {
  SimpleMaskEnv env;
  env.Bind("flag", false);
  env.Bind("n", 4);
  EXPECT_TRUE(Eval("!flag", env).AsBool().value());
  EXPECT_EQ(Eval("-n + 1", env).AsInt().value(), -3);
  EXPECT_TRUE(Eval("!!n", env).AsBool().value());
}

TEST(MaskEvalTest, FloatLiterals) {
  SimpleMaskEnv env;
  env.Bind("balance", 450.0);
  // The paper's §3.3 example: balance < 500.00.
  EXPECT_TRUE(Eval("balance < 500.00", env).AsBool().value());
}

TEST(MaskEvalTest, StringLiterals) {
  SimpleMaskEnv env;
  env.Bind("name", std::string("ode"));
  EXPECT_TRUE(Eval("name == \"ode\"", env).AsBool().value());
  EXPECT_FALSE(Eval("name == \"x\"", env).AsBool().value());
}

TEST(MaskEvalTest, HostFunctionCalls) {
  SimpleMaskEnv env;
  env.BindFn("user", [](const std::vector<Value>&) -> Result<Value> {
    return Value(7);
  });
  env.BindFn("authorized", [](const std::vector<Value>& args) -> Result<Value> {
    return Value(args.at(0).AsInt().value() == 7);
  });
  // The paper's T1 condition: !authorized(user()).
  EXPECT_FALSE(Eval("!authorized(user())", env).AsBool().value());
}

TEST(MaskEvalTest, MemberAccessThroughOid) {
  SimpleMaskEnv env;
  env.Bind("i", Value(Oid{3}));
  env.Bind("@3.balance", Value(42));
  EXPECT_TRUE(Eval("i.balance < 100", env).AsBool().value());
}

TEST(MaskEvalTest, UnknownFunctionIsError) {
  SimpleMaskEnv env;
  MaskExprPtr m = ParseMaskOrDie("f(1)");
  EXPECT_EQ(EvalMask(*m, env).status().code(), StatusCode::kNotFound);
}

TEST(MaskAstTest, CanonicalTextRoundTrips) {
  for (const char* text :
       {"q > 1000", "a && b || !c", "(x + 1) * 2 >= y.balance",
        "authorized(user())", "a != b && -c < 3.5"}) {
    MaskExprPtr m1 = ParseMaskOrDie(text);
    MaskExprPtr m2 = ParseMaskOrDie(m1->ToString());
    EXPECT_TRUE(m1->Equals(*m2)) << text << " -> " << m1->ToString();
  }
}

TEST(MaskAstTest, CollectIdents) {
  MaskExprPtr m = ParseMaskOrDie("a + f(b) < c.d");
  std::vector<std::string> idents;
  m->CollectIdents(&idents);
  // a, b, and the member base c.
  EXPECT_EQ(idents.size(), 3u);
}

}  // namespace
}  // namespace ode
