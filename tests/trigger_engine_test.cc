#include "trigger/trigger_engine.h"

#include <gtest/gtest.h>

#include "ode/database.h"
#include "test_util.h"

namespace ode {
namespace {

/// A stockroom-flavored class with a counter the triggers can bump, so
/// tests observe firings through both FireCount and object state.
ClassDef ItemClass() {
  ClassDef def("item");
  def.AddAttr("qty", Value(0));
  def.AddAttr("log_count", Value(0));
  def.AddMethod(MethodDef{
      "deposit",
      {{"int", "q"}},
      MethodKind::kUpdate,
      [](MethodContext* ctx) -> Status {
        ODE_ASSIGN_OR_RETURN(Value qty, ctx->Get("qty"));
        ODE_ASSIGN_OR_RETURN(Value q, ctx->Arg("q"));
        ODE_ASSIGN_OR_RETURN(Value sum, qty.Add(q));
        return ctx->Set("qty", sum);
      }});
  def.AddMethod(MethodDef{
      "withdraw",
      {{"int", "q"}},
      MethodKind::kUpdate,
      [](MethodContext* ctx) -> Status {
        ODE_ASSIGN_OR_RETURN(Value qty, ctx->Get("qty"));
        ODE_ASSIGN_OR_RETURN(Value q, ctx->Arg("q"));
        ODE_ASSIGN_OR_RETURN(Value diff, qty.Sub(q));
        return ctx->Set("qty", diff);
      }});
  return def;
}

Status BumpLog(const ActionContext& ctx) {
  Result<Value> count = ctx.db->PeekAttr(ctx.self, "log_count");
  if (!count.ok()) return count.status();
  Result<Value> next = count->Add(Value(1));
  if (!next.ok()) return next.status();
  return ctx.db->SetAttr(ctx.txn, ctx.self, "log_count", *next);
}

struct Fixture {
  Database db;
  Oid item;
  TxnId txn = 0;

  explicit Fixture(ClassDef def) {
    EXPECT_TRUE(db.RegisterAction("log", BumpLog).ok());
    EXPECT_TRUE(db.RegisterClass(std::move(def)).status().ok());
    txn = db.Begin().value();
    item = db.New(txn, "item").value();
  }

  int64_t LogCount() {
    return db.PeekAttr(item, "log_count").value().AsInt().value();
  }
};

TEST(TriggerEngineTest, OrdinaryTriggerDeactivatesOnFiring) {
  ClassDef def = ItemClass();
  def.AddTrigger("T(): after deposit ==> log");
  Fixture f(std::move(def));
  ODE_ASSERT_OK(f.db.ActivateTrigger(f.txn, f.item, "T"));
  ODE_ASSERT_OK(f.db.Call(f.txn, f.item, "deposit", {Value(1)}).status());
  ODE_ASSERT_OK(f.db.Call(f.txn, f.item, "deposit", {Value(1)}).status());
  EXPECT_EQ(f.LogCount(), 1);  // Fired once, then deactivated (§2).
  EXPECT_FALSE(f.db.TriggerActive(f.item, "T").value());
  // Explicit reactivation re-arms it.
  ODE_ASSERT_OK(f.db.ActivateTrigger(f.txn, f.item, "T"));
  ODE_ASSERT_OK(f.db.Call(f.txn, f.item, "deposit", {Value(1)}).status());
  EXPECT_EQ(f.LogCount(), 2);
}

TEST(TriggerEngineTest, PerpetualTriggerStaysActive) {
  ClassDef def = ItemClass();
  def.AddTrigger("T(): perpetual after deposit ==> log");
  Fixture f(std::move(def));
  ODE_ASSERT_OK(f.db.ActivateTrigger(f.txn, f.item, "T"));
  for (int i = 0; i < 5; ++i) {
    ODE_ASSERT_OK(f.db.Call(f.txn, f.item, "deposit", {Value(1)}).status());
  }
  EXPECT_EQ(f.LogCount(), 5);
  EXPECT_TRUE(f.db.TriggerActive(f.item, "T").value());
}

TEST(TriggerEngineTest, InactiveTriggerDoesNotFire) {
  ClassDef def = ItemClass();
  def.AddTrigger("T(): perpetual after deposit ==> log");
  Fixture f(std::move(def));
  // Never activated.
  ODE_ASSERT_OK(f.db.Call(f.txn, f.item, "deposit", {Value(1)}).status());
  EXPECT_EQ(f.LogCount(), 0);
}

TEST(TriggerEngineTest, MaskGatesFiring) {
  // Trigger T6: all large withdrawals (q > 100) are recorded (§3.5).
  ClassDef def = ItemClass();
  def.AddTrigger("T6(): perpetual after withdraw (q) && q > 100 ==> log");
  Fixture f(std::move(def));
  ODE_ASSERT_OK(f.db.ActivateTrigger(f.txn, f.item, "T6"));
  ODE_ASSERT_OK(f.db.Call(f.txn, f.item, "withdraw", {Value(50)}).status());
  EXPECT_EQ(f.LogCount(), 0);
  ODE_ASSERT_OK(f.db.Call(f.txn, f.item, "withdraw", {Value(150)}).status());
  EXPECT_EQ(f.LogCount(), 1);
}

TEST(TriggerEngineTest, PositionalMaskParams) {
  // The trigger's declared name `q` binds by position even though the
  // method's formal parameter is also named q in our class; use a
  // different name to prove positional binding.
  ClassDef def = ItemClass();
  def.AddTrigger(
      "T(): perpetual after withdraw (amount) && amount > 10 ==> log");
  Fixture f(std::move(def));
  ODE_ASSERT_OK(f.db.ActivateTrigger(f.txn, f.item, "T"));
  ODE_ASSERT_OK(f.db.Call(f.txn, f.item, "withdraw", {Value(5)}).status());
  EXPECT_EQ(f.LogCount(), 0);
  ODE_ASSERT_OK(f.db.Call(f.txn, f.item, "withdraw", {Value(50)}).status());
  EXPECT_EQ(f.LogCount(), 1);
}

TEST(TriggerEngineTest, TriggerActivationParameters) {
  // Trigger parameters are bound at activation and usable in masks (§2).
  ClassDef def = ItemClass();
  def.AddTrigger(
      "T(int threshold): perpetual after withdraw (q) && q > threshold "
      "==> log");
  Fixture f(std::move(def));
  ODE_ASSERT_OK(f.db.ActivateTrigger(f.txn, f.item, "T", {Value(20)}));
  ODE_ASSERT_OK(f.db.Call(f.txn, f.item, "withdraw", {Value(15)}).status());
  EXPECT_EQ(f.LogCount(), 0);
  ODE_ASSERT_OK(f.db.Call(f.txn, f.item, "withdraw", {Value(25)}).status());
  EXPECT_EQ(f.LogCount(), 1);
  // Wrong parameter count rejected.
  EXPECT_EQ(f.db.ActivateTrigger(f.txn, f.item, "T").code(),
            StatusCode::kInvalidArgument);
}

TEST(TriggerEngineTest, StateShorthandFiresOnReachedState) {
  // §3.3: `qty < 0` fires when an update/create leaves qty negative.
  ClassDef def = ItemClass();
  def.AddTrigger("Neg(): perpetual qty < 0 ==> log");
  Fixture f(std::move(def));
  ODE_ASSERT_OK(f.db.ActivateTrigger(f.txn, f.item, "Neg"));
  ODE_ASSERT_OK(f.db.Call(f.txn, f.item, "deposit", {Value(5)}).status());
  EXPECT_EQ(f.LogCount(), 0);
  ODE_ASSERT_OK(f.db.Call(f.txn, f.item, "withdraw", {Value(9)}).status());
  EXPECT_EQ(f.LogCount(), 1);
}

TEST(TriggerEngineTest, TabortActionAbortsTransaction) {
  // Trigger T1 (§3.5): unauthorized withdrawals abort the transaction.
  ClassDef def = ItemClass();
  def.AddTrigger(
      "T1(): perpetual before withdraw && !authorized(user()) ==> tabort");
  Database db;
  ODE_ASSERT_OK(db.RegisterHostFunction(
      "user", [](const std::vector<Value>&, const HostContext&)
                  -> Result<Value> { return Value(13); }));
  ODE_ASSERT_OK(db.RegisterHostFunction(
      "authorized",
      [](const std::vector<Value>& args, const HostContext&)
          -> Result<Value> {
        return Value(args.at(0).AsInt().value() == 7);
      }));
  ODE_ASSERT_OK(db.RegisterClass(std::move(def)).status());

  TxnId t1 = db.Begin().value();
  Oid item = db.New(t1, "item", {{"qty", Value(10)}}).value();
  ODE_ASSERT_OK(db.ActivateTrigger(t1, item, "T1"));
  ODE_ASSERT_OK(db.Commit(t1));

  TxnId t2 = db.Begin().value();
  EXPECT_EQ(db.Call(t2, item, "withdraw", {Value(3)}).status().code(),
            StatusCode::kAborted);
  EXPECT_EQ(db.txn(t2)->state(), TxnState::kAborted);
  // The withdrawal never happened.
  EXPECT_EQ(db.PeekAttr(item, "qty").value().AsInt().value(), 10);
}

TEST(TriggerEngineTest, SequenceTriggerAcrossMethods) {
  // T8: print the log when a deposit is immediately followed by a
  // withdrawal (§3.5). At method-event granularity the adjacent events
  // are `after deposit; before withdraw; after withdraw`.
  ClassDef def = ItemClass();
  EventPostingPolicy policy;
  policy.access_events = false;
  policy.read_update_events = false;
  def.SetPostingPolicy(policy);
  def.AddTrigger(
      "T8(): perpetual after deposit; before withdraw; after withdraw "
      "==> log");
  Fixture f(std::move(def));
  ODE_ASSERT_OK(f.db.ActivateTrigger(f.txn, f.item, "T8"));
  ODE_ASSERT_OK(f.db.Call(f.txn, f.item, "deposit", {Value(1)}).status());
  ODE_ASSERT_OK(f.db.Call(f.txn, f.item, "withdraw", {Value(1)}).status());
  EXPECT_EQ(f.LogCount(), 1);
  // deposit, deposit, withdraw: the second deposit breaks adjacency with
  // the first, but itself chains → fires once more.
  ODE_ASSERT_OK(f.db.Call(f.txn, f.item, "deposit", {Value(1)}).status());
  ODE_ASSERT_OK(f.db.Call(f.txn, f.item, "deposit", {Value(1)}).status());
  ODE_ASSERT_OK(f.db.Call(f.txn, f.item, "withdraw", {Value(1)}).status());
  EXPECT_EQ(f.LogCount(), 2);
}

TEST(TriggerEngineTest, Every5AccessTrigger) {
  // T5: after every 5 operations the averages are updated (§3.5).
  ClassDef def = ItemClass();
  def.AddTrigger("T5(): perpetual every 2 (after access) ==> log");
  Fixture f(std::move(def));
  ODE_ASSERT_OK(f.db.ActivateTrigger(f.txn, f.item, "T5"));
  for (int i = 0; i < 6; ++i) {
    ODE_ASSERT_OK(f.db.Call(f.txn, f.item, "deposit", {Value(1)}).status());
  }
  // 6 accesses → fires at the 2nd, 4th, 6th.
  EXPECT_EQ(f.LogCount(), 3);
}

TEST(TriggerEngineTest, UnregisteredActionRejectedAtActivation) {
  ClassDef def = ItemClass();
  def.AddTrigger("T(): after deposit ==> ghost");
  Fixture f(std::move(def));
  EXPECT_EQ(f.db.ActivateTrigger(f.txn, f.item, "T").code(),
            StatusCode::kNotFound);
}

TEST(TriggerEngineTest, TriggerStateIsOneWord) {
  ClassDef def = ItemClass();
  def.AddTrigger("T(): perpetual after deposit; after withdraw ==> log");
  Fixture f(std::move(def));
  ODE_ASSERT_OK(f.db.ActivateTrigger(f.txn, f.item, "T"));
  Result<int32_t> s0 = f.db.TriggerState(f.item, "T");
  ODE_ASSERT_OK(s0.status());
  ODE_ASSERT_OK(f.db.Call(f.txn, f.item, "deposit", {Value(1)}).status());
  Result<int32_t> s1 = f.db.TriggerState(f.item, "T");
  EXPECT_NE(*s0, *s1);  // The single integer advanced (§5).
}

TEST(TriggerEngineTest, RecursivePostingDepthGuard) {
  // An action that re-posts the same event forever trips the depth guard.
  ClassDef def = ItemClass();
  def.AddTrigger("T(): perpetual after deposit ==> recurse");
  Database db;
  ODE_ASSERT_OK(db.RegisterAction(
      "recurse", [](const ActionContext& ctx) -> Status {
        return ctx.db->Call(ctx.txn, ctx.self, "deposit", {Value(1)})
            .status();
      }));
  ODE_ASSERT_OK(db.RegisterClass(std::move(def)).status());
  TxnId t = db.Begin().value();
  Oid item = db.New(t, "item").value();
  ODE_ASSERT_OK(db.ActivateTrigger(t, item, "T"));
  EXPECT_EQ(db.Call(t, item, "deposit", {Value(1)}).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(TriggerEngineTest, StaticCascadeVerdictAgreesWithRuntimeDepthGuard) {
  // One rulebase, two verdicts that must agree: registering the action
  // WITH its effect signature lets the cascade sweep prove statically
  // (T001, with an oracle-replayed witness cascade) what the runtime
  // depth guard can only detect after the fact (kResourceExhausted).
  ClassDef def = ItemClass();
  def.AddTrigger("T(): perpetual after deposit ==> recurse");
  DatabaseOptions opts;
  opts.analyze_triggers = DatabaseOptions::TriggerAnalysisMode::kWarn;
  Database db(opts);
  ODE_ASSERT_OK(db.RegisterAction(
      "recurse",
      [](const ActionContext& ctx) -> Status {
        return ctx.db->Call(ctx.txn, ctx.self, "deposit", {Value(1)})
            .status();
      },
      ActionSignature{{ActionEffect::MakeMethod("deposit", 1)}}));
  ODE_ASSERT_OK(db.RegisterClass(std::move(def)).status());

  // Static verdict: the sweep flags the self-sustaining loop as T001 and
  // the witness cascade (priming history + one posted hop) replays
  // through the §4 oracle without failures.
  const Diagnostic* t001 = nullptr;
  for (const Diagnostic& d : db.analysis_diagnostics()) {
    if (d.id == "T001" && d.severity == Severity::kError) t001 = &d;
  }
  ASSERT_NE(t001, nullptr);
  EXPECT_NE(t001->message.find("'item::T'"), std::string::npos);
  ASSERT_EQ(t001->witness.size(), 2u);
  EXPECT_NE(t001->witness[0].claim.find("priming"), std::string::npos);
  EXPECT_NE(t001->witness[1].claim.find("posted by"), std::string::npos);

  // Runtime verdict: the same loop actually diverges and trips the
  // posting depth guard.
  TxnId t = db.Begin().value();
  Oid item = db.New(t, "item").value();
  ODE_ASSERT_OK(db.ActivateTrigger(t, item, "T"));
  EXPECT_EQ(db.Call(t, item, "deposit", {Value(1)}).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(TriggerEngineTest, MultipleTriggersOneEvent) {
  ClassDef def = ItemClass();
  def.AddTrigger("A(): perpetual after deposit ==> log");
  def.AddTrigger("B(): perpetual after deposit ==> log");
  Fixture f(std::move(def));
  ODE_ASSERT_OK(f.db.ActivateTrigger(f.txn, f.item, "A"));
  ODE_ASSERT_OK(f.db.ActivateTrigger(f.txn, f.item, "B"));
  ODE_ASSERT_OK(f.db.Call(f.txn, f.item, "deposit", {Value(1)}).status());
  EXPECT_EQ(f.LogCount(), 2);
  EXPECT_EQ(f.db.FireCount(f.item, "A"), 1u);
  EXPECT_EQ(f.db.FireCount(f.item, "B"), 1u);
}

TEST(TriggerEngineTest, AutoActivateOnCreate) {
  ClassDef def = ItemClass();
  def.AddTrigger("T(): perpetual after deposit ==> log",
                 HistoryView::kFull, /*auto_activate=*/true);
  Fixture f(std::move(def));
  // Never explicitly activated, yet armed by the constructor (§3.5).
  EXPECT_TRUE(f.db.TriggerActive(f.item, "T").value());
  ODE_ASSERT_OK(f.db.Call(f.txn, f.item, "deposit", {Value(1)}).status());
  EXPECT_EQ(f.LogCount(), 1);
}

}  // namespace
}  // namespace ode
