// Experiment E6: the §6 Claim. "Any event expression E made with respect
// to operations of only committed transactions ... can be converted into an
// event expression with respect to the whole history" via the pair-state
// automaton A′. We verify A′ point-for-point against running A on the
// committed view of the history, on random transaction traces with aborts.
#include "automaton/committed_transform.h"

#include <gtest/gtest.h>

#include <random>

#include "compile/compiler.h"
#include "test_util.h"

namespace ode {
namespace {

using testing_util::ParseOrDie;
using testing_util::RandomExpr;

struct MarkerIds {
  SymbolId tbegin;
  SymbolId tcommit;
  SymbolId tabort;
};

MarkerIds SingleMarkerIds(const Alphabet& alphabet) {
  MarkerIds out{-1, -1, -1};
  alphabet
      .GroupSymbols(
          BasicEvent::Make(BasicEventKind::kTbegin, EventQualifier::kAfter))
      .ForEach([&](SymbolId s) { out.tbegin = s; });
  alphabet
      .GroupSymbols(
          BasicEvent::Make(BasicEventKind::kTcommit, EventQualifier::kAfter))
      .ForEach([&](SymbolId s) { out.tcommit = s; });
  alphabet
      .GroupSymbols(
          BasicEvent::Make(BasicEventKind::kTabort, EventQualifier::kAfter))
      .ForEach([&](SymbolId s) { out.tabort = s; });
  return out;
}

/// Generates a well-formed single-object trace (object-level locking means
/// transactions do not interleave on one object, §6): a mix of
/// outside-transaction events and complete transactions ending in commit or
/// abort.
std::vector<SymbolId> RandomTrace(std::mt19937* rng, const MarkerIds& m,
                                  size_t alphabet_size, size_t approx_len) {
  std::vector<SymbolId> trace;
  std::uniform_int_distribution<int> op(0, static_cast<int>(alphabet_size) - 1);
  auto random_op = [&]() -> SymbolId {
    SymbolId s;
    do {
      s = static_cast<SymbolId>(op(*rng));
    } while (s == m.tbegin || s == m.tcommit || s == m.tabort);
    return s;
  };
  while (trace.size() < approx_len) {
    if ((*rng)() % 3 == 0) {
      trace.push_back(random_op());  // Outside any transaction.
      continue;
    }
    trace.push_back(m.tbegin);
    size_t ops = (*rng)() % 4;
    for (size_t i = 0; i < ops; ++i) trace.push_back(random_op());
    trace.push_back((*rng)() % 2 == 0 ? m.tcommit : m.tabort);
  }
  return trace;
}

/// The "optimistic committed view" of a prefix: operations of committed
/// transactions, plus the in-progress transaction's operations (which a
/// committed-view automaton has tentatively consumed; they disappear if it
/// later aborts). Events of aborted transactions — including their tbegin
/// and the abort marker itself — are absent.
std::vector<SymbolId> CommittedView(const std::vector<SymbolId>& prefix,
                                    const MarkerIds& m) {
  std::vector<SymbolId> committed;
  std::vector<SymbolId> tentative;
  bool in_txn = false;
  for (SymbolId s : prefix) {
    if (s == m.tbegin) {
      in_txn = true;
      tentative.clear();
      tentative.push_back(s);
    } else if (s == m.tcommit) {
      tentative.push_back(s);
      committed.insert(committed.end(), tentative.begin(), tentative.end());
      tentative.clear();
      in_txn = false;
    } else if (s == m.tabort) {
      tentative.clear();
      in_txn = false;
    } else if (in_txn) {
      tentative.push_back(s);
    } else {
      committed.push_back(s);
    }
  }
  committed.insert(committed.end(), tentative.begin(), tentative.end());
  return committed;
}

TEST(CommittedTransformTest, HandCheckedRollback) {
  // A = "after f occurred at the current point, with some f before it"
  // i.e. prior 2 (after f): fires from the second f on.
  EventExprPtr expr = ParseOrDie("prior 2 (after f)");
  CompileOptions copts;
  copts.include_txn_markers = true;
  CompiledEvent compiled = CompileEvent(expr, copts).value();
  MarkerIds m = SingleMarkerIds(compiled.alphabet);
  SymbolId f = -1;
  compiled.alphabet
      .GroupSymbols(BasicEvent::Method(EventQualifier::kAfter, "f"))
      .ForEach([&](SymbolId s) { f = s; });

  TxnMarkerSymbols markers = compiled.alphabet.txn_markers();
  Dfa a_prime = BuildCommittedTransform(compiled.dfa, markers).value();

  // f inside an aborted transaction does not count.
  std::vector<SymbolId> trace = {f, m.tbegin, f, m.tabort, f};
  std::vector<bool> marks = a_prime.OccurrencePoints(trace);
  // Point 2 (the f inside the txn): tentatively the second f → fires
  // (the committed-view automaton behaves identically before the abort).
  EXPECT_TRUE(marks[2]);
  // Point 4: after the abort rolled back, this is only the second
  // *committed* f → fires again (count is 2 in the committed view).
  EXPECT_TRUE(marks[4]);

  // Compare with the plain automaton over the full history: it counts the
  // aborted f, so the final f is its third occurrence — also accepted, but
  // the state differs; distinguish with choose.
  EventExprPtr choose2 = ParseOrDie("choose 2 (after f)");
  CompiledEvent c2 = CompileEvent(choose2, copts).value();
  Dfa c2_prime =
      BuildCommittedTransform(c2.dfa, c2.alphabet.txn_markers()).value();
  MarkerIds m2 = SingleMarkerIds(c2.alphabet);
  SymbolId f2 = -1;
  c2.alphabet.GroupSymbols(BasicEvent::Method(EventQualifier::kAfter, "f"))
      .ForEach([&](SymbolId s) { f2 = s; });
  std::vector<SymbolId> trace2 = {f2, m2.tbegin, f2, m2.tabort, f2};
  // Full-history automaton: the last f is the 3rd → choose 2 silent.
  EXPECT_FALSE(c2.dfa.OccurrencePoints(trace2)[4]);
  // Committed transform: the last f is the 2nd committed → fires.
  EXPECT_TRUE(c2_prime.OccurrencePoints(trace2)[4]);
}

class CommittedTransformSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CommittedTransformSweep, MatchesCommittedViewOnRandomTraces) {
  std::mt19937 rng(GetParam());
  int checked = 0;
  for (int trial = 0; trial < 25; ++trial) {
    EventExprPtr expr = RandomExpr(&rng, 2, /*num_methods=*/2);
    CompileOptions copts;
    copts.include_txn_markers = true;
    Result<CompiledEvent> compiled = CompileEvent(expr, copts);
    if (!compiled.ok()) continue;
    TxnMarkerSymbols markers = compiled->alphabet.txn_markers();
    Result<Dfa> a_prime = BuildCommittedTransform(compiled->dfa, markers);
    ASSERT_TRUE(a_prime.ok()) << a_prime.status().ToString();
    MarkerIds m = SingleMarkerIds(compiled->alphabet);

    for (int t = 0; t < 6; ++t) {
      std::vector<SymbolId> trace =
          RandomTrace(&rng, m, compiled->alphabet.size(), 24);
      std::vector<bool> prime_marks = a_prime->OccurrencePoints(trace);
      for (size_t p = 0; p < trace.size(); ++p) {
        // The §6 exclusion: at an `after tabort` point the committed view
        // has no corresponding point (the event itself vanishes); A′ parks
        // in the rolled-back state. Skip comparing acceptance there.
        if (trace[p] == m.tabort) continue;
        std::vector<SymbolId> prefix(trace.begin(),
                                     trace.begin() + static_cast<long>(p) + 1);
        std::vector<SymbolId> committed = CommittedView(prefix, m);
        bool expected =
            committed.empty() ? false : compiled->dfa.Accepts(committed);
        ASSERT_EQ(prime_marks[p], expected)
            << "expr: " << expr->ToString() << " point " << p;
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CommittedTransformSweep,
                         ::testing::Values(101u, 202u, 303u, 404u));

TEST(CommittedTransformTest, PairConstructionSizeBound) {
  // |A′| <= |A|² by construction.
  EventExprPtr expr = ParseOrDie("relative(after f, after g, after f)");
  CompileOptions copts;
  copts.include_txn_markers = true;
  CompiledEvent compiled = CompileEvent(expr, copts).value();
  Dfa a_prime =
      BuildCommittedTransform(compiled.dfa, compiled.alphabet.txn_markers())
          .value();
  EXPECT_LE(a_prime.num_states(),
            compiled.dfa.num_states() * compiled.dfa.num_states());
}

}  // namespace
}  // namespace ode
