#include "event/basic_event.h"

#include <gtest/gtest.h>

#include "event/posted_event.h"

namespace ode {
namespace {

TEST(BasicEventTest, QualifierLegality) {
  // §3.1 item 1: "Immediately after an object is created. Immediately
  // before an object is deleted."
  EXPECT_TRUE(IsLegalQualifier(BasicEventKind::kCreate, EventQualifier::kAfter));
  EXPECT_FALSE(IsLegalQualifier(BasicEventKind::kCreate, EventQualifier::kBefore));
  EXPECT_TRUE(IsLegalQualifier(BasicEventKind::kDelete, EventQualifier::kBefore));
  EXPECT_FALSE(IsLegalQualifier(BasicEventKind::kDelete, EventQualifier::kAfter));
  // update/read/access/method/tabort: both.
  for (BasicEventKind kind : {BasicEventKind::kUpdate, BasicEventKind::kRead,
                              BasicEventKind::kAccess, BasicEventKind::kMethod,
                              BasicEventKind::kTabort}) {
    EXPECT_TRUE(IsLegalQualifier(kind, EventQualifier::kBefore));
    EXPECT_TRUE(IsLegalQualifier(kind, EventQualifier::kAfter));
  }
  // Transaction events (§3.1 item 4).
  EXPECT_TRUE(IsLegalQualifier(BasicEventKind::kTbegin, EventQualifier::kAfter));
  EXPECT_FALSE(IsLegalQualifier(BasicEventKind::kTbegin, EventQualifier::kBefore));
  EXPECT_TRUE(IsLegalQualifier(BasicEventKind::kTcomplete, EventQualifier::kBefore));
  EXPECT_FALSE(IsLegalQualifier(BasicEventKind::kTcomplete, EventQualifier::kAfter));
}

// "The specification of the event `before tcommit` is not allowed because
// we cannot be sure that a transaction is going to commit until it actually
// does so" (§3.1).
TEST(BasicEventTest, BeforeTcommitIsIllegal) {
  EXPECT_FALSE(IsLegalQualifier(BasicEventKind::kTcommit, EventQualifier::kBefore));
  BasicEvent e = BasicEvent::Make(BasicEventKind::kTcommit, EventQualifier::kBefore);
  EXPECT_FALSE(e.Validate().ok());
}

TEST(BasicEventTest, MethodRequiresName) {
  BasicEvent e = BasicEvent::Method(EventQualifier::kAfter, "");
  EXPECT_FALSE(e.Validate().ok());
}

TEST(BasicEventTest, CanonicalKeysDistinguishQualifiers) {
  BasicEvent before = BasicEvent::Method(EventQualifier::kBefore, "f");
  BasicEvent after = BasicEvent::Method(EventQualifier::kAfter, "f");
  EXPECT_NE(before.CanonicalKey(), after.CanonicalKey());
}

TEST(BasicEventTest, CanonicalKeysDistinguishArity) {
  BasicEvent bare = BasicEvent::Method(EventQualifier::kAfter, "f");
  BasicEvent two = BasicEvent::Method(EventQualifier::kAfter, "f",
                                      {{"int", "a"}, {"int", "b"}});
  EXPECT_NE(bare.CanonicalKey(), two.CanonicalKey());
  // But parameter names do not matter for identity, only the signature.
  BasicEvent two_other = BasicEvent::Method(EventQualifier::kAfter, "f",
                                            {{"int", "x"}, {"int", "y"}});
  EXPECT_EQ(two.CanonicalKey(), two_other.CanonicalKey());
}

TEST(BasicEventTest, TimeEventKeyIncludesModeAndSpec) {
  TimeSpec nine;
  nine.hour = 9;
  TimeSpec five;
  five.hour = 17;
  BasicEvent at9 = BasicEvent::Time(TimeEventMode::kAt, nine);
  BasicEvent at5 = BasicEvent::Time(TimeEventMode::kAt, five);
  BasicEvent every9 = BasicEvent::Time(TimeEventMode::kEvery, nine);
  EXPECT_NE(at9.CanonicalKey(), at5.CanonicalKey());
  EXPECT_NE(at9.CanonicalKey(), every9.CanonicalKey());
}

TEST(BasicEventTest, ToStringMatchesPaperSyntax) {
  EXPECT_EQ(BasicEvent::Make(BasicEventKind::kRead, EventQualifier::kAfter)
                .ToString(),
            "after read");
  EXPECT_EQ(BasicEvent::Method(EventQualifier::kAfter, "withdraw",
                               {{"Item", "i"}, {"int", "q"}})
                .ToString(),
            "after withdraw(Item i, int q)");
}

TEST(PostedEventTest, MatchesKindAndQualifier) {
  PostedEvent e = MakePosted(BasicEventKind::kUpdate, EventQualifier::kAfter);
  EXPECT_TRUE(e.Matches(
      BasicEvent::Make(BasicEventKind::kUpdate, EventQualifier::kAfter)));
  EXPECT_FALSE(e.Matches(
      BasicEvent::Make(BasicEventKind::kUpdate, EventQualifier::kBefore)));
  EXPECT_FALSE(e.Matches(
      BasicEvent::Make(BasicEventKind::kRead, EventQualifier::kAfter)));
}

TEST(PostedEventTest, MethodMatchingHonorsDeclaredArity) {
  PostedEvent e = MakePostedMethod(EventQualifier::kAfter, "withdraw",
                                   {{"i", Value(1)}, {"q", Value(50)}});
  EXPECT_TRUE(e.Matches(BasicEvent::Method(EventQualifier::kAfter, "withdraw")));
  EXPECT_TRUE(e.Matches(BasicEvent::Method(EventQualifier::kAfter, "withdraw",
                                           {{"Item", "i"}, {"int", "q"}})));
  // Declared arity 1 does not match a 2-argument posting.
  EXPECT_FALSE(e.Matches(BasicEvent::Method(EventQualifier::kAfter, "withdraw",
                                            {{"Item", "i"}})));
  EXPECT_FALSE(e.Matches(BasicEvent::Method(EventQualifier::kAfter, "deposit")));
}

TEST(PostedEventTest, FindArg) {
  PostedEvent e = MakePostedMethod(EventQualifier::kAfter, "f",
                                   {{"a", Value(1)}, {"b", Value(2)}});
  ASSERT_NE(e.FindArg("b"), nullptr);
  EXPECT_EQ(e.FindArg("b")->AsInt().value(), 2);
  EXPECT_EQ(e.FindArg("c"), nullptr);
}

TEST(PostedEventTest, TimeEventMatchesByCanonicalKey) {
  TimeSpec nine;
  nine.hour = 9;
  BasicEvent spec = BasicEvent::Time(TimeEventMode::kAt, nine);
  PostedEvent e;
  e.kind = BasicEventKind::kTime;
  e.qualifier = EventQualifier::kNone;
  e.time_key = spec.CanonicalKey();
  EXPECT_TRUE(e.Matches(spec));
  TimeSpec other;
  other.hour = 17;
  EXPECT_FALSE(e.Matches(BasicEvent::Time(TimeEventMode::kAt, other)));
}

}  // namespace
}  // namespace ode
