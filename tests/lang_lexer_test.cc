#include "lang/lexer.h"

#include <gtest/gtest.h>

namespace ode {
namespace {

std::vector<Token> Lex(std::string_view s) {
  Result<std::vector<Token>> r = Tokenize(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : std::vector<Token>{};
}

TEST(LexerTest, PunctuationLongestMatch) {
  std::vector<Token> t = Lex("&& & || | == = ==> <= < >= > !=");
  ASSERT_EQ(t.size(), 13u);  // 12 tokens + end.
  EXPECT_EQ(t[0].kind, TokenKind::kAmpAmp);
  EXPECT_EQ(t[1].kind, TokenKind::kAmp);
  EXPECT_EQ(t[2].kind, TokenKind::kPipePipe);
  EXPECT_EQ(t[3].kind, TokenKind::kPipe);
  EXPECT_EQ(t[4].kind, TokenKind::kEqEq);
  EXPECT_EQ(t[5].kind, TokenKind::kEq);
  EXPECT_EQ(t[6].kind, TokenKind::kArrow);
  EXPECT_EQ(t[7].kind, TokenKind::kLe);
  EXPECT_EQ(t[8].kind, TokenKind::kLt);
  EXPECT_EQ(t[9].kind, TokenKind::kGe);
  EXPECT_EQ(t[10].kind, TokenKind::kGt);
  EXPECT_EQ(t[11].kind, TokenKind::kBangEq);
}

TEST(LexerTest, NumbersIntAndFloat) {
  std::vector<Token> t = Lex("42 500.00 0 3.14159");
  EXPECT_EQ(t[0].kind, TokenKind::kInt);
  EXPECT_EQ(t[0].int_value, 42);
  EXPECT_EQ(t[1].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(t[1].float_value, 500.0);
  EXPECT_EQ(t[2].int_value, 0);
  EXPECT_DOUBLE_EQ(t[3].float_value, 3.14159);
}

TEST(LexerTest, KeywordsTagged) {
  std::vector<Token> t = Lex("before after withdraw faAbs perpetual");
  EXPECT_TRUE(t[0].is_keyword(Keyword::kBefore));
  EXPECT_TRUE(t[1].is_keyword(Keyword::kAfter));
  EXPECT_TRUE(t[2].is_plain_ident());
  EXPECT_TRUE(t[3].is_keyword(Keyword::kFaAbs));
  EXPECT_TRUE(t[4].is_keyword(Keyword::kPerpetual));
}

TEST(LexerTest, StringsWithEscapes) {
  std::vector<Token> t = Lex(R"("a\nb" "q\"x")");
  EXPECT_EQ(t[0].text, "a\nb");
  EXPECT_EQ(t[1].text, "q\"x");
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
  EXPECT_FALSE(Tokenize(R"("bad \z escape")").ok());
}

TEST(LexerTest, Comments) {
  std::vector<Token> t = Lex("a // comment\n b /* mid */ c");
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0].text, "a");
  EXPECT_EQ(t[1].text, "b");
  EXPECT_EQ(t[2].text, "c");
  EXPECT_FALSE(Tokenize("/* open").ok());
}

TEST(LexerTest, BackslashContinuationIsWhitespace) {
  // The paper's #define-style listings use backslash-newline continuations.
  std::vector<Token> t = Lex("choose 5\\\n(after withdraw)");
  EXPECT_EQ(t[0].text, "choose");
  EXPECT_EQ(t[1].int_value, 5);
  EXPECT_EQ(t[2].kind, TokenKind::kLParen);
}

TEST(LexerTest, UnknownCharacterIsError) {
  EXPECT_FALSE(Tokenize("a $ b").ok());
}

TEST(TokenStreamTest, SaveRestore) {
  TokenStream ts(Lex("a b c"));
  size_t mark = ts.Save();
  ts.Next();
  ts.Next();
  EXPECT_EQ(ts.Peek().text, "c");
  ts.Restore(mark);
  EXPECT_EQ(ts.Peek().text, "a");
}

TEST(TokenStreamTest, EndIsSticky) {
  TokenStream ts(Lex("a"));
  ts.Next();
  EXPECT_TRUE(ts.AtEnd());
  ts.Next();
  ts.Next();
  EXPECT_TRUE(ts.AtEnd());
}

}  // namespace
}  // namespace ode
