// Tests for the linear-arithmetic mask solver (mask_solver.{h,cc}):
// verdicts the interval engine could not reach, implication between
// masks, signed-conjunction feasibility, integer gap cuts, model
// generation, the conservative limits (non-linear forms, step budgets),
// and a randomized cross-validation against brute-force integer-domain
// enumeration.

#include "analyze/mask_solver.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "analyze/mask_check.h"
#include "test_util.h"

namespace ode {
namespace {

using testing_util::ParseMaskOrDie;

MaskTruth SolveOf(const std::string& text) {
  return SolveMaskTruth(*ParseMaskOrDie(text));
}

// --- New verdicts beyond the interval engine ---------------------------

TEST(MaskSolverTest, ScaledVariableContradiction) {
  // The flagship ISSUE case: q*2 > 10 forces q > 5, contradicting q < 1.
  EXPECT_EQ(SolveOf("q * 2 > 10 && q < 1"), MaskTruth::kNever);
  EXPECT_EQ(SolveOf("2 * q > 10 && q < 1"), MaskTruth::kNever);
}

TEST(MaskSolverTest, TwoVariableSumContradiction) {
  EXPECT_EQ(SolveOf("a + b > 10 && a < 2 && b < 2"), MaskTruth::kNever);
}

TEST(MaskSolverTest, AffineContradiction) {
  // 2q + 3 <= 1 forces q <= -1, contradicting q >= 0.
  EXPECT_EQ(SolveOf("2 * q + 3 <= 1 && q >= 0"), MaskTruth::kNever);
}

TEST(MaskSolverTest, ThreeVariableCycle) {
  EXPECT_EQ(SolveOf("a > b && b > c && c > a"), MaskTruth::kNever);
}

TEST(MaskSolverTest, ScaledTautology) {
  // q/2 >= 5 means q >= 10; its complement is q < 10.
  EXPECT_EQ(SolveOf("q / 2 >= 5 || q < 10"), MaskTruth::kAlways);
}

TEST(MaskSolverTest, DisequalityTautology) {
  EXPECT_EQ(SolveOf("q * 2 != 10 || q == 5"), MaskTruth::kAlways);
}

TEST(MaskSolverTest, EqualityPropagation) {
  EXPECT_EQ(SolveOf("a == b && a > 10 && b < 0"), MaskTruth::kNever);
  EXPECT_EQ(SolveOf("a - b == 0 && a > b"), MaskTruth::kNever);
}

TEST(MaskSolverTest, NegationPushing) {
  EXPECT_EQ(SolveOf("!(q * 2 <= 10) && q < 1"), MaskTruth::kNever);
  EXPECT_EQ(SolveOf("!(a + b > 10 && a < 2) || b >= 0 || a >= 2"),
            MaskTruth::kAlways);
}

TEST(MaskSolverTest, NegatedTermContradiction) {
  EXPECT_EQ(SolveOf("-q > 5 && q > 0"), MaskTruth::kNever);
}

// --- The integrated entry point uses the solver as fallback ------------

TEST(MaskSolverTest, AnalyzeMaskTruthUsesSolver) {
  EXPECT_EQ(AnalyzeMaskTruth(*ParseMaskOrDie("q * 2 > 10 && q < 1")),
            MaskTruth::kNever);
  // Interval-engine verdicts still hold through the combined path.
  EXPECT_EQ(AnalyzeMaskTruth(*ParseMaskOrDie("q > 100 && q < 50")),
            MaskTruth::kNever);
  EXPECT_EQ(AnalyzeMaskTruth(*ParseMaskOrDie("q < 10 || q >= 10")),
            MaskTruth::kAlways);
}

// --- Conservative limits ------------------------------------------------

TEST(MaskSolverTest, IntegerGapsStayUnknownOverReals) {
  // Without an integer declaration the variable ranges over the reals,
  // where 1 < q < 2 is satisfiable: must stay kUnknown.
  EXPECT_EQ(SolveOf("q > 1 && q < 2"), MaskTruth::kUnknown);
}

// --- Integer-aware mode: gap cuts ---------------------------------------

MaskSolver IntSolver() {
  MaskSolver::Options opts;
  opts.assume_all_integers = true;
  return MaskSolver(opts);
}

TEST(MaskSolverTest, IntegerGapCutRefutesUnitGap) {
  // No integer lies strictly between 1 and 2.
  MaskSolver solver = IntSolver();
  EXPECT_EQ(solver.Truth(*ParseMaskOrDie("q > 1 && q < 2")),
            MaskTruth::kNever);
  EXPECT_EQ(solver.Truth(*ParseMaskOrDie("q > 0 && q < 1")),
            MaskTruth::kNever);
  // A gap wide enough to hold an integer stays satisfiable.
  EXPECT_EQ(solver.Truth(*ParseMaskOrDie("q > 0 && q < 2")),
            MaskTruth::kUnknown);
}

TEST(MaskSolverTest, IntegerGapCutNormalizesCoefficients) {
  MaskSolver solver = IntSolver();
  // 3q in (1, 3): tightening forces 3q >= 3 versus 3q <= 2.
  EXPECT_EQ(solver.Truth(*ParseMaskOrDie("3 * q > 1 && 3 * q < 3")),
            MaskTruth::kNever);
  // 2q in (1, 3) admits 2q = 2.
  EXPECT_EQ(solver.Truth(*ParseMaskOrDie("2 * q > 1 && 2 * q < 3")),
            MaskTruth::kUnknown);
}

TEST(MaskSolverTest, GapCutCertificateNamesTheCut) {
  MaskSolver solver = IntSolver();
  MaskExprPtr gap = ParseMaskOrDie("q > 1 && q < 2");
  std::optional<std::string> why =
      solver.RefuteConjunction({{gap.get(), true}});
  ASSERT_TRUE(why.has_value());
  EXPECT_NE(why->find("gap cut"), std::string::npos) << *why;
  EXPECT_NE(why->find("over the integers"), std::string::npos) << *why;
}

TEST(MaskSolverTest, SelectiveIntegerDeclaration) {
  // Only `n` is declared integer: the gap cut applies to n but not to the
  // real-valued r.
  MaskSolver::Options opts;
  opts.integer_vars = {"n"};
  MaskSolver solver{opts};
  EXPECT_EQ(solver.Truth(*ParseMaskOrDie("n > 1 && n < 2")),
            MaskTruth::kNever);
  EXPECT_EQ(solver.Truth(*ParseMaskOrDie("r > 1 && r < 2")),
            MaskTruth::kUnknown);
}

TEST(MaskSolverTest, AddIntegerParamsRecognizesIntegerTypeNames) {
  MaskSolver::Options opts;
  AddIntegerParams({{"int", "a"}, {"long", "b"}, {"integer", "c"},
                    {"float", "f"}, {"", "untyped"}},
                   &opts);
  EXPECT_EQ(opts.integer_vars.count("a"), 1u);
  EXPECT_EQ(opts.integer_vars.count("b"), 1u);
  EXPECT_EQ(opts.integer_vars.count("c"), 1u);
  EXPECT_EQ(opts.integer_vars.count("f"), 0u);
  EXPECT_EQ(opts.integer_vars.count("untyped"), 0u);
}

// --- Model generation ---------------------------------------------------

TEST(MaskSolverTest, FindModelReturnsVerifiedIntegerValues) {
  MaskSolver solver = IntSolver();
  MaskExprPtr mask = ParseMaskOrDie("q > 10 && q < 20");
  std::optional<MaskSolver::Model> model =
      solver.FindModel({{mask.get(), true}});
  ASSERT_TRUE(model.has_value());
  ASSERT_EQ(model->values.count("q"), 1u);
  double q = model->values["q"];
  EXPECT_EQ(q, std::floor(q));  // Integral.
  EXPECT_GT(q, 10.0);
  EXPECT_LT(q, 20.0);
}

TEST(MaskSolverTest, FindModelFailsOnRefutedConjunction) {
  MaskSolver solver = IntSolver();
  MaskExprPtr gap = ParseMaskOrDie("q > 1 && q < 2");
  EXPECT_FALSE(solver.FindModel({{gap.get(), true}}).has_value());
}

TEST(MaskSolverTest, NonLinearFormsAreOpaque) {
  // Products of variables and mod are atomic; no verdict follows from
  // their argument structure.
  EXPECT_EQ(SolveOf("a * b > 0 && a < 0 && b > 0"), MaskTruth::kUnknown);
  EXPECT_EQ(SolveOf("q % 2 == 0 && q + 1 < 0"), MaskTruth::kUnknown);
  // But an opaque term is still one consistent variable.
  EXPECT_EQ(SolveOf("a * b > 0 && a * b < 0"), MaskTruth::kNever);
  EXPECT_EQ(SolveOf("q % 2 == 0 && q % 2 == 1"), MaskTruth::kNever);
  EXPECT_EQ(SolveOf("q % 3 >= 2 && q % 3 < 1"), MaskTruth::kNever);
}

TEST(MaskSolverTest, OpaqueBooleanClash) {
  EXPECT_EQ(SolveOf("flag && !flag"), MaskTruth::kNever);
  EXPECT_EQ(SolveOf("flag || !flag"), MaskTruth::kAlways);
}

TEST(MaskSolverTest, LiftedVariableCapDecidesCycles) {
  // The former hard ≤3-variable cap is lifted: the greedy elimination
  // ordering proves the 3-variable cycle contradictory...
  EXPECT_EQ(SolveOf("a > b && b > c && c > a"), MaskTruth::kNever);
  // ...and scales to longer chains well past the old cap.
  EXPECT_EQ(SolveOf("a > b && b > c && c > d && d > e && e > a"),
            MaskTruth::kNever);
}

TEST(MaskSolverTest, StepBudgetGivesUpConservatively) {
  // One elimination step is not enough to close the 3-cycle; the
  // bounded-work fallback must stay conservative (kUnknown, never a
  // wrong kNever/kAlways).
  MaskSolver solver(MaskSolver::Options{.max_clauses = 64,
                                        .max_vars = 1,
                                        .max_constraints = 128});
  EXPECT_EQ(solver.Truth(*ParseMaskOrDie("a > b && b > c && c > a")),
            MaskTruth::kUnknown);
}

TEST(MaskSolverTest, SatisfiableStaysUnknown) {
  EXPECT_EQ(SolveOf("q * 2 > 10 && q < 100"), MaskTruth::kUnknown);
  EXPECT_EQ(SolveOf("a + b > 10"), MaskTruth::kUnknown);
}

// --- Implication --------------------------------------------------------

TEST(MaskSolverTest, Implication) {
  MaskSolver solver;
  EXPECT_TRUE(solver.Implies(*ParseMaskOrDie("q > 100"),
                             *ParseMaskOrDie("q > 50")));
  EXPECT_TRUE(solver.Implies(*ParseMaskOrDie("q * 2 > 100"),
                             *ParseMaskOrDie("q > 10")));
  EXPECT_TRUE(solver.Implies(*ParseMaskOrDie("a > 0 && b > 0"),
                             *ParseMaskOrDie("a + b > 0")));
  EXPECT_FALSE(solver.Implies(*ParseMaskOrDie("q > 50"),
                              *ParseMaskOrDie("q > 100")));
  // Unproved (opaque relation) is reported false, never "disproved".
  EXPECT_FALSE(solver.Implies(*ParseMaskOrDie("f(q) > 0"),
                              *ParseMaskOrDie("q > 0")));
  // Identical opaque terms do imply themselves.
  EXPECT_TRUE(solver.Implies(*ParseMaskOrDie("f(q) > 1"),
                             *ParseMaskOrDie("f(q) > 0")));
}

// --- Signed-conjunction feasibility (micro-symbol pruning) --------------

TEST(MaskSolverTest, ConjunctionSatisfiable) {
  MaskSolver solver;
  MaskExprPtr over100 = ParseMaskOrDie("q > 100");
  MaskExprPtr over50 = ParseMaskOrDie("q > 50");
  // q > 100 && !(q > 50) is the infeasible micro-symbol bit pattern.
  EXPECT_FALSE(solver.ConjunctionSatisfiable(
      {{over100.get(), true}, {over50.get(), false}}));
  EXPECT_TRUE(solver.ConjunctionSatisfiable(
      {{over100.get(), true}, {over50.get(), true}}));
  EXPECT_TRUE(solver.ConjunctionSatisfiable(
      {{over100.get(), false}, {over50.get(), true}}));
  EXPECT_TRUE(solver.ConjunctionSatisfiable(
      {{over100.get(), false}, {over50.get(), false}}));
  // Empty conjunction is trivially satisfiable.
  EXPECT_TRUE(solver.ConjunctionSatisfiable({}));
}

// --- Randomized cross-validation against brute force --------------------

// One linear atom c_a*a + c_b*b CMP k (c_b may be 0 for single-variable
// atoms), kept both as text (for the parser) and structurally (for exact
// brute-force evaluation).
struct RandomAtom {
  int ca = 0;
  int cb = 0;
  int cmp = 0;  // 0: <  1: <=  2: >  3: >=  4: ==  5: !=
  int k = 0;

  bool Holds(int a, int b) const {
    int lhs = ca * a + cb * b;
    switch (cmp) {
      case 0: return lhs < k;
      case 1: return lhs <= k;
      case 2: return lhs > k;
      case 3: return lhs >= k;
      case 4: return lhs == k;
      default: return lhs != k;
    }
  }

  std::string Text() const {
    static const char* kOps[] = {"<", "<=", ">", ">=", "==", "!="};
    std::string lhs = std::to_string(ca) + " * a";
    if (cb > 0) {
      lhs += " + " + std::to_string(cb) + " * b";
    } else if (cb < 0) {
      lhs += " - " + std::to_string(-cb) + " * b";
    }
    return lhs + " " + kOps[cmp] + " " + std::to_string(k);
  }
};

TEST(MaskSolverPropertyTest, RandomConjunctionsAgreeWithBruteForce) {
  // >= 1000 random conjunctions over two variables confined to the grid
  // [0, kMax]^2 by explicit bound atoms, so exhaustive integer-domain
  // enumeration is exact ground truth. The solver (integer mode) must
  // never refute a satisfiable system, its SAT/UNSAT entry points must
  // agree with each other, and every model it produces must actually
  // satisfy the conjunction at integer points.
  constexpr int kMax = 8;
  constexpr int kRounds = 1200;
  std::mt19937 rng(0x0de5eed);
  std::uniform_int_distribution<int> coef(-3, 3);
  std::uniform_int_distribution<int> rhs(0, 12);
  std::uniform_int_distribution<int> cmp(0, 5);
  std::uniform_int_distribution<int> count(1, 3);

  size_t brute_sat = 0;
  size_t solver_refuted = 0;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<RandomAtom> atoms;
    int n = count(rng);
    for (int i = 0; i < n; ++i) {
      RandomAtom atom;
      do {
        atom.ca = coef(rng);
      } while (atom.ca == 0);
      atom.cb = coef(rng);  // 0 allowed: single-variable atom.
      atom.cmp = cmp(rng);
      atom.k = rhs(rng);
      atoms.push_back(atom);
    }

    std::string text = "a >= 0 && a <= " + std::to_string(kMax) +
                       " && b >= 0 && b <= " + std::to_string(kMax);
    for (const RandomAtom& atom : atoms) text += " && " + atom.Text();
    MaskExprPtr mask = ParseMaskOrDie(text);
    ASSERT_NE(mask, nullptr) << text;

    bool sat = false;
    int sat_a = 0;
    int sat_b = 0;
    for (int a = 0; a <= kMax && !sat; ++a) {
      for (int b = 0; b <= kMax && !sat; ++b) {
        bool all = true;
        for (const RandomAtom& atom : atoms) {
          if (!atom.Holds(a, b)) {
            all = false;
            break;
          }
        }
        if (all) {
          sat = true;
          sat_a = a;
          sat_b = b;
        }
      }
    }
    if (sat) ++brute_sat;

    MaskSolver solver = IntSolver();
    MaskTruth truth = solver.Truth(*mask);
    bool feasible = solver.ConjunctionSatisfiable({{mask.get(), true}});
    std::optional<std::string> refutation =
        solver.RefuteConjunction({{mask.get(), true}});

    // The two refutation entry points must agree with each other.
    EXPECT_EQ(refutation.has_value(), !feasible) << text;
    if (!feasible) ++solver_refuted;

    if (sat) {
      // Soundness: a satisfiable system (integer point (sat_a, sat_b)
      // satisfies it) must never be refuted.
      EXPECT_NE(truth, MaskTruth::kNever)
          << text << " has solution a=" << sat_a << " b=" << sat_b;
      EXPECT_TRUE(feasible)
          << text << " has solution a=" << sat_a << " b=" << sat_b;
    } else {
      // The bounds confine all integer solutions to the enumerated grid,
      // so brute-force UNSAT is true UNSAT over the integers: anything
      // the solver claims (kNever or a refutation) is consistent. What
      // it must NOT do is produce a model.
      EXPECT_NE(truth, MaskTruth::kAlways) << text;
    }

    std::optional<MaskSolver::Model> model =
        solver.FindModel({{mask.get(), true}});
    if (model.has_value()) {
      // Every produced model must be an integral point satisfying every
      // atom — which also implies the system really is satisfiable.
      double av = model->values.count("a") ? model->values["a"] : 0.0;
      double bv = model->values.count("b") ? model->values["b"] : 0.0;
      ASSERT_EQ(av, std::floor(av)) << text;
      ASSERT_EQ(bv, std::floor(bv)) << text;
      int ai = static_cast<int>(av);
      int bi = static_cast<int>(bv);
      EXPECT_GE(ai, 0);
      EXPECT_LE(ai, kMax);
      EXPECT_GE(bi, 0);
      EXPECT_LE(bi, kMax);
      for (const RandomAtom& atom : atoms) {
        EXPECT_TRUE(atom.Holds(ai, bi))
            << text << " model a=" << ai << " b=" << bi;
      }
      EXPECT_TRUE(sat) << text << " solver found a model for an "
                       << "unsatisfiable system";
    }
  }

  // Sanity on the generator itself: both outcomes must actually occur,
  // and the solver must catch a nontrivial share of the UNSAT systems.
  EXPECT_GT(brute_sat, 100u);
  EXPECT_LT(brute_sat, static_cast<size_t>(kRounds) - 100u);
  EXPECT_GT(solver_refuted, 50u);
}

}  // namespace
}  // namespace ode
