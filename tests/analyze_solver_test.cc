// Tests for the linear-arithmetic mask solver (mask_solver.{h,cc}):
// verdicts the interval engine could not reach, implication between
// masks, signed-conjunction feasibility, and the conservative limits
// (non-linear forms, integer gaps, variable caps).

#include "analyze/mask_solver.h"

#include <gtest/gtest.h>

#include "analyze/mask_check.h"
#include "test_util.h"

namespace ode {
namespace {

using testing_util::ParseMaskOrDie;

MaskTruth SolveOf(const std::string& text) {
  return SolveMaskTruth(*ParseMaskOrDie(text));
}

// --- New verdicts beyond the interval engine ---------------------------

TEST(MaskSolverTest, ScaledVariableContradiction) {
  // The flagship ISSUE case: q*2 > 10 forces q > 5, contradicting q < 1.
  EXPECT_EQ(SolveOf("q * 2 > 10 && q < 1"), MaskTruth::kNever);
  EXPECT_EQ(SolveOf("2 * q > 10 && q < 1"), MaskTruth::kNever);
}

TEST(MaskSolverTest, TwoVariableSumContradiction) {
  EXPECT_EQ(SolveOf("a + b > 10 && a < 2 && b < 2"), MaskTruth::kNever);
}

TEST(MaskSolverTest, AffineContradiction) {
  // 2q + 3 <= 1 forces q <= -1, contradicting q >= 0.
  EXPECT_EQ(SolveOf("2 * q + 3 <= 1 && q >= 0"), MaskTruth::kNever);
}

TEST(MaskSolverTest, ThreeVariableCycle) {
  EXPECT_EQ(SolveOf("a > b && b > c && c > a"), MaskTruth::kNever);
}

TEST(MaskSolverTest, ScaledTautology) {
  // q/2 >= 5 means q >= 10; its complement is q < 10.
  EXPECT_EQ(SolveOf("q / 2 >= 5 || q < 10"), MaskTruth::kAlways);
}

TEST(MaskSolverTest, DisequalityTautology) {
  EXPECT_EQ(SolveOf("q * 2 != 10 || q == 5"), MaskTruth::kAlways);
}

TEST(MaskSolverTest, EqualityPropagation) {
  EXPECT_EQ(SolveOf("a == b && a > 10 && b < 0"), MaskTruth::kNever);
  EXPECT_EQ(SolveOf("a - b == 0 && a > b"), MaskTruth::kNever);
}

TEST(MaskSolverTest, NegationPushing) {
  EXPECT_EQ(SolveOf("!(q * 2 <= 10) && q < 1"), MaskTruth::kNever);
  EXPECT_EQ(SolveOf("!(a + b > 10 && a < 2) || b >= 0 || a >= 2"),
            MaskTruth::kAlways);
}

TEST(MaskSolverTest, NegatedTermContradiction) {
  EXPECT_EQ(SolveOf("-q > 5 && q > 0"), MaskTruth::kNever);
}

// --- The integrated entry point uses the solver as fallback ------------

TEST(MaskSolverTest, AnalyzeMaskTruthUsesSolver) {
  EXPECT_EQ(AnalyzeMaskTruth(*ParseMaskOrDie("q * 2 > 10 && q < 1")),
            MaskTruth::kNever);
  // Interval-engine verdicts still hold through the combined path.
  EXPECT_EQ(AnalyzeMaskTruth(*ParseMaskOrDie("q > 100 && q < 50")),
            MaskTruth::kNever);
  EXPECT_EQ(AnalyzeMaskTruth(*ParseMaskOrDie("q < 10 || q >= 10")),
            MaskTruth::kAlways);
}

// --- Conservative limits ------------------------------------------------

TEST(MaskSolverTest, IntegerGapsStayUnknown) {
  // Unsat over the integers but sat over the reals: must stay kUnknown.
  EXPECT_EQ(SolveOf("q > 1 && q < 2"), MaskTruth::kUnknown);
}

TEST(MaskSolverTest, NonLinearFormsAreOpaque) {
  // Products of variables and mod are atomic; no verdict follows from
  // their argument structure.
  EXPECT_EQ(SolveOf("a * b > 0 && a < 0 && b > 0"), MaskTruth::kUnknown);
  EXPECT_EQ(SolveOf("q % 2 == 0 && q + 1 < 0"), MaskTruth::kUnknown);
  // But an opaque term is still one consistent variable.
  EXPECT_EQ(SolveOf("a * b > 0 && a * b < 0"), MaskTruth::kNever);
  EXPECT_EQ(SolveOf("q % 2 == 0 && q % 2 == 1"), MaskTruth::kNever);
  EXPECT_EQ(SolveOf("q % 3 >= 2 && q % 3 < 1"), MaskTruth::kNever);
}

TEST(MaskSolverTest, OpaqueBooleanClash) {
  EXPECT_EQ(SolveOf("flag && !flag"), MaskTruth::kNever);
  EXPECT_EQ(SolveOf("flag || !flag"), MaskTruth::kAlways);
}

TEST(MaskSolverTest, VariableCapGivesUp) {
  MaskSolver solver(MaskSolver::Options{.max_clauses = 64,
                                        .max_vars = 2,
                                        .max_constraints = 128});
  // Three distinct variables in one clause exceeds max_vars = 2.
  EXPECT_EQ(solver.Truth(*ParseMaskOrDie("a > b && b > c && c > a")),
            MaskTruth::kUnknown);
}

TEST(MaskSolverTest, SatisfiableStaysUnknown) {
  EXPECT_EQ(SolveOf("q * 2 > 10 && q < 100"), MaskTruth::kUnknown);
  EXPECT_EQ(SolveOf("a + b > 10"), MaskTruth::kUnknown);
}

// --- Implication --------------------------------------------------------

TEST(MaskSolverTest, Implication) {
  MaskSolver solver;
  EXPECT_TRUE(solver.Implies(*ParseMaskOrDie("q > 100"),
                             *ParseMaskOrDie("q > 50")));
  EXPECT_TRUE(solver.Implies(*ParseMaskOrDie("q * 2 > 100"),
                             *ParseMaskOrDie("q > 10")));
  EXPECT_TRUE(solver.Implies(*ParseMaskOrDie("a > 0 && b > 0"),
                             *ParseMaskOrDie("a + b > 0")));
  EXPECT_FALSE(solver.Implies(*ParseMaskOrDie("q > 50"),
                              *ParseMaskOrDie("q > 100")));
  // Unproved (opaque relation) is reported false, never "disproved".
  EXPECT_FALSE(solver.Implies(*ParseMaskOrDie("f(q) > 0"),
                              *ParseMaskOrDie("q > 0")));
  // Identical opaque terms do imply themselves.
  EXPECT_TRUE(solver.Implies(*ParseMaskOrDie("f(q) > 1"),
                             *ParseMaskOrDie("f(q) > 0")));
}

// --- Signed-conjunction feasibility (micro-symbol pruning) --------------

TEST(MaskSolverTest, ConjunctionSatisfiable) {
  MaskSolver solver;
  MaskExprPtr over100 = ParseMaskOrDie("q > 100");
  MaskExprPtr over50 = ParseMaskOrDie("q > 50");
  // q > 100 && !(q > 50) is the infeasible micro-symbol bit pattern.
  EXPECT_FALSE(solver.ConjunctionSatisfiable(
      {{over100.get(), true}, {over50.get(), false}}));
  EXPECT_TRUE(solver.ConjunctionSatisfiable(
      {{over100.get(), true}, {over50.get(), true}}));
  EXPECT_TRUE(solver.ConjunctionSatisfiable(
      {{over100.get(), false}, {over50.get(), true}}));
  EXPECT_TRUE(solver.ConjunctionSatisfiable(
      {{over100.get(), false}, {over50.get(), false}}));
  // Empty conjunction is trivially satisfiable.
  EXPECT_TRUE(solver.ConjunctionSatisfiable({}));
}

}  // namespace
}  // namespace ode
