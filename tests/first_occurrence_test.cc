#include "automaton/first_occurrence.h"

#include <gtest/gtest.h>

#include "automaton/determinize.h"
#include "automaton/nfa.h"

namespace ode {
namespace {

// Alphabet {0=e, 1=f, 2=g, 3=x}.
constexpr SymbolId kE = 0;
constexpr SymbolId kF = 1;
constexpr SymbolId kG = 2;
constexpr SymbolId kX = 3;

Dfa AtomDfa(SymbolId sym) {
  SymbolSet s(4);
  s.Add(sym);
  return Determinize(Nfa::SigmaStarAtom(s)).value();
}

Nfa AtomNfa(SymbolId sym) {
  SymbolSet s(4);
  s.Add(sym);
  return Nfa::SigmaStarAtom(s);
}

TEST(FirstNoGTest, AcceptsOnlyFirstF) {
  Dfa d = BuildFirstNoG(AtomDfa(kF), AtomDfa(kG)).value();
  // v ∈ L(F) with no earlier F or G.
  EXPECT_TRUE(d.Accepts({kF}));
  EXPECT_TRUE(d.Accepts({kX, kF}));
  EXPECT_FALSE(d.Accepts({kF, kF}));     // Second F.
  EXPECT_FALSE(d.Accepts({kG, kF}));     // G intervenes.
  EXPECT_FALSE(d.Accepts({kX, kG, kF}));
  EXPECT_FALSE(d.Accepts({kG}));
}

TEST(FaConcatTest, FaSemantics) {
  // fa(E, F, G) = L(E) · FirstNoG(F, G).
  Dfa first = BuildFirstNoG(AtomDfa(kF), AtomDfa(kG)).value();
  Nfa fa = Nfa::Concat(AtomNfa(kE), DfaToNfa(first));
  // E then first F with no G between.
  EXPECT_TRUE(fa.Accepts({kE, kF}));
  EXPECT_TRUE(fa.Accepts({kE, kX, kF}));
  EXPECT_FALSE(fa.Accepts({kE, kG, kF}));
  // A second E re-opens the window after a G.
  EXPECT_TRUE(fa.Accepts({kE, kG, kE, kF}));
  // Only the first F after E (for every E-anchor the first F coincides).
  EXPECT_FALSE(fa.Accepts({kE, kF, kF}));
  // ...but a later E makes the second F "first" relative to it.
  EXPECT_TRUE(fa.Accepts({kE, kF, kE, kF}));
}

TEST(FaAbsTest, GRelativeToWholeHistory) {
  // faAbs(E, F, G): G counts even before E? No — only strictly between
  // |u| and |uv| (the anchor point itself excluded).
  Nfa faabs = BuildFaAbs(AtomNfa(kE), AtomDfa(kF), AtomDfa(kG)).value();
  EXPECT_TRUE(faabs.Accepts({kE, kF}));
  EXPECT_TRUE(faabs.Accepts({kG, kE, kF}));   // G before the anchor: fine.
  EXPECT_FALSE(faabs.Accepts({kE, kG, kF}));  // G between anchor and F.
  EXPECT_TRUE(faabs.Accepts({kE, kX, kF}));
  EXPECT_FALSE(faabs.Accepts({kE, kF, kF}));  // Only first F per anchor.
  EXPECT_TRUE(faabs.Accepts({kE, kF, kE, kF}));
}

TEST(FaVsFaAbsDifference, GBetweenTwoAnchors) {
  // History: E G E F.
  //  * fa: the second E's window has no G, so F fires.
  //  * faAbs with anchor = first E: G at position 2 blocks; but anchor =
  //    second E also exists and its window is clean, so faAbs fires too.
  // Distinguishing case: E G F (single anchor).
  Dfa first = BuildFirstNoG(AtomDfa(kF), AtomDfa(kG)).value();
  Nfa fa = Nfa::Concat(AtomNfa(kE), DfaToNfa(first));
  Nfa faabs = BuildFaAbs(AtomNfa(kE), AtomDfa(kF), AtomDfa(kG)).value();
  EXPECT_FALSE(fa.Accepts({kE, kG, kF}));
  EXPECT_FALSE(faabs.Accepts({kE, kG, kF}));

  // Case where they genuinely differ: G occurs *inside the E part* of a
  // composite E. Let E' = relative(e, e) (an e then another e). History:
  // e G e F. For fa: G relative to E' (anchor = 2nd e) — window after the
  // 2nd e is {F}, clean → fires. For faAbs: G is at a position before the
  // anchor, also fine → fires. True difference needs G *after* the anchor,
  // which both treat the same... The §3.4 distinction is that fa restarts
  // G at the anchor; faAbs does not. With E' anchored at the FIRST e and G
  // occurring before the second e:
  Nfa e_chain = Nfa::Concat(AtomNfa(kE), AtomNfa(kE));
  Dfa e_chain_dfa = Determinize(e_chain).value();
  Nfa fa2 = Nfa::Concat(DfaToNfa(e_chain_dfa), DfaToNfa(first));
  Nfa faabs2 =
      BuildFaAbs(DfaToNfa(e_chain_dfa), AtomDfa(kF), AtomDfa(kG)).value();
  // History: e e F — both fire (anchor after the 2nd e).
  EXPECT_TRUE(fa2.Accepts({kE, kE, kF}));
  EXPECT_TRUE(faabs2.Accepts({kE, kE, kF}));
  // History: e e G F — G strictly between anchor and F blocks both.
  EXPECT_FALSE(fa2.Accepts({kE, kE, kG, kF}));
  EXPECT_FALSE(faabs2.Accepts({kE, kE, kG, kF}));
}

TEST(FirstNoGTest, GAtSamePointAsFDoesNotBlock) {
  // A symbol that is both F and G (overlapping atom sets): F wins at the
  // same point (G must be strictly prior, §3.4).
  SymbolSet fg(4);
  fg.Add(kF);
  fg.Add(kG);
  Dfa f_or_g = Determinize(Nfa::SigmaStarAtom(fg)).value();
  Dfa d = BuildFirstNoG(AtomDfa(kF), f_or_g).value();
  EXPECT_TRUE(d.Accepts({kF}));       // F and "G" at the same point.
  EXPECT_FALSE(d.Accepts({kG, kF}));  // Pure G strictly before.
}

}  // namespace
}  // namespace ode
