# Golden-output check for cascade analysis: run ode-lint with the demo
# effects sidecar on the cascade fixture and byte-compare stdout against
# the checked-in golden file. Edge evaluation and the witness BFS are
# deterministic (lexicographically least shortest histories, first-found
# representative cycles), so any drift here is a real graph, verdict, or
# rendering change and must be accompanied by a golden update.
#
# Inputs: -DLINT=<ode-lint binary> -DFIXTURE=<source .trig>
#         -DEFFECTS=<effects sidecar> -DGOLDEN=<expected stdout>
#         -DACTUAL=<where to dump actual>.

get_filename_component(fixture_dir ${FIXTURE} DIRECTORY)
get_filename_component(fixture_name ${FIXTURE} NAME)
get_filename_component(effects_name ${EFFECTS} NAME)
execute_process(
  COMMAND ${LINT} --witness=on --effects=${effects_name} ${fixture_name}
  WORKING_DIRECTORY ${fixture_dir}
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR
    "expected exit 1 (fixture has T001 errors), got ${rc}:\n${out}${err}")
endif()

file(WRITE ${ACTUAL} "${out}")
file(READ ${GOLDEN} want)
if(NOT out STREQUAL want)
  message(FATAL_ERROR
    "cascade rendering drifted from golden.\n"
    "  golden: ${GOLDEN}\n  actual: ${ACTUAL}\n"
    "Diff the two files; if the change is intended, refresh the golden.")
endif()
message(STATUS "ode-lint cascade golden ok")
