# Round-trip check for `ode-lint --fix`: copy the fixable fixture into the
# build tree, run --fix in place, and assert (1) fixes were reported,
# (2) the file actually changed, and (3) the fixed file re-lints clean of
# the targeted codes with exit code 0.
#
# Inputs: -DLINT=<ode-lint binary> -DFIXTURE=<source .trig> -DWORK=<copy>.

file(COPY_FILE ${FIXTURE} ${WORK})

execute_process(COMMAND ${LINT} --fix ${WORK}
  OUTPUT_VARIABLE fix_out ERROR_VARIABLE fix_err RESULT_VARIABLE fix_rc)
if(NOT fix_out MATCHES "fix: trigger")
  message(FATAL_ERROR "--fix reported no fixes:\n${fix_out}${fix_err}")
endif()

file(READ ${FIXTURE} before)
file(READ ${WORK} after)
if(before STREQUAL after)
  message(FATAL_ERROR "--fix did not modify the file")
endif()

execute_process(COMMAND ${LINT} ${WORK}
  OUTPUT_VARIABLE relint_out ERROR_VARIABLE relint_err
  RESULT_VARIABLE relint_rc)
if(NOT relint_rc EQUAL 0)
  message(FATAL_ERROR
    "fixed file does not lint clean (rc=${relint_rc}):\n${relint_out}")
endif()
foreach(code L002 L007 L008)
  if(relint_out MATCHES "\\[${code}\\]")
    message(FATAL_ERROR "residual ${code} after --fix:\n${relint_out}")
  endif()
endforeach()
message(STATUS "ode-lint --fix round-trip ok")
