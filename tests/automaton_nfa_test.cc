#include "automaton/nfa.h"

#include <gtest/gtest.h>

#include "automaton/determinize.h"

namespace ode {
namespace {

// Alphabet {0, 1, 2}; helper sets.
SymbolSet S(std::initializer_list<SymbolId> syms, size_t m = 3) {
  SymbolSet out(m);
  for (SymbolId s : syms) out.Add(s);
  return out;
}

TEST(SymbolSetTest, BasicOps) {
  SymbolSet a = S({0, 2});
  EXPECT_TRUE(a.Contains(0));
  EXPECT_FALSE(a.Contains(1));
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_FALSE(a.Empty());
  EXPECT_TRUE(SymbolSet(3).Empty());

  SymbolSet b = S({1, 2});
  EXPECT_EQ(a.Union(b).Count(), 3u);
  EXPECT_EQ(a.Intersect(b).Count(), 1u);
  EXPECT_TRUE(a.Intersect(b).Contains(2));
  SymbolSet c = a.Complement();
  EXPECT_EQ(c.Count(), 1u);
  EXPECT_TRUE(c.Contains(1));
  EXPECT_EQ(SymbolSet::All(3).Count(), 3u);
}

TEST(SymbolSetTest, LargeUniverseCrossesWords) {
  SymbolSet s(130);
  s.Add(0);
  s.Add(64);
  s.Add(129);
  EXPECT_EQ(s.Count(), 3u);
  EXPECT_EQ(s.Complement().Count(), 127u);
  size_t seen = 0;
  s.ForEach([&](SymbolId) { ++seen; });
  EXPECT_EQ(seen, 3u);
}

TEST(NfaTest, SigmaStarAtomAcceptsSuffixOccurrence) {
  // L = Σ* {1}: any string ending in symbol 1.
  Nfa nfa = Nfa::SigmaStarAtom(S({1}));
  EXPECT_TRUE(nfa.Accepts({1}));
  EXPECT_TRUE(nfa.Accepts({0, 2, 1}));
  EXPECT_FALSE(nfa.Accepts({1, 0}));
  EXPECT_FALSE(nfa.Accepts({}));
}

TEST(NfaTest, EmptyLanguageAcceptsNothing) {
  Nfa nfa = Nfa::EmptyLanguage(3);
  EXPECT_FALSE(nfa.Accepts({}));
  EXPECT_FALSE(nfa.Accepts({0}));
}

TEST(NfaTest, SigmaPlus) {
  Nfa nfa = Nfa::SigmaPlus(3);
  EXPECT_FALSE(nfa.Accepts({}));
  EXPECT_TRUE(nfa.Accepts({0}));
  EXPECT_TRUE(nfa.Accepts({2, 2, 2}));
}

TEST(NfaTest, UnionAndConcat) {
  Nfa a = Nfa::SigmaStarAtom(S({0}));
  Nfa b = Nfa::SigmaStarAtom(S({1}));
  Nfa u = Nfa::Union(a, b);
  EXPECT_TRUE(u.Accepts({2, 0}));
  EXPECT_TRUE(u.Accepts({2, 1}));
  EXPECT_FALSE(u.Accepts({2, 2}));

  // Concat: ends in 0, later (or immediately) ends in 1 => contains a 0
  // followed eventually by a final 1.
  Nfa c = Nfa::Concat(a, b);
  EXPECT_TRUE(c.Accepts({0, 1}));
  EXPECT_TRUE(c.Accepts({2, 0, 2, 1}));
  EXPECT_FALSE(c.Accepts({1, 0}));
  EXPECT_FALSE(c.Accepts({1}));
}

TEST(NfaTest, PlusChains) {
  // L = (Σ*{0})⁺ — strings ending in 0.
  Nfa a = Nfa::SigmaStarAtom(S({0}));
  Nfa p = Nfa::Plus(a);
  EXPECT_TRUE(p.Accepts({0}));
  EXPECT_TRUE(p.Accepts({1, 0, 1, 0}));
  EXPECT_FALSE(p.Accepts({0, 1}));
}

TEST(NfaTest, PowerRepeats) {
  // L(a)^2 where a = Σ*{0}: strings ending in 0 with at least two 0s.
  Nfa a = Nfa::SigmaStarAtom(S({0}));
  Nfa p = Nfa::Power(a, 2);
  EXPECT_FALSE(p.Accepts({0}));
  EXPECT_TRUE(p.Accepts({0, 0}));
  EXPECT_TRUE(p.Accepts({0, 1, 0}));
  EXPECT_FALSE(p.Accepts({0, 1}));
}

TEST(DeterminizeTest, PreservesLanguage) {
  Nfa nfa = Nfa::Concat(Nfa::SigmaStarAtom(S({0})),
                        Nfa::SigmaStarAtom(S({1})));
  Dfa dfa = Determinize(nfa).value();
  for (const std::vector<SymbolId>& input :
       {std::vector<SymbolId>{0, 1}, {2, 0, 2, 1}, {1, 0}, {0}, {1},
        {0, 1, 2}, {0, 2, 1, 1}}) {
    EXPECT_EQ(dfa.Accepts(input), nfa.Accepts(input));
  }
}

TEST(DeterminizeTest, StateLimitEnforced) {
  // A union of many atoms is fine; verify the limit triggers when tiny.
  Nfa nfa = Nfa::Concat(Nfa::SigmaStarAtom(S({0})),
                        Nfa::SigmaStarAtom(S({1})));
  EXPECT_EQ(Determinize(nfa, /*max_states=*/1).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(ComplementTest, SigmaPlusComplementExcludesEpsilon) {
  // !(Σ*{0}) should accept nonempty strings not ending in 0, reject ε.
  Dfa d = Determinize(Nfa::SigmaStarAtom(S({0}))).value();
  Dfa c = ComplementSigmaPlus(d);
  EXPECT_FALSE(c.Accepts({}));
  EXPECT_TRUE(c.Accepts({1}));
  EXPECT_FALSE(c.Accepts({1, 0}));
  EXPECT_TRUE(c.Accepts({0, 1}));
}

TEST(ComplementTest, DoubleComplementRestoresLanguage) {
  Dfa d = Determinize(Nfa::Concat(Nfa::SigmaStarAtom(S({0})),
                                  Nfa::SigmaStarAtom(S({1}))))
              .value();
  Dfa cc = ComplementSigmaPlus(ComplementSigmaPlus(d));
  for (const std::vector<SymbolId>& input :
       {std::vector<SymbolId>{0, 1}, {1, 0}, {0, 2, 1}, {2}, {0}}) {
    EXPECT_EQ(cc.Accepts(input), d.Accepts(input));
  }
}

TEST(IntersectTest, ProductLanguage) {
  // Ends in {0 or 1} AND contains an earlier 2... use: (Σ*{0,1}) ∩ (Σ*{2}Σ⁺).
  Dfa ends01 = Determinize(Nfa::SigmaStarAtom(S({0, 1}))).value();
  Dfa after2 = Determinize(Nfa::Concat(Nfa::SigmaStarAtom(S({2})),
                                       Nfa::SigmaPlus(3)))
                   .value();
  Dfa both = IntersectDfa(ends01, after2);
  EXPECT_TRUE(both.Accepts({2, 0}));
  EXPECT_TRUE(both.Accepts({1, 2, 1}));
  EXPECT_FALSE(both.Accepts({2}));
  EXPECT_FALSE(both.Accepts({0, 2}));
  EXPECT_FALSE(both.Accepts({0, 0}));
}

TEST(DfaToNfaTest, RoundTripPreservesLanguage) {
  Nfa original = Nfa::Plus(Nfa::SigmaStarAtom(S({1})));
  Dfa dfa = Determinize(original).value();
  Nfa back = DfaToNfa(dfa);
  for (const std::vector<SymbolId>& input :
       {std::vector<SymbolId>{1}, {0, 1}, {1, 1}, {1, 0}, {}}) {
    EXPECT_EQ(back.Accepts(input), original.Accepts(input));
  }
}

}  // namespace
}  // namespace ode
