#include "clock/virtual_clock.h"

#include <gtest/gtest.h>

#include "ode/database.h"
#include "test_util.h"

namespace ode {
namespace {

BasicEvent At(int hour) {
  TimeSpec spec;
  spec.hour = hour;
  return BasicEvent::Time(TimeEventMode::kAt, spec);
}

BasicEvent EveryMinutes(int minutes) {
  TimeSpec spec;
  spec.minute = minutes;
  return BasicEvent::Time(TimeEventMode::kEvery, spec);
}

BasicEvent AfterMinutes(int minutes) {
  TimeSpec spec;
  spec.minute = minutes;
  return BasicEvent::Time(TimeEventMode::kAfter, spec);
}

TEST(VirtualClockTest, AtTimerFiresDaily) {
  VirtualClock clock;
  ODE_ASSERT_OK(clock.AddTimer(Oid{1}, At(9)));
  std::vector<TimeMs> fired;
  ODE_ASSERT_OK(clock.AdvanceTo(
      3 * 24 * 3600 * 1000LL,
      [&](Oid, const std::string&, TimeMs t) -> Status {
        fired.push_back(t);
        return Status::OK();
      }));
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(FromEpochMs(fired[0]).hour, 9);
  EXPECT_EQ(fired[1] - fired[0], 24 * 3600 * 1000LL);
}

TEST(VirtualClockTest, EveryTimerIsPeriodicFromRegistration) {
  VirtualClock clock;
  ODE_ASSERT_OK(clock.SetTime(1000));
  ODE_ASSERT_OK(clock.AddTimer(Oid{1}, EveryMinutes(5)));
  std::vector<TimeMs> fired;
  ODE_ASSERT_OK(clock.AdvanceTo(
      1000 + 16 * 60 * 1000,
      [&](Oid, const std::string&, TimeMs t) -> Status {
        fired.push_back(t);
        return Status::OK();
      }));
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0], 1000 + 5 * 60 * 1000);
  EXPECT_EQ(fired[2], 1000 + 15 * 60 * 1000);
}

TEST(VirtualClockTest, AfterTimerFiresOnce) {
  VirtualClock clock;
  ODE_ASSERT_OK(clock.AddTimer(Oid{1}, AfterMinutes(2)));
  int fires = 0;
  ODE_ASSERT_OK(clock.AdvanceTo(3600 * 1000,
                                [&](Oid, const std::string&, TimeMs) -> Status {
                                  ++fires;
                                  return Status::OK();
                                }));
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(clock.num_timers(), 0u);
}

TEST(VirtualClockTest, RefcountSharesTimers) {
  VirtualClock clock;
  ODE_ASSERT_OK(clock.AddTimer(Oid{1}, At(9)));
  ODE_ASSERT_OK(clock.AddTimer(Oid{1}, At(9)));
  EXPECT_EQ(clock.num_timers(), 1u);
  ODE_ASSERT_OK(clock.RemoveTimer(Oid{1}, At(9)));
  EXPECT_EQ(clock.num_timers(), 1u);
  ODE_ASSERT_OK(clock.RemoveTimer(Oid{1}, At(9)));
  EXPECT_EQ(clock.num_timers(), 0u);
  EXPECT_EQ(clock.RemoveTimer(Oid{1}, At(9)).code(), StatusCode::kNotFound);
}

TEST(VirtualClockTest, FiringOrderIsChronological) {
  VirtualClock clock;
  ODE_ASSERT_OK(clock.AddTimer(Oid{1}, AfterMinutes(10)));
  ODE_ASSERT_OK(clock.AddTimer(Oid{2}, AfterMinutes(5)));
  std::vector<uint64_t> order;
  ODE_ASSERT_OK(clock.AdvanceTo(3600 * 1000,
                                [&](Oid o, const std::string&, TimeMs) -> Status {
                                  order.push_back(o.id);
                                  return Status::OK();
                                }));
  EXPECT_EQ(order, (std::vector<uint64_t>{2, 1}));
}

TEST(VirtualClockTest, CannotMoveBackwards) {
  VirtualClock clock;
  ODE_ASSERT_OK(clock.SetTime(5000));
  EXPECT_FALSE(clock.AdvanceTo(1000, nullptr).ok());
}

// --- Database integration: §3.5 trigger T3 (dayEnd ==> summary) ----------

TEST(ClockIntegrationTest, DayEndTriggerFiresDaily) {
  ClassDef def("room");
  def.AddAttr("summaries", Value(0));
  // #define dayEnd at time(HR=17); T3: perpetual dayEnd ==> summary.
  def.AddTrigger("T3(): perpetual at time(HR=17) ==> summary");

  Database db;
  ODE_ASSERT_OK(db.RegisterAction(
      "summary", [](const ActionContext& ctx) -> Status {
        Result<Value> v = ctx.db->PeekAttr(ctx.self, "summaries");
        if (!v.ok()) return v.status();
        Result<Value> next = v->Add(Value(1));
        if (!next.ok()) return next.status();
        return ctx.db->SetAttr(ctx.txn, ctx.self, "summaries", *next);
      }));
  ODE_ASSERT_OK(db.RegisterClass(std::move(def)).status());

  TxnId t = db.Begin().value();
  Oid room = db.New(t, "room").value();
  ODE_ASSERT_OK(db.ActivateTrigger(t, room, "T3"));
  ODE_ASSERT_OK(db.Commit(t));

  // Two full days pass.
  ODE_ASSERT_OK(db.AdvanceClock(2 * 24 * 3600 * 1000LL));
  EXPECT_EQ(db.PeekAttr(room, "summaries").value().AsInt().value(), 2);
  EXPECT_EQ(db.FireCount(room, "T3"), 2u);
}

// §2 footnote: "timed triggers can be simulated using composite events" —
// an `after time(...)` one-shot composed with a method event.
TEST(ClockIntegrationTest, TimedTriggerViaComposition) {
  ClassDef def("room");
  def.AddAttr("hits", Value(0));
  def.AddMethod(MethodDef{"poke", {}, MethodKind::kUpdate, nullptr});
  // Fire at the first poke that happens at least 1 minute after activation.
  def.AddTrigger("T(): relative(after time(M=1), after poke) ==> hit");

  Database db;
  ODE_ASSERT_OK(db.RegisterAction(
      "hit", [](const ActionContext& ctx) -> Status {
        Result<Value> v = ctx.db->PeekAttr(ctx.self, "hits");
        if (!v.ok()) return v.status();
        Result<Value> next = v->Add(Value(1));
        if (!next.ok()) return next.status();
        return ctx.db->SetAttr(ctx.txn, ctx.self, "hits", *next);
      }));
  ODE_ASSERT_OK(db.RegisterClass(std::move(def)).status());

  TxnId t = db.Begin().value();
  Oid room = db.New(t, "room").value();
  ODE_ASSERT_OK(db.ActivateTrigger(t, room, "T"));
  ODE_ASSERT_OK(db.Commit(t));

  // Poke before the minute elapses: no fire.
  TxnId t2 = db.Begin().value();
  ODE_ASSERT_OK(db.Call(t2, room, "poke").status());
  ODE_ASSERT_OK(db.Commit(t2));
  EXPECT_EQ(db.PeekAttr(room, "hits").value().AsInt().value(), 0);

  ODE_ASSERT_OK(db.AdvanceClock(61 * 1000));

  TxnId t3 = db.Begin().value();
  ODE_ASSERT_OK(db.Call(t3, room, "poke").status());
  ODE_ASSERT_OK(db.Commit(t3));
  EXPECT_EQ(db.PeekAttr(room, "hits").value().AsInt().value(), 1);
}

TEST(ClockIntegrationTest, DeactivationRemovesTimers) {
  ClassDef def("room");
  def.AddAttr("x", Value(0));
  def.AddTrigger("T(): perpetual at time(HR=17) ==> noop");
  Database db;
  ODE_ASSERT_OK(db.RegisterAction(
      "noop", [](const ActionContext&) -> Status { return Status::OK(); }));
  ODE_ASSERT_OK(db.RegisterClass(std::move(def)).status());
  TxnId t = db.Begin().value();
  Oid room = db.New(t, "room").value();
  ODE_ASSERT_OK(db.ActivateTrigger(t, room, "T"));
  EXPECT_EQ(db.clock().num_timers(), 1u);
  ODE_ASSERT_OK(db.DeactivateTrigger(t, room, "T"));
  EXPECT_EQ(db.clock().num_timers(), 0u);
  ODE_ASSERT_OK(db.Commit(t));
}

TEST(ClockIntegrationTest, AbortRestoresTimerOfDeactivatedTrigger) {
  ClassDef def("room");
  def.AddAttr("x", Value(0));
  def.AddTrigger("T(): perpetual at time(HR=17) ==> noop");
  Database db;
  ODE_ASSERT_OK(db.RegisterAction(
      "noop", [](const ActionContext&) -> Status { return Status::OK(); }));
  ODE_ASSERT_OK(db.RegisterClass(std::move(def)).status());
  TxnId t1 = db.Begin().value();
  Oid room = db.New(t1, "room").value();
  ODE_ASSERT_OK(db.ActivateTrigger(t1, room, "T"));
  ODE_ASSERT_OK(db.Commit(t1));

  TxnId t2 = db.Begin().value();
  ODE_ASSERT_OK(db.DeactivateTrigger(t2, room, "T"));
  EXPECT_EQ(db.clock().num_timers(), 0u);
  ODE_ASSERT_OK(db.Abort(t2));
  // The deactivation was rolled back, timer restored.
  EXPECT_TRUE(db.TriggerActive(room, "T").value());
  EXPECT_EQ(db.clock().num_timers(), 1u);
}

}  // namespace
}  // namespace ode
