// Cross-feature integration: combinations the individual suites don't
// cover — gated (nested-mask) triggers under the §6 transform, snapshots
// taken mid-scenario, and trigger firing across a save/load boundary.
#include <gtest/gtest.h>

#include "ode/database.h"
#include "test_util.h"
#include "trigger/coupling.h"

namespace ode {
namespace {

TEST(CrossFeatureTest, GatedTriggerCompilesUnderCommittedTransform) {
  // Coupling mode 2 embeds a gate; the §6 transform must lift the marker
  // sets into the gate-extended alphabet.
  Result<EventExprPtr> expr = BuildCouplingFromText(
      CouplingMode::kImmediateDeferred, "after bump", "ready");
  ASSERT_TRUE(expr.ok());
  TriggerSpec spec;
  spec.name = "K";
  spec.perpetual = true;
  spec.event = *expr;
  Result<TriggerProgram> program = CompileTrigger(
      spec, HistoryView::kCommittedViaTransform, CompileOptions());
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->event.num_gates(), 1u);
  ASSERT_TRUE(program->committed_dfa.has_value());
  EXPECT_EQ(program->committed_dfa->alphabet_size(),
            program->event.extended_alphabet_size());
}

ClassDef CounterClass() {
  ClassDef def("counter");
  def.AddAttr("n", Value(0));
  def.AddAttr("ready", Value(true));
  def.AddAttr("fired", Value(0));
  def.AddMethod(MethodDef{"bump",
                          {},
                          MethodKind::kUpdate,
                          [](MethodContext* ctx) -> Status {
                            ODE_ASSIGN_OR_RETURN(Value n, ctx->Get("n"));
                            ODE_ASSIGN_OR_RETURN(Value nx, n.Add(Value(1)));
                            return ctx->Set("n", nx);
                          }});
  return def;
}

void SetUpSchema(Database* db, ClassDef def) {
  EXPECT_TRUE(db->RegisterAction(
                    "bump_fired",
                    [](const ActionContext& ctx) -> Status {
                      Result<Value> v = ctx.db->PeekAttr(ctx.self, "fired");
                      if (!v.ok()) return v.status();
                      Result<Value> next = v->Add(Value(1));
                      if (!next.ok()) return next.status();
                      return ctx.db->SetAttr(ctx.txn, ctx.self, "fired",
                                             *next);
                    })
                  .ok());
  EXPECT_TRUE(db->RegisterClass(std::move(def)).status().ok());
}

TEST(CrossFeatureTest, GatedStateSurvivesSnapshot) {
  // An immediate-deferred coupling latches its gate bit at the bump; a
  // snapshot taken between the bump and the commit must preserve the
  // latched gate state so the firing still happens after reload.
  Result<EventExprPtr> expr = BuildCouplingFromText(
      CouplingMode::kImmediateDeferred, "after bump", "ready");
  ASSERT_TRUE(expr.ok());
  TriggerSpec spec;
  spec.name = "K";
  spec.perpetual = true;
  spec.event = *expr;
  spec.action = "bump_fired";
  ClassDef def = CounterClass();
  def.AddTrigger(spec);

  std::string path = std::string(::testing::TempDir()) + "/gate_snap.ode";
  Oid obj;
  {
    Database db;
    SetUpSchema(&db, def);
    TxnId t0 = db.Begin().value();
    obj = db.New(t0, "counter").value();
    ODE_ASSERT_OK(db.ActivateTrigger(t0, obj, "K"));
    ODE_ASSERT_OK(db.Commit(t0));

    TxnId t = db.Begin().value();
    ODE_ASSERT_OK(db.Call(t, obj, "bump").status());
    // Snapshot mid-transaction state of the *monitoring* machinery. (The
    // open transaction itself is not persisted — only object and trigger
    // state; commit before saving.)
    ODE_ASSERT_OK(db.Commit(t));
    // The gate latched and the fa fired at this commit's tcomplete.
    EXPECT_EQ(db.PeekAttr(obj, "fired").value().AsInt().value(), 1);
    ODE_ASSERT_OK(db.SaveSnapshot(path));
  }
  {
    Database db;
    SetUpSchema(&db, def);
    ODE_ASSERT_OK(db.LoadSnapshot(path));
    // A new transaction with no bump: no further firing.
    TxnId t = db.Begin().value();
    ODE_ASSERT_OK(db.GetAttr(t, obj, "n").status());
    ODE_ASSERT_OK(db.Commit(t));
    EXPECT_EQ(db.PeekAttr(obj, "fired").value().AsInt().value(), 1);
    // A bump+commit fires again (perpetual trigger, automaton re-anchors).
    TxnId t2 = db.Begin().value();
    ODE_ASSERT_OK(db.Call(t2, obj, "bump").status());
    ODE_ASSERT_OK(db.Commit(t2));
    EXPECT_EQ(db.PeekAttr(obj, "fired").value().AsInt().value(), 2);
  }
}

TEST(CrossFeatureTest, ChooseStateCrossesSnapshotExactlyOnce) {
  // choose N fires exactly once in an object's lifetime, even when the
  // lifetime spans snapshots — the §5 point that the integer state *is*
  // the monitoring history.
  ClassDef def = CounterClass();
  def.AddTrigger("C(): perpetual choose 2 (after bump) ==> bump_fired");
  std::string path =
      std::string(::testing::TempDir()) + "/choose_snap.ode";
  Oid obj;
  {
    Database db;
    SetUpSchema(&db, def);
    TxnId t = db.Begin().value();
    obj = db.New(t, "counter").value();
    ODE_ASSERT_OK(db.ActivateTrigger(t, obj, "C"));
    ODE_ASSERT_OK(db.Call(t, obj, "bump").status());
    ODE_ASSERT_OK(db.Call(t, obj, "bump").status());  // Fires (2nd).
    ODE_ASSERT_OK(db.Commit(t));
    EXPECT_EQ(db.PeekAttr(obj, "fired").value().AsInt().value(), 1);
    ODE_ASSERT_OK(db.SaveSnapshot(path));
  }
  {
    Database db;
    SetUpSchema(&db, def);
    ODE_ASSERT_OK(db.LoadSnapshot(path));
    TxnId t = db.Begin().value();
    ODE_ASSERT_OK(db.Call(t, obj, "bump").status());  // 3rd: silent.
    ODE_ASSERT_OK(db.Commit(t));
    EXPECT_EQ(db.PeekAttr(obj, "fired").value().AsInt().value(), 1);
  }
}

TEST(CrossFeatureTest, WitnessAvailableInDeferredAction) {
  // Argument capture composes with deferred couplings: the action fires at
  // tcomplete but can still read the bump... (witnesses only record events
  // in the trigger's alphabet — the gate's constituents are, via the base
  // alphabet).
  Result<EventExprPtr> expr = BuildCouplingFromText(
      CouplingMode::kImmediateDeferred, "after bump2(int k)", "ready");
  ASSERT_TRUE(expr.ok());
  TriggerSpec spec;
  spec.name = "K";
  spec.perpetual = true;
  spec.event = *expr;
  spec.action = "note";
  ClassDef def = CounterClass();
  def.AddMethod(MethodDef{"bump2", {{"int", "k"}}, MethodKind::kUpdate,
                          nullptr});
  def.AddTrigger(spec);

  Database db;
  Value seen;
  ODE_ASSERT_OK(db.RegisterAction(
      "note", [&seen](const ActionContext& ctx) -> Status {
        seen = ctx.WitnessArg("bump2", "k");
        return Status::OK();
      }));
  ODE_ASSERT_OK(db.RegisterClass(std::move(def)).status());
  TxnId t0 = db.Begin().value();
  Oid obj = db.New(t0, "counter").value();
  ODE_ASSERT_OK(db.ActivateTrigger(t0, obj, "K"));
  ODE_ASSERT_OK(db.Commit(t0));

  TxnId t = db.Begin().value();
  ODE_ASSERT_OK(db.Call(t, obj, "bump2", {Value(77)}).status());
  ODE_ASSERT_OK(db.Commit(t));
  EXPECT_EQ(seen.AsInt().value_or(-1), 77);
}

}  // namespace
}  // namespace ode
