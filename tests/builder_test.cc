#include "lang/builder.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ode {
namespace {

using namespace ode::builder;  // NOLINT — the builder is designed for this.
using testing_util::ParseOrDie;

/// Builder output must equal the parsed DSL form (canonical text).
void ExpectSameAs(const Ev& built, std::string_view dsl) {
  Result<EventExprPtr> e = built.Build();
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ((*e)->ToString(), ParseOrDie(dsl)->ToString());
}

TEST(BuilderTest, AtomsMatchDsl) {
  ExpectSameAs(After("withdraw"), "after withdraw");
  ExpectSameAs(Before("withdraw"), "before withdraw");
  ExpectSameAs(AfterCreate(), "after create");
  ExpectSameAs(BeforeDelete(), "before delete");
  ExpectSameAs(AfterTcommit(), "after tcommit");
  ExpectSameAs(Never(), "empty");
  TimeSpec nine;
  nine.hour = 9;
  ExpectSameAs(At(nine), "at time(HR=9)");
}

TEST(BuilderTest, SignatureAndMask) {
  ExpectSameAs(
      After("withdraw", {{"Item", "i"}, {"int", "q"}}).Where("q > 1000"),
      "after withdraw(Item i, int q) && q > 1000");
}

TEST(BuilderTest, OperatorSugar) {
  ExpectSameAs(After("a") | Before("b"), "after a | before b");
  ExpectSameAs(After("a") & !Before("b"), "after a & !before b");
}

TEST(BuilderTest, Combinators) {
  ExpectSameAs(Relative({After("a"), After("b"), After("c")}),
               "relative(after a, after b, after c)");
  ExpectSameAs(RelativePlus(After("a")), "relative+(after a)");
  ExpectSameAs(RelativeN(5, After("deposit")), "relative 5 (after deposit)");
  ExpectSameAs(Prior({After("a"), After("b")}), "prior(after a, after b)");
  ExpectSameAs(Sequence({After("a"), Before("b"), After("b")}),
               "after a; before b; after b");
  ExpectSameAs(Choose(5, AfterTcommit()), "choose 5 (after tcommit)");
  ExpectSameAs(Every(5, AfterAccess()), "every 5 (after access)");
  ExpectSameAs(Fa(After("a"), After("b"), After("c")),
               "fa(after a, after b, after c)");
  ExpectSameAs(FaAbs(After("a"), After("b"), After("c")),
               "faAbs(after a, after b, after c)");
}

TEST(BuilderTest, Shorthands) {
  ExpectSameAs(Method("deposit"), "deposit");
  ExpectSameAs(StateReached("balance < 500.00"), "balance < 500.00");
}

TEST(BuilderTest, CompositeMaskViaWhere) {
  ExpectSameAs((After("f") | After("g")).Where("ready"),
               "(after f | after g) && ready");
}

TEST(BuilderTest, PaperTriggerT4) {
  TimeSpec nine;
  nine.hour = 9;
  Ev day_begin = At(nine);
  Ev t4 = Relative(
      {day_begin,
       Prior({Choose(5, AfterTcommit()), AfterTcommit()}) &
           !Prior({day_begin, AfterTcommit()})});
  ExpectSameAs(t4,
               "relative(at time(HR=9), prior(choose 5 (after tcommit), "
               "after tcommit) & !prior(at time(HR=9), after tcommit))");
}

TEST(BuilderTest, ErrorsPoisonTheChain) {
  Ev bad = After("f").Where("q >");  // Mask parse error.
  EXPECT_FALSE(bad.ok());
  EXPECT_FALSE(bad.error().empty());
  // The error propagates through combinators and surfaces in Build.
  Ev composed = Fa(bad, After("g"), After("h"));
  EXPECT_FALSE(composed.ok());
  Result<EventExprPtr> built = composed.Build();
  EXPECT_EQ(built.status().code(), StatusCode::kParseError);
  EXPECT_EQ(composed.ptr(), nullptr);
}

TEST(BuilderTest, InvalidAtomRejected) {
  TimeSpec bad;
  bad.hour = 42;
  EXPECT_FALSE(At(bad).ok());
}

TEST(BuilderTest, BuiltExpressionsCompile) {
  Ev evt = Fa(After("withdraw", {{"int", "q"}}).Where("q > 500"),
              Relative({After("withdraw", {{"int", "q"}}),
                        After("withdraw", {{"int", "q"}})}),
              Method("deposit"));
  Result<EventExprPtr> e = evt.Build();
  ASSERT_TRUE(e.ok());
  Result<CompiledEvent> compiled = CompileEvent(*e, CompileOptions());
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
}

}  // namespace
}  // namespace ode
