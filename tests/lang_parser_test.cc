#include "lang/event_parser.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ode {
namespace {

using testing_util::ParseOrDie;

TEST(EventParserTest, QualifiedBasicEvents) {
  EventExprPtr e = ParseOrDie("after read");
  ASSERT_EQ(e->kind, EventExprKind::kAtom);
  EXPECT_EQ(e->atom.kind, BasicEventKind::kRead);
  EXPECT_EQ(e->atom.qualifier, EventQualifier::kAfter);

  e = ParseOrDie("before tcomplete");
  EXPECT_EQ(e->atom.kind, BasicEventKind::kTcomplete);
}

TEST(EventParserTest, BeforeTcommitRejected) {
  EXPECT_FALSE(ParseEvent("before tcommit").ok());
  EXPECT_FALSE(ParseEvent("after tcomplete").ok());
  EXPECT_FALSE(ParseEvent("before create").ok());
  EXPECT_FALSE(ParseEvent("after delete").ok());
}

TEST(EventParserTest, MethodEventWithSignature) {
  EventExprPtr e = ParseOrDie("after withdraw(Item i, int q)");
  ASSERT_EQ(e->kind, EventExprKind::kAtom);
  EXPECT_EQ(e->atom.method_name, "withdraw");
  ASSERT_EQ(e->atom.params.size(), 2u);
  EXPECT_EQ(e->atom.params[0].type_name, "Item");
  EXPECT_EQ(e->atom.params[0].name, "i");
  EXPECT_EQ(e->atom.params[1].name, "q");
}

TEST(EventParserTest, MethodEventNamesOnlyParams) {
  // The paper's `choose 5 (after withdraw (i, q) && q>100)` names params
  // without types.
  EventExprPtr e = ParseOrDie("after withdraw (i, q) && q > 100");
  ASSERT_EQ(e->kind, EventExprKind::kAtom);
  ASSERT_EQ(e->atom.params.size(), 2u);
  EXPECT_EQ(e->atom.params[0].type_name, "");
  EXPECT_EQ(e->atom.params[1].name, "q");
  ASSERT_NE(e->atom_mask, nullptr);
  EXPECT_EQ(e->atom_mask->ToString(), "(q > 100)");
}

TEST(EventParserTest, LogicalEventMaskBindsToAtom) {
  // §3.2: after withdraw(Item, int q) && q>1000.
  EventExprPtr e = ParseOrDie("after withdraw(Item i, int q) && q > 1000");
  ASSERT_EQ(e->kind, EventExprKind::kAtom);
  ASSERT_NE(e->atom_mask, nullptr);
}

TEST(EventParserTest, MaskConjunctionIsGreedy) {
  // §5: before log && a>0 && b>0 — the whole conjunction is one mask.
  EventExprPtr e = ParseOrDie("before log && a > 0 && b > 0");
  ASSERT_EQ(e->kind, EventExprKind::kAtom);
  ASSERT_NE(e->atom_mask, nullptr);
  EXPECT_EQ(e->atom_mask->ToString(), "((a > 0) && (b > 0))");
}

TEST(EventParserTest, UnionIntersectionNegationPrecedence) {
  // ! > & > |.
  EventExprPtr e = ParseOrDie("!after read & before f | after g");
  ASSERT_EQ(e->kind, EventExprKind::kOr);
  EXPECT_EQ(e->children[0]->kind, EventExprKind::kAnd);
  EXPECT_EQ(e->children[0]->children[0]->kind, EventExprKind::kNot);
}

TEST(EventParserTest, MethodShorthand) {
  // §3.3: a bare method name f denotes (before f | after f).
  EventExprPtr e = ParseOrDie("deposit");
  ASSERT_EQ(e->kind, EventExprKind::kOr);
  EXPECT_EQ(e->children[0]->atom.qualifier, EventQualifier::kBefore);
  EXPECT_EQ(e->children[0]->atom.method_name, "deposit");
  EXPECT_EQ(e->children[1]->atom.qualifier, EventQualifier::kAfter);
}

TEST(EventParserTest, NegatedMethodShorthand) {
  // §3.3: !deposit is !(before deposit | after deposit).
  EventExprPtr e = ParseOrDie("!deposit");
  ASSERT_EQ(e->kind, EventExprKind::kNot);
  EXPECT_EQ(e->children[0]->kind, EventExprKind::kOr);
}

TEST(EventParserTest, StateShorthand) {
  // §3.3: a bare boolean object-state expression denotes
  // (after update | after create) && expr.
  EventExprPtr e = ParseOrDie("balance < 500.00");
  ASSERT_EQ(e->kind, EventExprKind::kOr);
  ASSERT_EQ(e->children[0]->kind, EventExprKind::kAtom);
  EXPECT_EQ(e->children[0]->atom.kind, BasicEventKind::kUpdate);
  EXPECT_EQ(e->children[1]->atom.kind, BasicEventKind::kCreate);
  ASSERT_NE(e->children[0]->atom_mask, nullptr);
}

TEST(EventParserTest, ParenthesizedStatePredicate) {
  // The vessel example's pDrop: (pressure < low_limit).
  EventExprPtr e = ParseOrDie("(pressure < low_limit)");
  ASSERT_EQ(e->kind, EventExprKind::kOr);
  EXPECT_EQ(e->children[0]->atom.kind, BasicEventKind::kUpdate);
}

TEST(EventParserTest, ParenthesizedMaskSubexpression) {
  // `(balance * 2) < x` must re-parse as one predicate, not an event.
  EventExprPtr e = ParseOrDie("(balance * 2) < x");
  ASSERT_EQ(e->kind, EventExprKind::kOr);
  ASSERT_NE(e->children[0]->atom_mask, nullptr);
}

TEST(EventParserTest, SequencingOperators) {
  EventExprPtr e = ParseOrDie("relative(after f, before g, after g)");
  ASSERT_EQ(e->kind, EventExprKind::kRelative);
  EXPECT_EQ(e->children.size(), 3u);

  e = ParseOrDie("prior(after f, after g)");
  EXPECT_EQ(e->kind, EventExprKind::kPrior);

  e = ParseOrDie("sequence(after tbegin, before access, after access, "
                 "before tcomplete)");
  ASSERT_EQ(e->kind, EventExprKind::kSequence);
  EXPECT_EQ(e->children.size(), 4u);
}

TEST(EventParserTest, SemicolonIsSequenceSugar) {
  // §3.4 / trigger T8: after deposit; before withdraw; after withdraw.
  EventExprPtr e =
      ParseOrDie("after deposit; before withdraw; after withdraw");
  ASSERT_EQ(e->kind, EventExprKind::kSequence);
  EXPECT_EQ(e->children.size(), 3u);
}

TEST(EventParserTest, SingletonSequencingCollapses) {
  // §3.4: relative(E) means simply E — represented as a 1-ary node that
  // validates and evaluates as E.
  EventExprPtr e = ParseOrDie("relative(after f)");
  ASSERT_EQ(e->kind, EventExprKind::kRelative);
  EXPECT_EQ(e->children.size(), 1u);
  EXPECT_TRUE(e->Validate().ok());
}

TEST(EventParserTest, RelativePlusAndN) {
  EventExprPtr e = ParseOrDie("relative+ (after f)");
  EXPECT_EQ(e->kind, EventExprKind::kRelativePlus);

  e = ParseOrDie("relative 5 (after deposit)");
  ASSERT_EQ(e->kind, EventExprKind::kRelativeN);
  EXPECT_EQ(e->n, 5);
}

TEST(EventParserTest, PriorPlusAndSequencePlusRejected) {
  // §3.4: "modifier + is not provided for the operators prior and
  // sequence".
  EXPECT_FALSE(ParseEvent("prior+ (after f)").ok());
  EXPECT_FALSE(ParseEvent("sequence+ (after f)").ok());
}

TEST(EventParserTest, ChooseAndEvery) {
  EventExprPtr e = ParseOrDie("choose 5 (after tcommit)");
  ASSERT_EQ(e->kind, EventExprKind::kChoose);
  EXPECT_EQ(e->n, 5);

  e = ParseOrDie("every 5 (after tcommit)");
  ASSERT_EQ(e->kind, EventExprKind::kEvery);
  EXPECT_EQ(e->n, 5);

  EXPECT_FALSE(ParseEvent("choose 0 (after f)").ok());
  EXPECT_FALSE(ParseEvent("choose (after f)").ok());
}

TEST(EventParserTest, FaAndFaAbs) {
  // §3.4's fa example.
  EventExprPtr e = ParseOrDie(
      "fa(after tbegin, prior(after update, after tcommit), "
      "(after tcommit | after tabort))");
  ASSERT_EQ(e->kind, EventExprKind::kFa);
  EXPECT_EQ(e->children[1]->kind, EventExprKind::kPrior);
  EXPECT_EQ(e->children[2]->kind, EventExprKind::kOr);

  e = ParseOrDie("faAbs(after f, after g, after h)");
  EXPECT_EQ(e->kind, EventExprKind::kFaAbs);

  EXPECT_FALSE(ParseEvent("fa(after f, after g)").ok());  // Arity 3.
}

TEST(EventParserTest, TimeEvents) {
  EventExprPtr e = ParseOrDie("at time(HR=9)");
  ASSERT_EQ(e->kind, EventExprKind::kAtom);
  EXPECT_EQ(e->atom.kind, BasicEventKind::kTime);
  EXPECT_EQ(e->atom.time_mode, TimeEventMode::kAt);
  EXPECT_EQ(e->atom.time_spec.hour, 9);

  e = ParseOrDie("after time(HR=2, M=30)");
  EXPECT_EQ(e->atom.time_mode, TimeEventMode::kAfter);
  EXPECT_EQ(e->atom.time_spec.minute, 30);

  e = ParseOrDie("every time(SEC=10)");
  EXPECT_EQ(e->atom.time_mode, TimeEventMode::kEvery);
}

TEST(EventParserTest, TimeSpecErrors) {
  EXPECT_FALSE(ParseEvent("at time()").ok());
  EXPECT_FALSE(ParseEvent("at time(XX=1)").ok());
  EXPECT_FALSE(ParseEvent("at time(HR=9, HR=10)").ok());
  EXPECT_FALSE(ParseEvent("at time(HR=25)").ok());
}

TEST(EventParserTest, EveryDisambiguation) {
  // `every 5 (E)` is the operator; `every time(...)` a periodic timer.
  EXPECT_EQ(ParseOrDie("every 5 (after f)")->kind, EventExprKind::kEvery);
  EXPECT_EQ(ParseOrDie("every time(M=5)")->atom.time_mode,
            TimeEventMode::kEvery);
  EXPECT_FALSE(ParseEvent("every after f").ok());
}

TEST(EventParserTest, CompositeMaskOnParenthesizedEvent) {
  EventExprPtr e = ParseOrDie("(after f | after g) && ready");
  ASSERT_EQ(e->kind, EventExprKind::kMasked);
  EXPECT_EQ(e->children[0]->kind, EventExprKind::kOr);
}

TEST(EventParserTest, EmptyKeyword) {
  EXPECT_EQ(ParseOrDie("empty")->kind, EventExprKind::kEmpty);
}

TEST(EventParserTest, TrailingGarbageRejected) {
  EXPECT_FALSE(ParseEvent("after f after g").ok());
  EXPECT_FALSE(ParseEvent("after f )").ok());
}

TEST(EventParserTest, PaperHeadlineExamples) {
  // A sweep over every §3.5 trigger event expression.
  const char* kExamples[] = {
      "before withdraw && !authorized(user())",
      "after withdraw (i, q) && i.balance < reorder(i)",
      "at time(HR=17)",
      "relative(at time(HR=9), prior(choose 5 (after tcommit), "
      "after tcommit) & !prior(at time(HR=9), after tcommit))",
      "every 5 (after access)",
      "after withdraw (i, q) && q > 100",
      "fa(at time(HR=9), choose 5 (after withdraw (i, q) && q > 100), "
      "at time(HR=9))",
      "after deposit; before withdraw; after withdraw",
      "relative((pressure < low_limit), relative(after motorStart, "
      "after motorStop))",
  };
  for (const char* text : kExamples) {
    Result<EventExprPtr> e = ParseEvent(text);
    EXPECT_TRUE(e.ok()) << text << ": " << e.status().ToString();
  }
}

}  // namespace
}  // namespace ode
