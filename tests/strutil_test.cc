#include "common/strutil.h"

#include <gtest/gtest.h>

namespace ode {
namespace {

TEST(StrUtilTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StrUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ',').size(), 3u);
  EXPECT_EQ(Split("a,,c", ',')[1], "");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StrUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x  "), "x");
  EXPECT_EQ(StripWhitespace("\t\na b\r\n"), "a b");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StrUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(StrUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StrUtilTest, Fnv1a64StableAndDistinct) {
  EXPECT_EQ(Fnv1a64("abc"), Fnv1a64("abc"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  // Known FNV-1a reference value for the empty string.
  EXPECT_EQ(Fnv1a64(""), 14695981039346656037ull);
}

}  // namespace
}  // namespace ode
