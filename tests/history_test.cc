#include "event/history.h"

#include <gtest/gtest.h>

namespace ode {
namespace {

TEST(HistoryTest, AppendAssignsOneBasedPositions) {
  EventHistory h;
  EXPECT_TRUE(h.empty());
  uint64_t p1 = h.Append(MakePosted(BasicEventKind::kCreate,
                                    EventQualifier::kAfter));
  uint64_t p2 = h.Append(MakePostedMethod(EventQualifier::kAfter, "f"));
  EXPECT_EQ(p1, 1u);
  EXPECT_EQ(p2, 2u);
  EXPECT_EQ(h.size(), 2u);
  EXPECT_EQ(h.at(1).kind, BasicEventKind::kCreate);
  EXPECT_EQ(h.at(2).method_name, "f");
  EXPECT_EQ(h.at(2).seq, 2u);
}

TEST(HistoryTest, ClearEmpties) {
  EventHistory h;
  h.Append(MakePostedMethod(EventQualifier::kAfter, "f"));
  h.Clear();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.Append(MakePostedMethod(EventQualifier::kAfter, "g")), 1u);
}

TEST(HistoryTest, ToStringListsEvents) {
  EventHistory h;
  h.Append(MakePostedMethod(EventQualifier::kBefore, "deposit"));
  std::string s = h.ToString();
  EXPECT_NE(s.find("before deposit"), std::string::npos);
}

}  // namespace
}  // namespace ode
