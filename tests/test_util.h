#ifndef ODE_TESTS_TEST_UTIL_H_
#define ODE_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "compile/alphabet.h"
#include "compile/compiler.h"
#include "lang/event_parser.h"
#include "lang/mask_parser.h"

namespace ode {
namespace testing_util {

/// Fails the current test (fatally) if the result is an error.
#define ODE_ASSERT_OK(expr)                                         \
  do {                                                              \
    auto _s = (expr);                                               \
    ASSERT_TRUE(_s.ok()) << _s.ToString();                          \
  } while (0)

#define ODE_EXPECT_OK(expr)                                         \
  do {                                                              \
    auto _s = (expr);                                               \
    EXPECT_TRUE(_s.ok()) << _s.ToString();                          \
  } while (0)

/// Parses an event expression, aborting the test on failure.
inline EventExprPtr ParseOrDie(std::string_view text) {
  Result<EventExprPtr> r = ParseEvent(text);
  EXPECT_TRUE(r.ok()) << "parse of '" << text
                      << "' failed: " << r.status().ToString();
  return r.ok() ? *r : nullptr;
}

inline MaskExprPtr ParseMaskOrDie(std::string_view text) {
  Result<MaskExprPtr> r = ParseMask(text);
  EXPECT_TRUE(r.ok()) << "mask parse of '" << text
                      << "' failed: " << r.status().ToString();
  return r.ok() ? *r : nullptr;
}

/// A compiled expression + alphabet pair for detector comparisons.
struct Compiled {
  EventExprPtr expr;
  CompiledEvent event;
};

inline Compiled CompileOrDie(std::string_view text,
                             const CompileOptions& options = {}) {
  Compiled out;
  out.expr = ParseOrDie(text);
  Result<CompiledEvent> compiled = CompileEvent(out.expr, options);
  EXPECT_TRUE(compiled.ok())
      << "compile of '" << text << "' failed: "
      << compiled.status().ToString();
  if (compiled.ok()) out.event = std::move(*compiled);
  return out;
}

/// Random-testing helpers. Symbol histories are drawn over the compiled
/// alphabet (which includes the OTHER symbol); expressions without masks or
/// gates have extended alphabet == base alphabet.
inline std::vector<SymbolId> RandomHistory(std::mt19937* rng,
                                           size_t alphabet_size,
                                           size_t length) {
  std::uniform_int_distribution<int> dist(
      0, static_cast<int>(alphabet_size) - 1);
  std::vector<SymbolId> out(length);
  for (SymbolId& s : out) s = dist(*rng);
  return out;
}

/// Generates a random mask-free event expression over method events
/// a(), b(), c(), ... (`depth` bounds the tree height).
inline EventExprPtr RandomExpr(std::mt19937* rng, int depth,
                               int num_methods = 3) {
  std::uniform_int_distribution<int> pick(0, 11);
  std::uniform_int_distribution<int> pick_method(0, num_methods - 1);
  std::uniform_int_distribution<int> pick_n(1, 3);
  auto atom = [&]() {
    std::string name(1, static_cast<char>('a' + pick_method(*rng)));
    EventQualifier q = (*rng)() % 2 == 0 ? EventQualifier::kBefore
                                         : EventQualifier::kAfter;
    return EventExpr::Atom(BasicEvent::Method(q, name));
  };
  if (depth <= 0) return atom();
  switch (pick(*rng)) {
    case 0:
      return atom();
    case 1:
      return EventExpr::Or(RandomExpr(rng, depth - 1, num_methods),
                           RandomExpr(rng, depth - 1, num_methods));
    case 2:
      return EventExpr::And(RandomExpr(rng, depth - 1, num_methods),
                            RandomExpr(rng, depth - 1, num_methods));
    case 3:
      return EventExpr::Not(RandomExpr(rng, depth - 1, num_methods));
    case 4:
      return EventExpr::Relative({RandomExpr(rng, depth - 1, num_methods),
                                  RandomExpr(rng, depth - 1, num_methods)});
    case 5:
      return EventExpr::RelativePlus(RandomExpr(rng, depth - 1, num_methods));
    case 6:
      return EventExpr::RelativeN(pick_n(*rng),
                                  RandomExpr(rng, depth - 1, num_methods));
    case 7:
      return EventExpr::Prior({RandomExpr(rng, depth - 1, num_methods),
                               RandomExpr(rng, depth - 1, num_methods)});
    case 8:
      return EventExpr::Sequence({RandomExpr(rng, depth - 1, num_methods),
                                  RandomExpr(rng, depth - 1, num_methods)});
    case 9:
      return EventExpr::Choose(pick_n(*rng),
                               RandomExpr(rng, depth - 1, num_methods));
    case 10:
      return EventExpr::Every(pick_n(*rng),
                              RandomExpr(rng, depth - 1, num_methods));
    default:
      return EventExpr::Fa(RandomExpr(rng, depth - 1, num_methods),
                           RandomExpr(rng, depth - 1, num_methods),
                           RandomExpr(rng, depth - 1, num_methods));
  }
}

}  // namespace testing_util
}  // namespace ode

#endif  // ODE_TESTS_TEST_UTIL_H_
