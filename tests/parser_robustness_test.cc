// Robustness: the parser must return clean errors (never crash, never
// accept garbage) on malformed and adversarial inputs.
#include <gtest/gtest.h>

#include <random>

#include "lang/event_parser.h"
#include "lang/lexer.h"
#include "lang/trigger_spec.h"
#include "test_util.h"

namespace ode {
namespace {

class MalformedInput : public ::testing::TestWithParam<const char*> {};

TEST_P(MalformedInput, RejectedWithParseError) {
  Result<EventExprPtr> r = ParseEvent(GetParam());
  EXPECT_FALSE(r.ok()) << "accepted: " << GetParam() << " as "
                       << (*r)->ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MalformedInput,
    ::testing::Values(
        "", "(", ")", "after", "before", "after (", "relative",
        "relative(", "relative()", "relative(after a",
        "relative(after a,)", "after a |", "after a &", "after a ;",
        "!(after a", "choose (after a)", "choose x (after a)",
        "every (after a)", "fa(after a)", "fa(after a, after b)",
        "fa(after a, after b, after c, after d)", "at", "at time",
        "at time(", "at time(HR)", "at time(HR=)", "at time(HR=9",
        "after a after b", "after a)", "a b", "&& x > 1",
        "after a && ", "prior+ (after a)", "sequence+ (after a)",
        "relative 0 (after a)", "choose 0 (after a)",
        "before tcommit", "after tcomplete", "before tbegin",
        "before create", "after delete", "5thLrgWdrl",  // Ident with digit start.
        "after a && before b"));  // Keywords are reserved in masks.

TEST(ParserRobustnessTest, RandomTokenSoupNeverCrashes) {
  // Random sequences of valid tokens: the parser must terminate with a
  // clean status on every one.
  static const char* kTokens[] = {
      "after", "before", "relative", "prior", "sequence", "choose",
      "every", "fa", "faAbs", "at", "time", "a", "b", "q", "(", ")",
      ",", ";", "|", "&", "&&", "||", "!", "+", "5", "==>", ":", "<",
      ">", "perpetual", "tbegin", "tcommit", "100", "3.5", "\"s\""};
  std::mt19937 rng(123);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string input;
    int len = 1 + static_cast<int>(rng() % 12);
    for (int i = 0; i < len; ++i) {
      input += kTokens[rng() % (sizeof(kTokens) / sizeof(kTokens[0]))];
      input += " ";
    }
    Result<EventExprPtr> r = ParseEvent(input);
    if (r.ok()) {
      // Whatever parsed must validate and print.
      EXPECT_TRUE((*r)->Validate().ok()) << input;
      EXPECT_FALSE((*r)->ToString().empty());
    }
    Result<TriggerSpec> spec = ParseTriggerSpec(input);
    if (spec.ok()) {
      EXPECT_TRUE(spec->event->Validate().ok()) << input;
    }
  }
}

TEST(ParserRobustnessTest, RandomBytesNeverCrashLexer) {
  std::mt19937 rng(321);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string input;
    int len = static_cast<int>(rng() % 40);
    for (int i = 0; i < len; ++i) {
      input += static_cast<char>(rng() % 127 + 1);  // Printable-ish ASCII.
    }
    (void)ParseEvent(input);  // Must not crash; status is irrelevant.
  }
}

TEST(ParserRobustnessTest, DeeplyNestedParensHitNestingLimit) {
  // Found by an AddressSanitizer run: unbounded recursive descent blew the
  // stack on adversarial nesting. The parser now enforces a depth limit
  // and returns a clean error.
  std::string deep;
  for (int i = 0; i < 100000; ++i) deep += "(";
  deep += "after a";
  for (int i = 0; i < 100000; ++i) deep += ")";
  Result<EventExprPtr> r = ParseEvent(deep);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);

  // Shallow nesting (within the limit) still parses.
  std::string shallow;
  for (int i = 0; i < 50; ++i) shallow += "(";
  shallow += "after a";
  for (int i = 0; i < 50; ++i) shallow += ")";
  EXPECT_TRUE(ParseEvent(shallow).ok());
}

TEST(ParserRobustnessTest, DeepBangChainsHitNestingLimit) {
  std::string bangs(100000, '!');
  bangs += "after a";
  EXPECT_EQ(ParseEvent(bangs).status().code(), StatusCode::kParseError);
  // Mask-side unary chains too.
  std::string mask_bangs = "after f && ";
  mask_bangs += std::string(100000, '-');
  mask_bangs += "1 > 0";
  EXPECT_EQ(ParseEvent(mask_bangs).status().code(), StatusCode::kParseError);
  // Modest chains are fine.
  EXPECT_TRUE(ParseEvent("!!!!!after a").ok());
}

TEST(ParserRobustnessTest, LongUnionChain) {
  std::string chain = "after a";
  for (int i = 0; i < 500; ++i) chain += " | after a";
  Result<EventExprPtr> r = ParseEvent(chain);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->NodeCount(), 1001u);  // 501 atoms + 500 unions.
}

// --- Exact source positions in errors and tokens ------------------------

TEST(ParserPositionTest, ErrorOnFirstLineReportsColumn) {
  Result<EventExprPtr> r = ParseEvent("after a ) after b");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("at line 1, column 9"),
            std::string::npos)
      << r.status().ToString();
}

TEST(ParserPositionTest, ErrorOnLaterLineReportsLineAndColumn) {
  // The offending ')' sits on line 2, column 9.
  Result<EventExprPtr> r = ParseEvent("relative(after a,\n        )");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2, column 9"),
            std::string::npos)
      << r.status().ToString();
}

TEST(ParserPositionTest, TriggerSpecErrorsCarryPositions) {
  Result<TriggerSpec> r =
      ParseTriggerSpec("t():\n  after a |\n     ==> act");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos)
      << r.status().ToString();
}

TEST(ParserPositionTest, LexerErrorsCarryPositions) {
  // An unterminated string on line 2.
  Result<EventExprPtr> r = ParseEvent("after f &&\n  x == \"oops");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos)
      << r.status().ToString();
}

TEST(ParserPositionTest, TokensCarryLineColumnAndLength) {
  Result<std::vector<Token>> tokens = Tokenize("after aa\n  q >= 10");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 5u);
  const Token& kw = (*tokens)[0];  // `after`
  EXPECT_EQ(kw.line, 1);
  EXPECT_EQ(kw.col, 1);
  EXPECT_EQ(kw.length, 5u);
  const Token& ident = (*tokens)[1];  // `aa`
  EXPECT_EQ(ident.line, 1);
  EXPECT_EQ(ident.col, 7);
  EXPECT_EQ(ident.length, 2u);
  const Token& q = (*tokens)[2];  // `q` on line 2.
  EXPECT_EQ(q.line, 2);
  EXPECT_EQ(q.col, 3);
  const Token& ge = (*tokens)[3];  // `>=`
  EXPECT_EQ(ge.line, 2);
  EXPECT_EQ(ge.col, 5);
  EXPECT_EQ(ge.length, 2u);
}

}  // namespace
}  // namespace ode
