// Frame codec tests: roundtrips for every frame type, incremental
// (byte-at-a-time) decoding, and the robustness contract — truncated,
// oversized, and bit-flipped inputs must yield kNeedMore or a clean
// kError, never a crash, an over-read, or a bogus frame the encoders
// could not have produced.
#include "net/wire.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "test_util.h"

namespace ode {
namespace net {
namespace {

/// Feeds `bytes` and expects exactly one good frame and then kNeedMore.
Frame DecodeOne(const std::string& bytes) {
  FrameDecoder decoder;
  decoder.Append(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::State::kFrame);
  Frame extra;
  EXPECT_EQ(decoder.Next(&extra), FrameDecoder::State::kNeedMore);
  EXPECT_EQ(decoder.buffered(), 0u);
  return frame;
}

TEST(NetCodecTest, PostRoundTripAllValueKinds) {
  std::string bytes;
  std::vector<Value> args;
  args.push_back(Value());  // null
  args.push_back(Value(int64_t{-42}));
  args.push_back(Value(3.25));
  args.push_back(Value(true));
  args.push_back(Value(std::string("hello \x01 world")));
  args.push_back(Value(Oid{77}));
  AppendPost(&bytes, 9001, Oid{123}, "deposit", args);

  Frame frame = DecodeOne(bytes);
  EXPECT_EQ(frame.type, FrameType::kPost);
  EXPECT_EQ(frame.seq, 9001u);
  EXPECT_EQ(frame.oid, Oid{123});
  EXPECT_EQ(frame.method, "deposit");
  ASSERT_EQ(frame.args.size(), args.size());
  EXPECT_EQ(frame.args[0].kind(), ValueKind::kNull);
  EXPECT_EQ(frame.args[1].AsInt().value(), -42);
  EXPECT_EQ(frame.args[2].AsDouble().value(), 3.25);
  EXPECT_EQ(frame.args[3].AsBool().value(), true);
  EXPECT_EQ(frame.args[4].AsString().value(), "hello \x01 world");
  EXPECT_EQ(frame.args[5].AsOid().value(), Oid{77});
}

TEST(NetCodecTest, ControlFrameRoundTrips) {
  struct Case {
    void (*append)(std::string*, uint64_t);
    FrameType type;
  };
  const Case cases[] = {
      {AppendDrain, FrameType::kDrain},
      {AppendMetricsRequest, FrameType::kMetrics},
      {AppendPing, FrameType::kPing},
      {AppendAck, FrameType::kAck},
      {AppendDrainOk, FrameType::kDrainOk},
      {AppendPong, FrameType::kPong},
  };
  for (const Case& c : cases) {
    std::string bytes;
    c.append(&bytes, 5150);
    Frame frame = DecodeOne(bytes);
    EXPECT_EQ(frame.type, c.type) << FrameTypeName(c.type);
    EXPECT_EQ(frame.seq, 5150u) << FrameTypeName(c.type);
  }
}

TEST(NetCodecTest, HelloRoundTrip) {
  std::string bytes;
  ODE_ASSERT_OK(AppendHello(&bytes, 7, "client-a"));
  Frame frame = DecodeOne(bytes);
  EXPECT_EQ(frame.type, FrameType::kHello);
  EXPECT_EQ(frame.seq, 7u);
  EXPECT_EQ(frame.identity, "client-a");

  bytes.clear();
  AppendHelloOk(&bytes, 7, 9001);
  frame = DecodeOne(bytes);
  EXPECT_EQ(frame.type, FrameType::kHelloOk);
  EXPECT_EQ(frame.seq, 7u);
  EXPECT_EQ(frame.watermark, 9001u);
}

TEST(NetCodecTest, HelloEncoderEnforcesIdentityCaps) {
  std::string bytes;
  // Anonymous sessions don't send HELLO; an empty identity is a bug.
  EXPECT_FALSE(AppendHello(&bytes, 1, "").ok());
  EXPECT_TRUE(bytes.empty());
  EXPECT_FALSE(
      AppendHello(&bytes, 1, std::string(kMaxIdentityLen + 1, 'x')).ok());
  EXPECT_TRUE(bytes.empty());

  const std::string max_id(kMaxIdentityLen, 'x');
  ODE_ASSERT_OK(AppendHello(&bytes, 1, max_id));
  Frame frame = DecodeOne(bytes);
  EXPECT_EQ(frame.identity, max_id);
}

TEST(NetCodecTest, MalformedHelloIsError) {
  // Hand-craft a HELLO whose id_len claims zero bytes: the decoder must
  // reject it (the encoder cannot produce it).
  std::string payload;
  uint64_t seq = 3;
  payload.append(reinterpret_cast<const char*>(&seq), 8);  // LE test hosts.
  uint16_t id_len = 0;
  payload.append(reinterpret_cast<const char*>(&id_len), 2);
  std::string bytes;
  uint32_t len = static_cast<uint32_t>(payload.size());
  bytes.append(reinterpret_cast<const char*>(&len), 4);
  bytes.push_back(static_cast<char>(FrameType::kHello));
  bytes.append(payload);
  FrameDecoder decoder;
  decoder.Append(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::State::kError);

  // And an id_len larger than the cap, with matching payload bytes.
  payload.clear();
  payload.append(reinterpret_cast<const char*>(&seq), 8);
  id_len = static_cast<uint16_t>(kMaxIdentityLen + 1);
  payload.append(reinterpret_cast<const char*>(&id_len), 2);
  payload.append(kMaxIdentityLen + 1, 'y');
  bytes.clear();
  len = static_cast<uint32_t>(payload.size());
  bytes.append(reinterpret_cast<const char*>(&len), 4);
  bytes.push_back(static_cast<char>(FrameType::kHello));
  bytes.append(payload);
  FrameDecoder big;
  big.Append(bytes.data(), bytes.size());
  EXPECT_EQ(big.Next(&frame), FrameDecoder::State::kError);
}

TEST(NetCodecTest, ErrRoundTrip) {
  std::string bytes;
  AppendErr(&bytes, 31, WireError::kWouldBlock, "queue full");
  Frame frame = DecodeOne(bytes);
  EXPECT_EQ(frame.type, FrameType::kErr);
  EXPECT_EQ(frame.seq, 31u);
  EXPECT_EQ(frame.error, WireError::kWouldBlock);
  EXPECT_EQ(frame.message, "queue full");
}

TEST(NetCodecTest, MetricsReplyRoundTrip) {
  RemoteMetrics metrics;
  metrics.total.enqueued = 100;
  metrics.total.processed = 90;
  metrics.total.fired = 30;
  metrics.shards.resize(2);
  metrics.shards[0].enqueued = 60;
  metrics.shards[1].enqueued = 40;
  metrics.shards[1].queue_high_water = 7;
  metrics.producers.push_back({"conn0[peer]", 50, 48, 2, 0});
  metrics.producers.push_back({"conn1[peer]", 50, 50, 0, 0});

  std::string bytes;
  AppendMetricsReply(&bytes, 77, metrics);
  Frame frame = DecodeOne(bytes);
  EXPECT_EQ(frame.type, FrameType::kMetricsReply);
  EXPECT_EQ(frame.seq, 77u);
  EXPECT_EQ(frame.metrics.total.enqueued, 100u);
  EXPECT_EQ(frame.metrics.total.processed, 90u);
  EXPECT_EQ(frame.metrics.total.fired, 30u);
  ASSERT_EQ(frame.metrics.shards.size(), 2u);
  EXPECT_EQ(frame.metrics.shards[0].enqueued, 60u);
  EXPECT_EQ(frame.metrics.shards[1].queue_high_water, 7u);
  ASSERT_EQ(frame.metrics.producers.size(), 2u);
  EXPECT_EQ(frame.metrics.producers[0].name, "conn0[peer]");
  EXPECT_EQ(frame.metrics.producers[0].posted, 50u);
  EXPECT_EQ(frame.metrics.producers[0].rejected, 2u);
}

TEST(NetCodecTest, DecodesByteAtATime) {
  std::string bytes;
  AppendPost(&bytes, 1, Oid{5}, "add", {Value(int64_t{9})});
  AppendPing(&bytes, 2);

  FrameDecoder decoder;
  std::vector<Frame> frames;
  Frame frame;
  for (char byte : bytes) {
    decoder.Append(&byte, 1);
    while (decoder.Next(&frame) == FrameDecoder::State::kFrame) {
      frames.push_back(frame);
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, FrameType::kPost);
  EXPECT_EQ(frames[0].method, "add");
  EXPECT_EQ(frames[1].type, FrameType::kPing);
  EXPECT_EQ(frames[1].seq, 2u);
}

TEST(NetCodecTest, DecodesManyFramesFromOneChunk) {
  std::string bytes;
  for (uint64_t i = 0; i < 100; ++i) {
    AppendPost(&bytes, i, Oid{i + 1}, "m", {Value(static_cast<int64_t>(i))});
  }
  FrameDecoder decoder;
  decoder.Append(bytes.data(), bytes.size());
  Frame frame;
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_EQ(decoder.Next(&frame), FrameDecoder::State::kFrame);
    EXPECT_EQ(frame.seq, i);
    EXPECT_EQ(frame.oid, (Oid{i + 1}));
  }
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::State::kNeedMore);
}

// Every strict prefix of a valid frame is kNeedMore — the decoder never
// invents a frame or reads past what it has.
TEST(NetCodecTest, EveryTruncationIsNeedMore) {
  std::string bytes;
  AppendPost(&bytes, 3, Oid{9}, "withdraw",
             {Value(int64_t{10}), Value(std::string("memo"))});
  Frame frame;
  for (size_t len = 0; len < bytes.size(); ++len) {
    FrameDecoder decoder;
    decoder.Append(bytes.data(), len);
    EXPECT_EQ(decoder.Next(&frame), FrameDecoder::State::kNeedMore)
        << "prefix length " << len;
  }
}

TEST(NetCodecTest, OversizedPayloadLengthIsError) {
  // Header claiming a payload just past the cap.
  std::string bytes;
  uint32_t len = kMaxFramePayload + 1;
  bytes.append(reinterpret_cast<const char*>(&len), 4);  // LE on test hosts.
  bytes.push_back(static_cast<char>(FrameType::kPing));
  FrameDecoder decoder;
  decoder.Append(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::State::kError);
  EXPECT_FALSE(decoder.error().empty());
  // Poisoned: even appending a valid frame afterwards keeps failing.
  std::string good;
  AppendPing(&good, 1);
  decoder.Append(good.data(), good.size());
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::State::kError);
}

TEST(NetCodecTest, UnknownFrameTypeIsError) {
  std::string bytes;
  AppendPing(&bytes, 4);
  bytes[4] = static_cast<char>(0xEE);  // Clobber the type byte.
  FrameDecoder decoder;
  decoder.Append(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::State::kError);
}

TEST(NetCodecTest, TrailingPayloadBytesAreError) {
  // A PING whose declared length covers 4 junk bytes beyond its seq.
  std::string bytes;
  AppendPing(&bytes, 4);
  std::string padded;
  uint32_t len = 8 + 4;
  padded.append(reinterpret_cast<const char*>(&len), 4);
  padded.append(bytes.substr(4, 1));  // type
  padded.append(bytes.substr(5, 8));  // seq
  padded.append("JUNK", 4);
  FrameDecoder decoder;
  decoder.Append(padded.data(), padded.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::State::kError);
}

// Flip every bit of a representative POST frame, one at a time. Each
// mutation must decode to kNeedMore (length grew), kError, or a
// well-formed frame — and must never crash or over-read.
TEST(NetCodecTest, BitFlipSweepNeverCrashes) {
  std::string bytes;
  AppendPost(&bytes, 11, Oid{42}, "add",
             {Value(int64_t{5}), Value(std::string("xy")), Value(false)});
  size_t frames = 0, need_more = 0, errors = 0;
  for (size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    std::string mutated = bytes;
    mutated[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    FrameDecoder decoder;
    decoder.Append(mutated.data(), mutated.size());
    Frame frame;
    switch (decoder.Next(&frame)) {
      case FrameDecoder::State::kFrame: ++frames; break;
      case FrameDecoder::State::kNeedMore: ++need_more; break;
      case FrameDecoder::State::kError: ++errors; break;
    }
  }
  // The sweep must exercise all three outcomes (sanity that mutations are
  // actually reaching the validators), with plenty of clean rejections.
  EXPECT_GT(errors, 0u);
  EXPECT_GT(need_more, 0u);
  EXPECT_GT(frames, 0u);
  EXPECT_EQ(frames + need_more + errors, bytes.size() * 8);
}

/// Hand-rolls a POST frame the validated encoder refuses to produce:
/// little-endian header + seq/oid/method, then an arg count with no arg
/// bytes behind it (the decoder's cap checks fire before the args are
/// read).
std::string RawPostFrame(uint64_t seq, uint64_t oid, const std::string& method,
                         uint16_t argc) {
  std::string payload;
  auto put_le = [](std::string* out, uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      out->push_back(static_cast<char>(v >> (8 * i)));
    }
  };
  put_le(&payload, seq, 8);
  put_le(&payload, oid, 8);
  put_le(&payload, method.size(), 2);
  payload.append(method);
  put_le(&payload, argc, 2);
  std::string frame;
  put_le(&frame, payload.size(), 4);
  frame.push_back(static_cast<char>(FrameType::kPost));
  frame.append(payload);
  return frame;
}

TEST(NetCodecTest, PostEncoderRefusesOverCapInput) {
  // AppendPost validates against the protocol caps and leaves the buffer
  // untouched on rejection — it never emits a frame the server would
  // poison the connection over.
  std::string buf;
  AppendPing(&buf, 7);
  const std::string before = buf;

  Status s =
      AppendPost(&buf, 1, Oid{1}, std::string(kMaxMethodLen + 1, 'm'), {});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(buf, before);

  s = AppendPost(&buf, 1, Oid{1}, "m",
                 std::vector<Value>(kMaxPostArgs + 1, Value(int64_t{0})));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(buf, before);

  // Method and argc within caps, but the encoded payload overflows the
  // frame limit: rejected after the size of the real encoding is known.
  s = AppendPost(&buf, 1, Oid{1}, "m",
                 {Value(std::string(kMaxFramePayload, 'x'))});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(buf, before);

  // At-cap input is legal and round-trips.
  std::string ok_buf;
  ODE_ASSERT_OK(
      AppendPost(&ok_buf, 2, Oid{3}, std::string(kMaxMethodLen, 'm'), {}));
  Frame frame = DecodeOne(ok_buf);
  EXPECT_EQ(frame.method.size(), kMaxMethodLen);
}

TEST(NetCodecTest, MethodAndArgCountCapsEnforced) {
  // A peer that hand-rolls an over-cap POST (our encoder will not emit
  // one) is rejected cleanly by the decoder.
  Frame frame;
  std::string bytes =
      RawPostFrame(1, 1, std::string(kMaxMethodLen + 1, 'm'), 0);
  FrameDecoder decoder;
  decoder.Append(bytes.data(), bytes.size());
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::State::kError);

  std::string bytes2 = RawPostFrame(1, 1, "m", kMaxPostArgs + 1);
  FrameDecoder decoder2;
  decoder2.Append(bytes2.data(), bytes2.size());
  EXPECT_EQ(decoder2.Next(&frame), FrameDecoder::State::kError);
}

TEST(NetCodecTest, StatusWireErrorMapping) {
  EXPECT_EQ(WireErrorFromStatus(Status::WouldBlock("q")),
            WireError::kWouldBlock);
  EXPECT_EQ(WireErrorFromStatus(Status::Shutdown("s")),
            WireError::kShuttingDown);
  EXPECT_EQ(WireErrorFromStatus(Status::NotFound("n")), WireError::kNotFound);
  EXPECT_EQ(StatusFromWireError(WireError::kWouldBlock, "q").code(),
            StatusCode::kWouldBlock);
  EXPECT_EQ(StatusFromWireError(WireError::kShuttingDown, "s").code(),
            StatusCode::kShutdown);
  EXPECT_EQ(StatusFromWireError(WireError::kNotFound, "n").code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace net
}  // namespace ode
