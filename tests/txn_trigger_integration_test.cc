// Integration tests for §6: transaction events, the before-tcomplete
// fixpoint, system transactions for post-commit/post-abort actions, commit
// dependencies, and the committed vs. full history views.
#include <gtest/gtest.h>

#include "ode/database.h"
#include "test_util.h"

namespace ode {
namespace {

ClassDef CounterClass() {
  ClassDef def("counter");
  def.AddAttr("n", Value(0));
  def.AddAttr("fired", Value(0));
  def.AddMethod(MethodDef{
      "bump",
      {},
      MethodKind::kUpdate,
      [](MethodContext* ctx) -> Status {
        ODE_ASSIGN_OR_RETURN(Value n, ctx->Get("n"));
        ODE_ASSIGN_OR_RETURN(Value next, n.Add(Value(1)));
        return ctx->Set("n", next);
      }});
  return def;
}

Status BumpFired(const ActionContext& ctx) {
  Result<Value> v = ctx.db->PeekAttr(ctx.self, "fired");
  if (!v.ok()) return v.status();
  Result<Value> next = v->Add(Value(1));
  if (!next.ok()) return next.status();
  return ctx.db->SetAttr(ctx.txn, ctx.self, "fired", *next);
}

struct Fixture {
  Database db;
  Oid obj;

  explicit Fixture(ClassDef def) {
    EXPECT_TRUE(db.RegisterAction("bump_fired", BumpFired).ok());
    EXPECT_TRUE(db.RegisterClass(std::move(def)).status().ok());
    TxnId t = db.Begin().value();
    obj = db.New(t, "counter").value();
    EXPECT_TRUE(db.Commit(t).ok());
  }

  int64_t Fired() {
    return db.PeekAttr(obj, "fired").value().AsInt().value();
  }
};

// A perpetual before-tcomplete trigger re-fires in every fixpoint round
// (§6's "this process goes on until no triggers fire" never quiesces);
// the engine bounds the rounds and aborts.
TEST(TxnEventsTest, PerpetualTcompleteTriggerTripsRoundBound) {
  ClassDef def = CounterClass();
  def.AddTrigger("T(): perpetual before tcomplete ==> bump_fired");
  Fixture f(std::move(def));
  TxnId t = f.db.Begin().value();
  ODE_ASSERT_OK(f.db.ActivateTrigger(t, f.obj, "T"));
  ODE_ASSERT_OK(f.db.Call(t, f.obj, "bump").status());
  EXPECT_EQ(f.db.Commit(t).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(f.db.txn(t)->state(), TxnState::kAborted);
}

TEST(TxnEventsTest, OrdinaryTcompleteTriggerQuiesces) {
  // "When all this work is done, another before tcomplete event occurs.
  // This process goes on until no triggers fire" (§6). An ordinary trigger
  // deactivates after firing, so round 2 fires nothing.
  ClassDef def = CounterClass();
  def.AddTrigger("T(): before tcomplete ==> bump_fired");
  Fixture f(std::move(def));
  TxnId t = f.db.Begin().value();
  ODE_ASSERT_OK(f.db.ActivateTrigger(t, f.obj, "T"));
  ODE_ASSERT_OK(f.db.Call(t, f.obj, "bump").status());
  uint64_t rounds_before = f.db.stats().tcomplete_rounds;
  ODE_ASSERT_OK(f.db.Commit(t));
  EXPECT_EQ(f.Fired(), 1);
  // Two rounds: one that fired, one that confirmed quiescence.
  EXPECT_EQ(f.db.stats().tcomplete_rounds - rounds_before, 2u);
}

TEST(TxnEventsTest, AfterTcommitRunsInSystemTxn) {
  ClassDef def = CounterClass();
  def.AddTrigger("T(): after tcommit ==> bump_fired");
  Fixture f(std::move(def));
  TxnId t = f.db.Begin().value();
  ODE_ASSERT_OK(f.db.ActivateTrigger(t, f.obj, "T"));
  ODE_ASSERT_OK(f.db.Call(t, f.obj, "bump").status());
  uint64_t sys_before = f.db.stats().system_txns;
  ODE_ASSERT_OK(f.db.Commit(t));
  EXPECT_EQ(f.Fired(), 1);
  EXPECT_GT(f.db.stats().system_txns, sys_before);
  // The action's write survives (its system transaction committed).
  EXPECT_EQ(f.db.PeekAttr(f.obj, "n").value().AsInt().value(), 1);
}

TEST(TxnEventsTest, AfterTabortRunsInSystemTxn) {
  ClassDef def = CounterClass();
  def.AddTrigger("T(): after tabort ==> bump_fired");
  Fixture f(std::move(def));
  // Activate in its own committed transaction — an activation performed by
  // the aborting transaction itself would be rolled back with it.
  TxnId t0 = f.db.Begin().value();
  ODE_ASSERT_OK(f.db.ActivateTrigger(t0, f.obj, "T"));
  ODE_ASSERT_OK(f.db.Commit(t0));

  TxnId t = f.db.Begin().value();
  ODE_ASSERT_OK(f.db.Call(t, f.obj, "bump").status());
  ODE_ASSERT_OK(f.db.Abort(t));
  EXPECT_EQ(f.Fired(), 1);
  // The aborted transaction's bump was rolled back; the trigger action's
  // write (in the system transaction) was not.
  EXPECT_EQ(f.db.PeekAttr(f.obj, "n").value().AsInt().value(), 0);
}

TEST(TxnEventsTest, ActivationByAbortingTxnIsRolledBack) {
  ClassDef def = CounterClass();
  def.AddTrigger("T(): after tabort ==> bump_fired");
  Fixture f(std::move(def));
  TxnId t = f.db.Begin().value();
  ODE_ASSERT_OK(f.db.ActivateTrigger(t, f.obj, "T"));
  ODE_ASSERT_OK(f.db.Abort(t));
  // The activation was an effect of the aborted transaction: by the time
  // `after tabort` posts (from the system transaction), it is gone.
  EXPECT_EQ(f.Fired(), 0);
  EXPECT_FALSE(f.db.TriggerActive(f.obj, "T").value());
}

TEST(TxnEventsTest, BeforeTabortSeesPreRollbackState) {
  // before tabort fires while the transaction's effects are still visible;
  // the action executes in the aborting transaction, so its own writes are
  // rolled back too — the firing is observable, its side effect is not.
  ClassDef def = CounterClass();
  def.AddTrigger("T(): before tabort && n > 0 ==> bump_fired");
  Fixture f(std::move(def));
  TxnId t0 = f.db.Begin().value();
  ODE_ASSERT_OK(f.db.ActivateTrigger(t0, f.obj, "T"));
  ODE_ASSERT_OK(f.db.Commit(t0));

  TxnId t = f.db.Begin().value();
  ODE_ASSERT_OK(f.db.Call(t, f.obj, "bump").status());
  ODE_ASSERT_OK(f.db.Abort(t));
  // n was 1 when before-tabort posted → the mask held and T fired...
  EXPECT_EQ(f.db.FireCount(f.obj, "T"), 1u);
  // ...but both the bump and the action's write were rolled back.
  EXPECT_EQ(f.Fired(), 0);
  EXPECT_EQ(f.db.PeekAttr(f.obj, "n").value().AsInt().value(), 0);
}

TEST(TxnEventsTest, CommitDependencyBlocksThenFollows) {
  Fixture f(CounterClass());
  TxnId t1 = f.db.Begin().value();
  TxnId t2 = f.db.Begin().value();
  ODE_ASSERT_OK(f.db.AddCommitDependency(t2, t1));
  // t2 cannot commit while t1 is active.
  EXPECT_EQ(f.db.Commit(t2).code(), StatusCode::kWouldBlock);
  ODE_ASSERT_OK(f.db.Commit(t1));
  ODE_ASSERT_OK(f.db.Commit(t2));
}

TEST(TxnEventsTest, CommitDependencyAbortCascades) {
  // "if t1 eventually aborts, so must t2" (§7 footnote).
  Fixture f(CounterClass());
  TxnId t1 = f.db.Begin().value();
  TxnId t2 = f.db.Begin().value();
  ODE_ASSERT_OK(f.db.AddCommitDependency(t2, t1));
  ODE_ASSERT_OK(f.db.Abort(t1));
  EXPECT_EQ(f.db.Commit(t2).code(), StatusCode::kAborted);
  EXPECT_EQ(f.db.txn(t2)->state(), TxnState::kAborted);
}

TEST(TxnEventsTest, SelfDependencyRejected) {
  Fixture f(CounterClass());
  TxnId t = f.db.Begin().value();
  EXPECT_EQ(f.db.AddCommitDependency(t, t).code(),
            StatusCode::kInvalidArgument);
}

// §6: committed-view trigger states are part of the object and are
// restored on abort; full-view states are not.
TEST(HistoryViewTest, CommittedViewRollsBackOnAbort) {
  ClassDef def = CounterClass();
  {
    Result<TriggerSpec> spec = ParseTriggerSpec(
        "C(): perpetual choose 2 (after bump) ==> bump_fired");
    ASSERT_TRUE(spec.ok());
    def.AddTrigger(*spec, HistoryView::kCommitted);
  }
  {
    Result<TriggerSpec> spec = ParseTriggerSpec(
        "F(): perpetual choose 2 (after bump) ==> bump_fired");
    ASSERT_TRUE(spec.ok());
    def.AddTrigger(*spec, HistoryView::kFull);
  }
  Fixture f(std::move(def));
  TxnId t0 = f.db.Begin().value();
  ODE_ASSERT_OK(f.db.ActivateTrigger(t0, f.obj, "C"));
  ODE_ASSERT_OK(f.db.ActivateTrigger(t0, f.obj, "F"));
  ODE_ASSERT_OK(f.db.Commit(t0));

  // Transaction A bumps once and aborts: the committed view forgets the
  // bump, the full view remembers it.
  TxnId ta = f.db.Begin().value();
  ODE_ASSERT_OK(f.db.Call(ta, f.obj, "bump").status());
  ODE_ASSERT_OK(f.db.Abort(ta));

  // Transaction B bumps once and commits.
  TxnId tb = f.db.Begin().value();
  ODE_ASSERT_OK(f.db.Call(tb, f.obj, "bump").status());
  ODE_ASSERT_OK(f.db.Commit(tb));

  // Full view: B's bump is the 2nd `after bump` → F fired.
  EXPECT_EQ(f.db.FireCount(f.obj, "F"), 1u);
  // Committed view: B's bump is only the 1st → C did not fire.
  EXPECT_EQ(f.db.FireCount(f.obj, "C"), 0u);

  // One more committed bump trips C.
  TxnId tc = f.db.Begin().value();
  ODE_ASSERT_OK(f.db.Call(tc, f.obj, "bump").status());
  ODE_ASSERT_OK(f.db.Commit(tc));
  EXPECT_EQ(f.db.FireCount(f.obj, "C"), 1u);
}

// The §6 Claim, engine-level: a committed-view trigger (state in the
// object) and the A′-transform trigger (state outside, pair construction)
// fire identically across aborts.
TEST(HistoryViewTest, TransformMatchesCommittedView) {
  ClassDef def = CounterClass();
  {
    Result<TriggerSpec> spec = ParseTriggerSpec(
        "C(): perpetual choose 3 (after bump) ==> bump_fired");
    ASSERT_TRUE(spec.ok());
    def.AddTrigger(*spec, HistoryView::kCommitted);
  }
  {
    Result<TriggerSpec> spec = ParseTriggerSpec(
        "X(): perpetual choose 3 (after bump) ==> bump_fired");
    ASSERT_TRUE(spec.ok());
    def.AddTrigger(*spec, HistoryView::kCommittedViaTransform);
  }
  Fixture f(std::move(def));
  TxnId t0 = f.db.Begin().value();
  ODE_ASSERT_OK(f.db.ActivateTrigger(t0, f.obj, "C"));
  ODE_ASSERT_OK(f.db.ActivateTrigger(t0, f.obj, "X"));
  ODE_ASSERT_OK(f.db.Commit(t0));

  // Deterministic mix of committing and aborting transactions.
  std::vector<std::pair<int, bool>> script = {
      {1, true}, {2, false}, {1, true}, {1, false}, {1, true}, {2, true}};
  for (auto [bumps, commit] : script) {
    TxnId t = f.db.Begin().value();
    for (int i = 0; i < bumps; ++i) {
      ODE_ASSERT_OK(f.db.Call(t, f.obj, "bump").status());
    }
    if (commit) {
      ODE_ASSERT_OK(f.db.Commit(t));
    } else {
      ODE_ASSERT_OK(f.db.Abort(t));
    }
    EXPECT_EQ(f.db.FireCount(f.obj, "C"), f.db.FireCount(f.obj, "X"))
        << "after txn with bumps=" << bumps << " commit=" << commit;
  }
  EXPECT_GT(f.db.FireCount(f.obj, "C"), 0u);
}


TEST(TxnEventsTest, DeferredTriggerAbortsTheCommit) {
  // A before-tcomplete trigger whose action is tabort: the commit attempt
  // turns into an abort (the §6 loop never completes).
  ClassDef def = CounterClass();
  def.AddTrigger("Veto(): relative(after bump, before tcomplete) ==> tabort");
  Fixture f(std::move(def));
  TxnId t0 = f.db.Begin().value();
  ODE_ASSERT_OK(f.db.ActivateTrigger(t0, f.obj, "Veto"));
  ODE_ASSERT_OK(f.db.Commit(t0));

  TxnId t = f.db.Begin().value();
  ODE_ASSERT_OK(f.db.Call(t, f.obj, "bump").status());
  EXPECT_EQ(f.db.Commit(t).code(), StatusCode::kAborted);
  EXPECT_EQ(f.db.txn(t)->state(), TxnState::kAborted);
  // The bump was rolled back.
  EXPECT_EQ(f.db.PeekAttr(f.obj, "n").value().AsInt().value(), 0);
}

TEST(TxnEventsTest, ClockBlockedByConflictingTransaction) {
  // A timer firing must lock the object; a user transaction holding the
  // lock surfaces as WouldBlock from AdvanceClock.
  ClassDef def = CounterClass();
  def.AddTrigger("D(): perpetual at time(HR=1) ==> bump_fired");
  Fixture f(std::move(def));
  TxnId t0 = f.db.Begin().value();
  ODE_ASSERT_OK(f.db.ActivateTrigger(t0, f.obj, "D"));
  ODE_ASSERT_OK(f.db.Commit(t0));

  TxnId t = f.db.Begin().value();
  ODE_ASSERT_OK(f.db.Call(t, f.obj, "bump").status());  // X lock held.
  EXPECT_EQ(f.db.AdvanceClock(2 * 3600 * 1000).code(),
            StatusCode::kWouldBlock);
  ODE_ASSERT_OK(f.db.Commit(t));
  // After the lock is gone the timer fires on the next advance.
  ODE_ASSERT_OK(f.db.AdvanceClock(1));
  EXPECT_EQ(f.db.FireCount(f.obj, "D"), 1u);
}

}  // namespace
}  // namespace ode
