#include "ode/database.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ode {
namespace {

ClassDef AccountClass() {
  ClassDef def("account");
  def.AddAttr("balance", Value(0));
  def.AddMethod(MethodDef{
      "deposit",
      {{"int", "amount"}},
      MethodKind::kUpdate,
      [](MethodContext* ctx) -> Status {
        ODE_ASSIGN_OR_RETURN(Value balance, ctx->Get("balance"));
        ODE_ASSIGN_OR_RETURN(Value amount, ctx->Arg("amount"));
        ODE_ASSIGN_OR_RETURN(Value sum, balance.Add(amount));
        return ctx->Set("balance", sum);
      }});
  def.AddMethod(MethodDef{
      "read_balance",
      {},
      MethodKind::kReadOnly,
      [](MethodContext* ctx) -> Status {
        ODE_ASSIGN_OR_RETURN(Value balance, ctx->Get("balance"));
        ctx->SetResult(balance);
        return Status::OK();
      }});
  return def;
}

TEST(DatabaseTest, CreateWithDefaultsAndInit) {
  Database db;
  ODE_ASSERT_OK(db.RegisterClass(AccountClass()).status());
  TxnId t = db.Begin().value();
  Oid a = db.New(t, "account").value();
  Oid b = db.New(t, "account", {{"balance", Value(100)}}).value();
  EXPECT_EQ(db.PeekAttr(a, "balance").value().AsInt().value(), 0);
  EXPECT_EQ(db.PeekAttr(b, "balance").value().AsInt().value(), 100);
  EXPECT_NE(a, b);
  ODE_ASSERT_OK(db.Commit(t));
}

// Commit's out-parameter separates "rolled back" from "committed but the
// after-tcommit system transaction failed" — callers that replay on
// failure (the ingest shards) must not replay the latter.
TEST(DatabaseTest, CommitOutcomeDistinguishesEpilogueFailure) {
  bool armed = false;
  ClassDef def = AccountClass();
  def.AddTrigger("E(): perpetual after tcommit ==> boom");
  Database db;
  ODE_ASSERT_OK(db.RegisterAction(
      "boom", [&armed](const ActionContext&) -> Status {
        return armed ? Status::Internal("epilogue action failure")
                     : Status::OK();
      }));
  ODE_ASSERT_OK(db.RegisterClass(std::move(def)).status());

  Oid a;
  {
    TxnId t = db.Begin().value();
    a = db.New(t, "account").value();
    ODE_ASSERT_OK(db.ActivateTrigger(t, a, "E"));
    Database::CommitOutcome outcome = Database::CommitOutcome::kNotCommitted;
    ODE_ASSERT_OK(db.Commit(t, &outcome));
    EXPECT_EQ(outcome, Database::CommitOutcome::kCommitted);
  }

  // A commit that never happens reports kNotCommitted.
  {
    TxnId dep = db.Begin().value();
    TxnId t = db.Begin().value();
    ODE_ASSERT_OK(db.AddCommitDependency(t, dep));
    ODE_ASSERT_OK(db.Abort(dep));
    Database::CommitOutcome outcome = Database::CommitOutcome::kCommitted;
    EXPECT_EQ(db.Commit(t, &outcome).code(), StatusCode::kAborted);
    EXPECT_EQ(outcome, Database::CommitOutcome::kNotCommitted);
  }

  // Armed: the user transaction commits (its write survives) even though
  // the epilogue's posting fails.
  armed = true;
  TxnId t = db.Begin().value();
  ODE_ASSERT_OK(db.Call(t, a, "deposit", {Value(7)}).status());
  Database::CommitOutcome outcome = Database::CommitOutcome::kNotCommitted;
  Status s = db.Commit(t, &outcome);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(outcome, Database::CommitOutcome::kEpilogueFailed);
  EXPECT_EQ(db.PeekAttr(a, "balance").value().AsInt().value(), 7);
}

TEST(DatabaseTest, UnknownClassAndAttrRejected) {
  Database db;
  ODE_ASSERT_OK(db.RegisterClass(AccountClass()).status());
  TxnId t = db.Begin().value();
  EXPECT_EQ(db.New(t, "nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(db.New(t, "account", {{"bogus", Value(1)}}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DatabaseTest, MethodBodyMutatesThroughTxn) {
  Database db;
  ODE_ASSERT_OK(db.RegisterClass(AccountClass()).status());
  TxnId t = db.Begin().value();
  Oid a = db.New(t, "account").value();
  ODE_ASSERT_OK(db.Call(t, a, "deposit", {Value(40)}).status());
  ODE_ASSERT_OK(db.Call(t, a, "deposit", {Value(2)}).status());
  EXPECT_EQ(db.Call(t, a, "read_balance").value().AsInt().value(), 42);
  ODE_ASSERT_OK(db.Commit(t));
  EXPECT_EQ(db.PeekAttr(a, "balance").value().AsInt().value(), 42);
}

TEST(DatabaseTest, MethodArityChecked) {
  Database db;
  ODE_ASSERT_OK(db.RegisterClass(AccountClass()).status());
  TxnId t = db.Begin().value();
  Oid a = db.New(t, "account").value();
  EXPECT_EQ(db.Call(t, a, "deposit").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.Call(t, a, "nope").status().code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, AbortRestoresAttributes) {
  Database db;
  ODE_ASSERT_OK(db.RegisterClass(AccountClass()).status());
  TxnId t1 = db.Begin().value();
  Oid a = db.New(t1, "account", {{"balance", Value(10)}}).value();
  ODE_ASSERT_OK(db.Commit(t1));

  TxnId t2 = db.Begin().value();
  ODE_ASSERT_OK(db.Call(t2, a, "deposit", {Value(99)}).status());
  EXPECT_EQ(db.PeekAttr(a, "balance").value().AsInt().value(), 109);
  ODE_ASSERT_OK(db.Abort(t2));
  EXPECT_EQ(db.PeekAttr(a, "balance").value().AsInt().value(), 10);
}

TEST(DatabaseTest, AbortRemovesCreatedObjects) {
  Database db;
  ODE_ASSERT_OK(db.RegisterClass(AccountClass()).status());
  TxnId t = db.Begin().value();
  Oid a = db.New(t, "account").value();
  EXPECT_TRUE(db.Exists(a));
  ODE_ASSERT_OK(db.Abort(t));
  EXPECT_FALSE(db.Exists(a));
}

TEST(DatabaseTest, AbortRestoresDeletedObjects) {
  Database db;
  ODE_ASSERT_OK(db.RegisterClass(AccountClass()).status());
  TxnId t1 = db.Begin().value();
  Oid a = db.New(t1, "account", {{"balance", Value(5)}}).value();
  ODE_ASSERT_OK(db.Commit(t1));

  TxnId t2 = db.Begin().value();
  ODE_ASSERT_OK(db.Delete(t2, a));
  EXPECT_FALSE(db.Exists(a));
  ODE_ASSERT_OK(db.Abort(t2));
  ASSERT_TRUE(db.Exists(a));
  EXPECT_EQ(db.PeekAttr(a, "balance").value().AsInt().value(), 5);
}

TEST(DatabaseTest, CommittedDeleteIsPermanent) {
  Database db;
  ODE_ASSERT_OK(db.RegisterClass(AccountClass()).status());
  TxnId t1 = db.Begin().value();
  Oid a = db.New(t1, "account").value();
  ODE_ASSERT_OK(db.Commit(t1));
  TxnId t2 = db.Begin().value();
  ODE_ASSERT_OK(db.Delete(t2, a));
  ODE_ASSERT_OK(db.Commit(t2));
  EXPECT_FALSE(db.Exists(a));
  EXPECT_EQ(db.Call(db.Begin().value(), a, "deposit", {Value(1)})
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(DatabaseTest, FinishedTxnsRejectOperations) {
  Database db;
  ODE_ASSERT_OK(db.RegisterClass(AccountClass()).status());
  TxnId t = db.Begin().value();
  Oid a = db.New(t, "account").value();
  ODE_ASSERT_OK(db.Commit(t));
  EXPECT_EQ(db.Call(t, a, "deposit", {Value(1)}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(db.Commit(t).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(db.Abort(t).code(), StatusCode::kFailedPrecondition);
}

TEST(DatabaseTest, LazyTbeginPosting) {
  // §3.1: after tbegin is posted only immediately before the first access.
  Database db;
  ODE_ASSERT_OK(db.RegisterClass(AccountClass()).status());
  TxnId t1 = db.Begin().value();
  Oid a = db.New(t1, "account").value();
  ODE_ASSERT_OK(db.Commit(t1));

  TxnId t2 = db.Begin().value();
  ODE_ASSERT_OK(db.Call(t2, a, "deposit", {Value(1)}).status());
  ODE_ASSERT_OK(db.Call(t2, a, "deposit", {Value(1)}).status());
  ODE_ASSERT_OK(db.Commit(t2));

  const EventHistory* h = db.history(a);
  ASSERT_NE(h, nullptr);
  int tbegin_count = 0;
  for (const PostedEvent& e : h->events()) {
    if (e.kind == BasicEventKind::kTbegin && e.txn == t2) ++tbegin_count;
  }
  EXPECT_EQ(tbegin_count, 1);  // Once per transaction, not per access.
}

TEST(DatabaseTest, EventOrderAroundMethod) {
  Database db;
  ODE_ASSERT_OK(db.RegisterClass(AccountClass()).status());
  TxnId t = db.Begin().value();
  Oid a = db.New(t, "account").value();
  ODE_ASSERT_OK(db.Call(t, a, "deposit", {Value(1)}).status());

  const EventHistory* h = db.history(a);
  ASSERT_NE(h, nullptr);
  // after tbegin, after create, then the deposit's seven events.
  std::vector<std::string> got;
  for (const PostedEvent& e : h->events()) {
    std::string tag(EventQualifierName(e.qualifier));
    tag += " ";
    tag += e.kind == BasicEventKind::kMethod
               ? e.method_name
               : std::string(BasicEventKindName(e.kind));
    got.push_back(tag);
  }
  std::vector<std::string> want = {
      "after tbegin", "after create",
      "before deposit", "before access", "before update",
      "after update", "after access", "after deposit"};
  EXPECT_EQ(got, want);
}

TEST(DatabaseTest, ReadOnlyMethodPostsReadEvents) {
  Database db;
  ODE_ASSERT_OK(db.RegisterClass(AccountClass()).status());
  TxnId t = db.Begin().value();
  Oid a = db.New(t, "account").value();
  ODE_ASSERT_OK(db.Call(t, a, "read_balance").status());
  const EventHistory* h = db.history(a);
  bool saw_read = false, saw_update_from_read = false;
  for (const PostedEvent& e : h->events()) {
    if (e.kind == BasicEventKind::kRead) saw_read = true;
    if (e.kind == BasicEventKind::kUpdate) saw_update_from_read = true;
  }
  EXPECT_TRUE(saw_read);
  EXPECT_FALSE(saw_update_from_read);
}

TEST(DatabaseTest, PostingPolicySuppressesCategories) {
  ClassDef def("quiet");
  def.AddAttr("x", Value(0));
  def.AddMethod(MethodDef{"touch", {}, MethodKind::kUpdate, nullptr});
  EventPostingPolicy policy;
  policy.method_events = false;
  policy.read_update_events = false;
  def.SetPostingPolicy(policy);

  Database db;
  ODE_ASSERT_OK(db.RegisterClass(std::move(def)).status());
  TxnId t = db.Begin().value();
  Oid a = db.New(t, "quiet").value();
  ODE_ASSERT_OK(db.Call(t, a, "touch").status());
  const EventHistory* h = db.history(a);
  for (const PostedEvent& e : h->events()) {
    EXPECT_NE(e.kind, BasicEventKind::kMethod);
    EXPECT_NE(e.kind, BasicEventKind::kUpdate);
  }
}

TEST(DatabaseTest, LockConflictSurfacesAsWouldBlock) {
  Database db;
  ODE_ASSERT_OK(db.RegisterClass(AccountClass()).status());
  TxnId t1 = db.Begin().value();
  Oid a = db.New(t1, "account").value();
  ODE_ASSERT_OK(db.Commit(t1));

  TxnId t2 = db.Begin().value();
  TxnId t3 = db.Begin().value();
  ODE_ASSERT_OK(db.Call(t2, a, "deposit", {Value(1)}).status());
  EXPECT_EQ(db.Call(t3, a, "deposit", {Value(1)}).status().code(),
            StatusCode::kWouldBlock);
  // Readers also blocked by the writer.
  EXPECT_EQ(db.Call(t3, a, "read_balance").status().code(),
            StatusCode::kWouldBlock);
  ODE_ASSERT_OK(db.Commit(t2));
  ODE_ASSERT_OK(db.Call(t3, a, "deposit", {Value(1)}).status());
  ODE_ASSERT_OK(db.Commit(t3));
}

TEST(DatabaseTest, SharedReadersThenUpgradeConflict) {
  Database db;
  ODE_ASSERT_OK(db.RegisterClass(AccountClass()).status());
  TxnId t1 = db.Begin().value();
  Oid a = db.New(t1, "account").value();
  ODE_ASSERT_OK(db.Commit(t1));

  TxnId t2 = db.Begin().value();
  TxnId t3 = db.Begin().value();
  ODE_ASSERT_OK(db.Call(t2, a, "read_balance").status());
  ODE_ASSERT_OK(db.Call(t3, a, "read_balance").status());
  EXPECT_EQ(db.Call(t2, a, "deposit", {Value(1)}).status().code(),
            StatusCode::kWouldBlock);
  ODE_ASSERT_OK(db.Commit(t3));
  ODE_ASSERT_OK(db.Call(t2, a, "deposit", {Value(1)}).status());
  ODE_ASSERT_OK(db.Commit(t2));
}

TEST(DatabaseTest, StatsCount) {
  Database db;
  ODE_ASSERT_OK(db.RegisterClass(AccountClass()).status());
  TxnId t = db.Begin().value();
  Oid a = db.New(t, "account").value();
  ODE_ASSERT_OK(db.Call(t, a, "deposit", {Value(1)}).status());
  ODE_ASSERT_OK(db.Commit(t));
  EXPECT_GT(db.stats().events_posted, 0u);
  EXPECT_GT(db.stats().system_txns, 0u);
  EXPECT_EQ(db.txns().num_committed(), 1u);  // User commits only.
}


TEST(DatabaseTest, MethodBodyErrorPropagatesWithoutAutoAbort) {
  // A body failure is the caller's decision to handle: the transaction
  // stays active (only trigger-requested aborts auto-abort). The before
  // events were posted; the after events were not.
  ClassDef def("fragile");
  def.AddAttr("x", Value(0));
  def.AddMethod(MethodDef{"boom",
                          {},
                          MethodKind::kUpdate,
                          [](MethodContext*) -> Status {
                            return Status::InvalidArgument("body failed");
                          }});
  Database db;
  ODE_ASSERT_OK(db.RegisterClass(std::move(def)).status());
  TxnId t = db.Begin().value();
  Oid obj = db.New(t, "fragile").value();
  EXPECT_EQ(db.Call(t, obj, "boom").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.txn(t)->state(), TxnState::kActive);
  const EventHistory* h = db.history(obj);
  bool saw_before = false, saw_after = false;
  for (const PostedEvent& e : h->events()) {
    if (e.kind == BasicEventKind::kMethod && e.method_name == "boom") {
      if (e.qualifier == EventQualifier::kBefore) saw_before = true;
      if (e.qualifier == EventQualifier::kAfter) saw_after = true;
    }
  }
  EXPECT_TRUE(saw_before);
  EXPECT_FALSE(saw_after);
  // The caller can still roll everything back.
  ODE_ASSERT_OK(db.Abort(t));
  EXPECT_FALSE(db.Exists(obj));
}

TEST(DatabaseTest, HistoriesDisabledOption) {
  DatabaseOptions opts;
  opts.record_histories = false;
  Database db(opts);
  ODE_ASSERT_OK(db.RegisterClass(AccountClass()).status());
  TxnId t = db.Begin().value();
  Oid a = db.New(t, "account").value();
  ODE_ASSERT_OK(db.Call(t, a, "deposit", {Value(1)}).status());
  ODE_ASSERT_OK(db.Commit(t));
  EXPECT_EQ(db.history(a), nullptr);  // Nothing recorded...
  EXPECT_GT(db.stats().events_posted, 0u);  // ...but events were posted.
}

}  // namespace
}  // namespace ode
