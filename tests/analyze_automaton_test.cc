// Layer-2 automaton checks (analyze/automaton_check.h), the cost model
// (analyze/cost.h), and the whole-source analyzer (analyze/analyzer.h):
// A001 emptiness, A002 universality, A003 liveness, A004/A005 pairwise,
// C001 budgets, P001 parse errors.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analyze/analyzer.h"
#include "analyze/automaton_check.h"
#include "lang/event_parser.h"

namespace ode {
namespace {

TriggerAnalysis Analyze(const std::string& source,
                        AnalyzeOptions options = {}) {
  Result<TriggerSpec> spec = ParseTriggerSpec(source);
  EXPECT_TRUE(spec.ok()) << source << ": " << spec.status().ToString();
  if (!spec.ok()) return {};
  return AnalyzeTrigger(*spec, options);
}

const Diagnostic* Find(const std::vector<Diagnostic>& diags,
                       std::string_view id) {
  for (const Diagnostic& d : diags) {
    if (d.id == id) return &d;
  }
  return nullptr;
}

TEST(AutomatonCheckTest, A001SimultaneousDistinctAtomsNeverOccur) {
  // `after a & after b` requires one event to be both — empty language.
  TriggerAnalysis ta = Analyze("t(): after a & after b ==> x");
  EXPECT_TRUE(ta.never_fires);
  const Diagnostic* d = Find(ta.diagnostics, "A001");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
}

TEST(AutomatonCheckTest, A001NeverTrueMaskEmptiesTheLanguage) {
  // The mask's micro-symbol can never be realized, so the automaton's
  // accepting states become unreachable over the possible symbols.
  TriggerAnalysis ta =
      Analyze("t(): after w(q) && q > 9 && q < 1 ==> x");
  EXPECT_TRUE(ta.never_fires);
  EXPECT_NE(Find(ta.diagnostics, "A001"), nullptr);
  EXPECT_NE(Find(ta.diagnostics, "L001"), nullptr);  // Layer 1 agrees.
}

TEST(AutomatonCheckTest, A002UniversalLanguage) {
  TriggerAnalysis ta = Analyze("t(): after a | !after a ==> x");
  EXPECT_TRUE(ta.always_fires);
  const Diagnostic* d = Find(ta.diagnostics, "A002");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
}

TEST(AutomatonCheckTest, A002MaskGatedUniversalIsCalledOut) {
  // The event part is universal; only the root composite mask gates
  // firing. Flagged with the mask-specific wording, not always_fires.
  TriggerAnalysis ta =
      Analyze("t(): (after a | !after a) && q > 0 ==> x");
  EXPECT_FALSE(ta.always_fires);
  const Diagnostic* d = Find(ta.diagnostics, "A002");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("composite mask"), std::string::npos)
      << d->message;
}

TEST(AutomatonCheckTest, CleanTriggerHasNoAutomatonFindings) {
  TriggerAnalysis ta = Analyze("t(): sequence(after a, after b) ==> x");
  EXPECT_FALSE(ta.never_fires);
  EXPECT_FALSE(ta.always_fires);
  EXPECT_EQ(Find(ta.diagnostics, "A001"), nullptr);
  EXPECT_EQ(Find(ta.diagnostics, "A002"), nullptr);
}

TEST(AutomatonCheckTest, AnalyzeStatesFindsDeadAndUnreachable) {
  // Hand-built 4-state DFA over {0,1}: state 2 is a non-accepting sink
  // (dead); state 3 is unreachable.
  Dfa dfa(2, 4);
  dfa.SetStart(0);
  dfa.SetStep(0, 0, 1);
  dfa.SetStep(0, 1, 2);
  dfa.SetStep(1, 0, 1);
  dfa.SetStep(1, 1, 2);
  dfa.SetStep(2, 0, 2);
  dfa.SetStep(2, 1, 2);
  dfa.SetStep(3, 0, 0);
  dfa.SetStep(3, 1, 0);
  dfa.SetAccepting(1, true);
  StateReport report = AnalyzeStates(dfa, {true, true});
  EXPECT_EQ(report.total, 4u);
  EXPECT_EQ(report.unreachable, 1u);  // State 3.
  EXPECT_EQ(report.dead, 1u);         // State 2.
}

TEST(CostTest, ReportsBasicShape) {
  Result<TriggerSpec> spec =
      ParseTriggerSpec("t(): sequence(after a, after b) ==> x");
  ASSERT_TRUE(spec.ok());
  Result<CompiledEvent> compiled = CompileEvent(spec->event, {});
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  CostReport cost = EstimateCost(*compiled);
  EXPECT_GT(cost.dfa_states, 0u);
  EXPECT_EQ(cost.alphabet_size, 3u);  // a, b, OTHER.
  EXPECT_EQ(cost.num_gates, 0u);
  EXPECT_EQ(cost.steps_per_event, 1u);
  EXPECT_GT(cost.table_bytes, 0u);
  EXPECT_FALSE(cost.ToString().empty());
}

TEST(CostTest, C001FiresOverBudget) {
  AnalyzeOptions options;
  options.budget_dfa_states = 1;
  TriggerAnalysis ta =
      Analyze("t(): sequence(after a, after b) ==> x", options);
  const Diagnostic* d = Find(ta.diagnostics, "C001");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
}

TEST(CompareTest, CommutedOrIsEquivalent) {
  Result<EventExprPtr> a = ParseEvent("after a | after b");
  Result<EventExprPtr> b = ParseEvent("after b | after a");
  ASSERT_TRUE(a.ok() && b.ok());
  Result<PairRelation> rel = CompareEventExprs(*a, *b, {});
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_EQ(*rel, PairRelation::kEquivalent);
}

TEST(CompareTest, SubsumptionBothDirections) {
  Result<EventExprPtr> big = ParseEvent("after a | after b");
  Result<EventExprPtr> small = ParseEvent("after a");
  ASSERT_TRUE(big.ok() && small.ok());
  Result<PairRelation> rel = CompareEventExprs(*big, *small, {});
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(*rel, PairRelation::kASubsumesB);
  rel = CompareEventExprs(*small, *big, {});
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(*rel, PairRelation::kBSubsumesA);
}

TEST(CompareTest, DistinctExpressions) {
  Result<EventExprPtr> a = ParseEvent("after a");
  Result<EventExprPtr> b = ParseEvent("after b");
  ASSERT_TRUE(a.ok() && b.ok());
  Result<PairRelation> rel = CompareEventExprs(*a, *b, {});
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(*rel, PairRelation::kDistinct);
}

TEST(CompareTest, RootMaskImplicationProvesSubsumption) {
  // The masked trigger's firings are a subset of the unmasked one's:
  // `q > 0` entails the empty mask set (`true`), so the solver upgrades
  // what used to be kIncomparable into containment.
  Result<EventExprPtr> a = ParseEvent("(after a | after b) && q > 0");
  Result<EventExprPtr> b = ParseEvent("after a | after b");
  ASSERT_TRUE(a.ok() && b.ok());
  Result<PairComparison> cmp = CompareEventExprsDetailed(*a, *b, {});
  ASSERT_TRUE(cmp.ok());
  EXPECT_EQ(cmp->relation, PairRelation::kBSubsumesA);
  EXPECT_TRUE(cmp->via_mask_implication);
}

TEST(CompareTest, UnrelatedRootMasksAreIncomparable) {
  // Neither `q > 0` nor `p > 0` entails the other: run-time state the
  // analyzer cannot see still makes the pair incomparable.
  Result<EventExprPtr> a = ParseEvent("(after a | after b) && q > 0");
  Result<EventExprPtr> b = ParseEvent("(after a | after b) && p > 0");
  ASSERT_TRUE(a.ok() && b.ok());
  Result<PairRelation> rel = CompareEventExprs(*a, *b, {});
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(*rel, PairRelation::kIncomparable);
}

TEST(CompareTest, StrongerRootMaskSubsumes) {
  // `q > 100` entails `q > 50`: equal cores, strictly narrower gate.
  Result<EventExprPtr> a = ParseEvent("(after a | after b) && q > 100");
  Result<EventExprPtr> b = ParseEvent("(after a | after b) && q > 50");
  ASSERT_TRUE(a.ok() && b.ok());
  Result<PairComparison> cmp = CompareEventExprsDetailed(*a, *b, {});
  ASSERT_TRUE(cmp.ok());
  EXPECT_EQ(cmp->relation, PairRelation::kBSubsumesA);
  EXPECT_TRUE(cmp->via_mask_implication);
}

TEST(CompareTest, SameRootMasksCompare) {
  Result<EventExprPtr> a = ParseEvent("(after a | after b) && q > 0");
  Result<EventExprPtr> b = ParseEvent("(after b | after a) && q > 0");
  ASSERT_TRUE(a.ok() && b.ok());
  Result<PairRelation> rel = CompareEventExprs(*a, *b, {});
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(*rel, PairRelation::kEquivalent);
}

TEST(AnalyzeSourceTest, PairwiseDuplicateAndSubsumption) {
  const std::string src =
      "first(): after a | after b ==> log\n"
      "\n"
      "second(): after b | after a ==> log\n"
      "\n"
      "third(): after a ==> log\n";
  AnalysisReport report = AnalyzeSpecSource(src);
  ASSERT_EQ(report.triggers.size(), 3u);
  const Diagnostic* dup = Find(report.file_diagnostics, "A004");
  ASSERT_NE(dup, nullptr);
  EXPECT_EQ(dup->trigger, "second");
  EXPECT_NE(dup->message.find("duplicate"), std::string::npos)
      << dup->message;
  // The duplicate's span points at the second trigger's event expression.
  EXPECT_EQ(src.substr(dup->span.begin, dup->span.size()),
            "after b | after a");

  const Diagnostic* sub = Find(report.file_diagnostics, "A005");
  ASSERT_NE(sub, nullptr);
  EXPECT_EQ(sub->trigger, "third");
  EXPECT_EQ(src.substr(sub->span.begin, sub->span.size()), "after a");
}

TEST(AnalyzeSourceTest, P001ParseFailureCarriesLine) {
  const std::string src =
      "good(): after a ==> log\n"
      "\n"
      "bad(): after ( ==> log\n";
  AnalysisReport report = AnalyzeSpecSource(src);
  EXPECT_EQ(report.triggers.size(), 1u);
  const Diagnostic* d = Find(report.file_diagnostics, "P001");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("line 3"), std::string::npos) << d->message;
  EXPECT_TRUE(report.has_errors());
}

TEST(AnalyzeSourceTest, EmptyLanguageTriggerSkipsPairwise) {
  // `never` is contained in everything vacuously; A001 already says it
  // all, so no A004/A005 should mention it.
  const std::string src =
      "never(): after a & after b ==> log\n"
      "\n"
      "real(): after a ==> log\n";
  AnalysisReport report = AnalyzeSpecSource(src);
  ASSERT_EQ(report.triggers.size(), 2u);
  EXPECT_TRUE(report.triggers[0].never_fires);
  EXPECT_EQ(Find(report.file_diagnostics, "A004"), nullptr);
  EXPECT_EQ(Find(report.file_diagnostics, "A005"), nullptr);
}

TEST(AnalyzeSourceTest, SpansAreFileAccurateAcrossBlocks) {
  const std::string src =
      "ok(): after a ==> log\n"
      "\n"
      "dead(): after w(q) && q > 9 && q < 1 ==> log\n";
  AnalysisReport report = AnalyzeSpecSource(src);
  ASSERT_EQ(report.triggers.size(), 2u);
  const Diagnostic* d = Find(report.triggers[1].diagnostics, "L001");
  ASSERT_NE(d, nullptr);
  // The span indexes into the whole file, not the block.
  EXPECT_EQ(src.substr(d->span.begin, d->span.size()), "q > 9 && q < 1");
}

}  // namespace
}  // namespace ode
