#include "common/value.h"

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"

namespace ode {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacroDeclares) {
  auto helper = []() -> Result<int> {
    ODE_ASSIGN_OR_RETURN(int v, Result<int>(5));
    ODE_ASSIGN_OR_RETURN(int w, Result<int>(7));
    return v + w;
  };
  Result<int> r = helper();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 12);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto helper = []() -> Result<int> {
    ODE_ASSIGN_OR_RETURN(int v, Result<int>(Status::Aborted("x")));
    return v;
  };
  EXPECT_EQ(helper().status().code(), StatusCode::kAborted);
}

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_EQ(Value().kind(), ValueKind::kNull);
  EXPECT_EQ(Value(3).kind(), ValueKind::kInt);
  EXPECT_EQ(Value(3.5).kind(), ValueKind::kDouble);
  EXPECT_EQ(Value(true).kind(), ValueKind::kBool);
  EXPECT_EQ(Value("hi").kind(), ValueKind::kString);
  EXPECT_EQ(Value(Oid{7}).kind(), ValueKind::kOid);

  EXPECT_EQ(Value(3).AsInt().value(), 3);
  EXPECT_EQ(Value(3).AsDouble().value(), 3.0);  // Int promotes.
  EXPECT_FALSE(Value(3.5).AsInt().ok());        // Double does not demote.
  EXPECT_EQ(Value("hi").AsString().value(), "hi");
  EXPECT_EQ(Value(Oid{7}).AsOid().value().id, 7u);
}

TEST(ValueTest, Truthiness) {
  EXPECT_FALSE(Value().Truthy());
  EXPECT_FALSE(Value(0).Truthy());
  EXPECT_TRUE(Value(-2).Truthy());
  EXPECT_FALSE(Value(0.0).Truthy());
  EXPECT_TRUE(Value(0.1).Truthy());
  EXPECT_FALSE(Value(false).Truthy());
  EXPECT_FALSE(Value("").Truthy());
  EXPECT_TRUE(Value("x").Truthy());
  EXPECT_FALSE(Value(kNullOid).Truthy());
  EXPECT_TRUE(Value(Oid{1}).Truthy());
}

TEST(ValueTest, NumericEqualityCrossesKinds) {
  EXPECT_TRUE(Value(2).Equals(Value(2.0)));
  EXPECT_FALSE(Value(2).Equals(Value(2.5)));
  EXPECT_FALSE(Value(1).Equals(Value(true)));  // Bool is not numeric.
}

TEST(ValueTest, CompareNumericAndString) {
  EXPECT_EQ(Value(1).Compare(Value(2.0)).value(), -1);
  EXPECT_EQ(Value(2.0).Compare(Value(2)).value(), 0);
  EXPECT_EQ(Value("b").Compare(Value("a")).value(), 1);
  EXPECT_FALSE(Value("a").Compare(Value(1)).ok());
}

TEST(ValueTest, ArithmeticPromotion) {
  EXPECT_EQ(Value(2).Add(Value(3)).value().AsInt().value(), 5);
  EXPECT_EQ(Value(2).Add(Value(0.5)).value().AsDouble().value(), 2.5);
  EXPECT_EQ(Value("a").Add(Value("b")).value().AsString().value(), "ab");
  EXPECT_FALSE(Value("a").Add(Value(1)).ok());
  EXPECT_EQ(Value(7).Mod(Value(3)).value().AsInt().value(), 1);
  EXPECT_FALSE(Value(7.0).Mod(Value(3)).ok());
}

TEST(ValueTest, DivisionByZeroIsError) {
  EXPECT_FALSE(Value(1).Div(Value(0)).ok());
  EXPECT_FALSE(Value(1.0).Div(Value(0.0)).ok());
  EXPECT_FALSE(Value(1).Mod(Value(0)).ok());
  EXPECT_EQ(Value(7).Div(Value(2)).value().AsInt().value(), 3);
}

TEST(ValueTest, Negation) {
  EXPECT_EQ(Value(3).Neg().value().AsInt().value(), -3);
  EXPECT_EQ(Value(2.5).Neg().value().AsDouble().value(), -2.5);
  EXPECT_FALSE(Value("x").Neg().ok());
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value().ToString(), "null");
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value("hi").ToString(), "\"hi\"");
  EXPECT_EQ(Value(Oid{17}).ToString(), "@17");
  EXPECT_EQ(Value(500.0).ToString(), "500.0");
}

}  // namespace
}  // namespace ode
