// Executable checks of the paper's §3.4 and §4 worked examples, evaluated
// through the denotational oracle (experiment E11). The automaton/oracle
// agreement is covered separately by equivalence_property_test.cc.
#include "semantics/oracle.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ode {
namespace {

using testing_util::ParseOrDie;

/// Oracle harness over method events with the compiler's alphabet.
class OracleExpr {
 public:
  explicit OracleExpr(std::string_view text)
      : expr_(ParseOrDie(text)),
        alphabet_(Alphabet::Build(*expr_).value()),
        oracle_(expr_, &alphabet_) {}

  SymbolId Sym(char method, char qual) {
    PostedEvent e = MakePostedMethod(
        qual == '+' ? EventQualifier::kAfter : EventQualifier::kBefore,
        std::string(1, method));
    return alphabet_
        .Classify(e,
                  [](const MaskSlot&, const PostedEvent&) -> Result<bool> {
                    return Status::Internal("mask-free");
                  })
        .value();
  }

  std::vector<bool> Run(std::string_view history) {
    std::vector<SymbolId> syms;
    for (size_t i = 0; i < history.size();) {
      if (history[i] == '.') {
        syms.push_back(alphabet_.other_symbol());
        ++i;
      } else {
        syms.push_back(Sym(history[i], history[i + 1]));
        i += 2;
      }
    }
    return oracle_.OccurrencePoints(syms).value();
  }

  bool AtEnd(std::string_view history) {
    std::vector<bool> marks = Run(history);
    return !marks.empty() && marks.back();
  }

 private:
  EventExprPtr expr_;
  Alphabet alphabet_;
  Oracle oracle_;
};

// §3.4: history F1 E1 E2 F2 with E = E1.*E2, F = F1.*F2:
// "the event prior(E, F) occurs at F2 ... but relative(E, F) does not".
TEST(Section34Test, PriorVersusRelative) {
  // E1=a+, E2=b+, F1=c+, F2=d+.
  OracleExpr prior_ef(
      "prior(relative(after a, after b), relative(after c, after d))");
  OracleExpr rel_ef(
      "relative(relative(after a, after b), relative(after c, after d))");
  EXPECT_TRUE(prior_ef.AtEnd("c+a+b+d+"));
  EXPECT_FALSE(rel_ef.AtEnd("c+a+b+d+"));
  EXPECT_TRUE(prior_ef.AtEnd("a+b+c+d+"));
  EXPECT_TRUE(rel_ef.AtEnd("a+b+c+d+"));
}

// §3.4: "The two operators have identical semantics when applied to
// logical events."
TEST(Section34Test, PriorEqualsRelativeOnLogicalEvents) {
  OracleExpr p("prior(after a, after b)");
  OracleExpr r("relative(after a, after b)");
  for (const char* h : {"a+b+", "b+a+", "a+.b+", "b+a+b+", "a+b+b+", "b+"}) {
    EXPECT_EQ(p.AtEnd(h), r.AtEnd(h)) << h;
  }
}

// §3.4: curried operators — prior(E, F, G) = prior(prior(E, F), G).
TEST(Section34Test, CurriedPrior) {
  OracleExpr curried("prior(after a, after b, after c)");
  OracleExpr nested("prior(prior(after a, after b), after c)");
  for (const char* h :
       {"a+b+c+", "c+b+a+", "a+c+b+c+", "b+a+c+", "a+b+c+c+"}) {
    EXPECT_EQ(curried.AtEnd(h), nested.AtEnd(h)) << h;
  }
  EXPECT_TRUE(curried.AtEnd("a+b+c+"));
  EXPECT_FALSE(curried.AtEnd("b+a+c+"));
}

// §3.4: relative+(E) as the infinite disjunction
// relative(E) | relative(E, E) | relative(E, E, E) | ...
TEST(Section34Test, RelativePlusIsUnboundedDisjunction) {
  OracleExpr plus("relative+ (relative(after a, after b))");
  OracleExpr one("relative(after a, after b)");
  OracleExpr two("relative(relative(after a, after b), "
                 "relative(after a, after b))");
  // Wherever the 1-chain or 2-chain fires, plus fires.
  for (const char* h : {"a+b+", "a+b+a+b+", "a+a+b+b+", "b+a+"}) {
    EXPECT_EQ(plus.AtEnd(h), one.AtEnd(h) || two.AtEnd(h)) << h;
  }
}

// §3.4 footnote 4: with E = F & !prior(F, F), given the history F F, the
// event E occurs at the first F but not at the second, yet relative(E, E)
// occurs at the second F and not the first.
TEST(Section34Test, Footnote4Anomaly) {
  OracleExpr e("after f & !prior(after f, after f)");
  std::vector<bool> marks_e = e.Run("f+f+");
  EXPECT_EQ(marks_e, (std::vector<bool>{true, false}));

  OracleExpr rel_ee(
      "relative(after f & !prior(after f, after f), "
      "after f & !prior(after f, after f))");
  std::vector<bool> marks_rel = rel_ee.Run("f+f+");
  // relative(E, E) occurs at the second F but not the first: within the
  // truncated history (after the first F), the second F is "first" again.
  EXPECT_EQ(marks_rel, (std::vector<bool>{false, true}));
}

// §3.4's fa example reading: "the commit of a transaction that updated an
// object, since there are no intervening aborts or commits after the
// tbegin". Encoded with method stand-ins: tbegin=t+, update=u+, commit=c+,
// abort=x+.
TEST(Section34Test, FaTransactionExample) {
  OracleExpr e(
      "fa(after t, prior(after u, after c), (after c | after x))");
  EXPECT_TRUE(e.AtEnd("t+u+c+"));        // Update then commit.
  EXPECT_FALSE(e.AtEnd("t+c+"));         // Commit without update:
                                          // prior(u,c) never occurred.
  EXPECT_FALSE(e.AtEnd("t+u+x+c+"));     // Abort intervened.
  EXPECT_TRUE(e.AtEnd("t+u+x+t+u+c+"));  // Fresh tbegin re-anchors.
}

// §4 model: "the system only takes cognizance of the occurrence of this
// event once" — multiple prior E-occurrences yield one labeled point.
TEST(Section4Test, MultipleWitnessesOnePoint) {
  OracleExpr e("relative(after a, after b)");
  // Two a's before one b: b is marked once (a boolean, not a count).
  std::vector<bool> marks = e.Run("a+a+b+");
  EXPECT_EQ(marks, (std::vector<bool>{false, false, true}));
}

// §4 item 5: complement is with respect to all points of the history.
TEST(Section4Test, ComplementOverPoints) {
  OracleExpr e("!(after a)");
  EXPECT_EQ(e.Run("a+.b-"), (std::vector<bool>{false, true, true}));
}

// The empty event set labels no points (§4 item 1).
TEST(Section4Test, EmptySetLabelsNothing) {
  OracleExpr e("empty");
  EXPECT_EQ(e.Run("a+a+"), (std::vector<bool>{false, false}));
}

// §3.3: the sequence example — a transaction attempting to commit after
// accessing an object and causing no other events to be posted.
TEST(Section33Test, SequenceTransactionExample) {
  // Stand-ins: tbegin=t+, before access=a-, after access=a+,
  // before tcomplete=c-.
  OracleExpr e("sequence(after t, before a, after a, before c)");
  EXPECT_TRUE(e.AtEnd("t+a-a+c-"));
  EXPECT_FALSE(e.AtEnd("t+a-a+.c-"));   // Another event intervened.
  EXPECT_FALSE(e.AtEnd("t+a-.a+c-"));
}

}  // namespace
}  // namespace ode
