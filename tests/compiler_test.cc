#include "compile/compiler.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ode {
namespace {

using testing_util::CompileOrDie;
using testing_util::Compiled;

/// Test harness: compile an expression over method events and run symbol
/// histories written as method-name strings ("a+" = after a, "a-" =
/// before a, "." = an unrelated event).
class CompiledExpr {
 public:
  explicit CompiledExpr(std::string_view text) : c_(CompileOrDie(text)) {}

  SymbolId Sym(char method, char qual) {
    PostedEvent e = MakePostedMethod(
        qual == '+' ? EventQualifier::kAfter : EventQualifier::kBefore,
        std::string(1, method));
    Result<SymbolId> s = c_.event.alphabet.Classify(
        e, [](const MaskSlot&, const PostedEvent&) -> Result<bool> {
          return Status::Internal("mask-free test");
        });
    EXPECT_TRUE(s.ok()) << s.status().ToString();
    return s.ok() ? *s : 0;
  }

  /// History notation: pairs of (method, +/-), '.' = OTHER.
  std::vector<bool> Run(std::string_view history) {
    std::vector<SymbolId> syms;
    for (size_t i = 0; i < history.size();) {
      if (history[i] == '.') {
        syms.push_back(c_.event.alphabet.other_symbol());
        ++i;
      } else {
        syms.push_back(Sym(history[i], history[i + 1]));
        i += 2;
      }
    }
    return c_.event.dfa.OccurrencePoints(syms);
  }

  /// Does the event occur at the last point of `history`?
  bool AtEnd(std::string_view history) {
    std::vector<bool> marks = Run(history);
    return !marks.empty() && marks.back();
  }

  const CompiledEvent& event() const { return c_.event; }

 private:
  Compiled c_;
};

TEST(CompilerTest, AtomOccursAtEachPosting) {
  CompiledExpr e("after a");
  EXPECT_EQ(e.Run("a+.a+"), (std::vector<bool>{true, false, true}));
  EXPECT_EQ(e.Run("a-"), (std::vector<bool>{false}));
}

TEST(CompilerTest, UnionAndIntersection) {
  CompiledExpr u("after a | before b");
  EXPECT_EQ(u.Run("a+b-."), (std::vector<bool>{true, true, false}));

  // Intersection of two distinct atoms is empty.
  CompiledExpr both("after a & before b");
  EXPECT_EQ(both.Run("a+b-"), (std::vector<bool>{false, false}));

  // Intersection with a non-trivial overlap: (a | b) & (b | c) = b.
  CompiledExpr overlap("(after a | after b) & (after b | after c)");
  EXPECT_EQ(overlap.Run("a+b+c+"), (std::vector<bool>{false, true, false}));
}

TEST(CompilerTest, ComplementMarksNonOccurrences) {
  CompiledExpr e("!after a");
  EXPECT_EQ(e.Run("a+.b+a+"),
            (std::vector<bool>{false, true, true, false}));
}

TEST(CompilerTest, RelativeIsStrictSequencing) {
  CompiledExpr e("relative(after a, after b)");
  EXPECT_TRUE(e.AtEnd("a+b+"));
  EXPECT_TRUE(e.AtEnd("a+..b+"));
  EXPECT_FALSE(e.AtEnd("b+a+"));
  // b before a, then another b after: fires at the final b.
  EXPECT_TRUE(e.AtEnd("b+a+b+"));
  // Marks every qualifying b.
  EXPECT_EQ(e.Run("a+b+b+"), (std::vector<bool>{false, true, true}));
}

TEST(CompilerTest, RelativePlusChains) {
  CompiledExpr e("relative+ (after a)");
  // Equivalent to `after a` for an atom (§3.4 footnote on prior+).
  EXPECT_EQ(e.Run("a+.a+"), (std::vector<bool>{true, false, true}));
}

TEST(CompilerTest, RelativeNMarksNthAndSubsequent) {
  // §3.4: relative 5 (after deposit) = fifth and any subsequent.
  CompiledExpr e("relative 3 (after a)");
  EXPECT_EQ(e.Run("a+a+a+a+"),
            (std::vector<bool>{false, false, true, true}));
  EXPECT_EQ(e.Run("a+.a+.a+"),
            (std::vector<bool>{false, false, false, false, true}));
}

TEST(CompilerTest, PriorOnlyNeedsLastPointsOrdered) {
  // §3.4: prior(E, F) holds if E's last point is before F's last point.
  CompiledExpr e("prior(after a, after b)");
  EXPECT_TRUE(e.AtEnd("a+b+"));
  EXPECT_TRUE(e.AtEnd("a+..b+"));
  EXPECT_FALSE(e.AtEnd("b+"));
  EXPECT_FALSE(e.AtEnd("b+a+"));
  EXPECT_TRUE(e.AtEnd("b+a+b+"));
}

TEST(CompilerTest, PriorVsRelativeOnComposites) {
  // The §3.4 example: E = relative(E1, E2), F = relative(F1, F2) with
  // history F1 E1 E2 F2. prior(E, F) occurs at F2; relative(E, F) does not.
  // Encode E1=a+, E2=b+, F1=c+, F2=d+.
  CompiledExpr prior_ef(
      "prior(relative(after a, after b), relative(after c, after d))");
  CompiledExpr relative_ef(
      "relative(relative(after a, after b), relative(after c, after d))");
  EXPECT_TRUE(prior_ef.AtEnd("c+a+b+d+"));
  EXPECT_FALSE(relative_ef.AtEnd("c+a+b+d+"));
  // With F entirely after E, both fire.
  EXPECT_TRUE(prior_ef.AtEnd("a+b+c+d+"));
  EXPECT_TRUE(relative_ef.AtEnd("a+b+c+d+"));
}

TEST(CompilerTest, SequenceRequiresAdjacency) {
  // §3.4: sequence components occur at immediately consecutive points.
  CompiledExpr e("sequence(after a, after b)");
  EXPECT_TRUE(e.AtEnd("a+b+"));
  EXPECT_FALSE(e.AtEnd("a+.b+"));  // An intervening event breaks it.
  EXPECT_FALSE(e.AtEnd("a+b-"));
}

TEST(CompilerTest, SemicolonChainsAreSequences) {
  // Trigger T8: after deposit; before withdraw; after withdraw.
  CompiledExpr e("after a; before b; after b");
  EXPECT_TRUE(e.AtEnd("a+b-b+"));
  EXPECT_FALSE(e.AtEnd("a+b-.b+"));
  EXPECT_FALSE(e.AtEnd("a+.b-b+"));
}

TEST(CompilerTest, SequenceN) {
  CompiledExpr e("sequence 3 (after a)");
  EXPECT_TRUE(e.AtEnd("a+a+a+"));
  EXPECT_FALSE(e.AtEnd("a+a+.a+"));
  EXPECT_TRUE(e.AtEnd("a+a+a+a+"));  // Any window of 3 adjacent.
}

TEST(CompilerTest, PriorN) {
  CompiledExpr e("prior 2 (after a)");
  EXPECT_EQ(e.Run("a+.a+a+"),
            (std::vector<bool>{false, false, true, true}));
}

TEST(CompilerTest, ChooseAndEvery) {
  CompiledExpr choose2("choose 2 (after a)");
  EXPECT_EQ(choose2.Run("a+a+a+"), (std::vector<bool>{false, true, false}));

  CompiledExpr every2("every 2 (after a)");
  EXPECT_EQ(every2.Run("a+a+a+a+"),
            (std::vector<bool>{false, true, false, true}));
}

TEST(CompilerTest, FaOperator) {
  CompiledExpr e("fa(after a, after b, after c)");
  EXPECT_TRUE(e.AtEnd("a+b+"));
  EXPECT_TRUE(e.AtEnd("a+.b+"));
  EXPECT_FALSE(e.AtEnd("a+c+b+"));   // c intervenes.
  EXPECT_TRUE(e.AtEnd("a+c+a+b+"));  // Fresh anchor after c.
  EXPECT_EQ(e.Run("a+b+b+"), (std::vector<bool>{false, true, false}));
}

TEST(CompilerTest, FaAbsOperator) {
  CompiledExpr e("faAbs(after a, after b, after c)");
  EXPECT_TRUE(e.AtEnd("c+a+b+"));   // c before the anchor is irrelevant.
  EXPECT_FALSE(e.AtEnd("a+c+b+"));  // c between anchor and b blocks.
}

TEST(CompilerTest, EmptyNeverOccurs) {
  CompiledExpr e("empty");
  EXPECT_EQ(e.Run("a+a+"), (std::vector<bool>{false, false}));
}

TEST(CompilerTest, MethodShorthandCoversBothQualifiers) {
  CompiledExpr e("a");
  EXPECT_EQ(e.Run("a-a+."), (std::vector<bool>{true, true, false}));
}

TEST(CompilerTest, StatsPopulated) {
  CompiledExpr e("relative(after a, !after b & after c)");
  const CompileStats& stats = e.event().stats;
  EXPECT_GT(stats.alphabet_size, 0u);
  EXPECT_GT(stats.nfa_states, 0u);
  EXPECT_GE(stats.dfa_states, stats.min_dfa_states);
  EXPECT_GT(stats.min_dfa_states, 0u);
}

TEST(CompilerTest, RootCompositeMasksHoisted) {
  // `&& ready && steady` parses as one conjunction mask (greedy, §5 usage);
  // it is hoisted to a runtime gate and the expression compiles mask-free.
  Compiled c = CompileOrDie("(after a | after b) && ready && steady");
  EXPECT_EQ(c.event.composite_masks.size(), 1u);
  EXPECT_EQ(c.event.composite_masks[0]->ToString(), "(ready && steady)");
  EXPECT_EQ(c.event.num_gates(), 0u);
}

TEST(CompilerTest, NestedCompositeMaskBecomesGate) {
  Compiled c = CompileOrDie(
      "fa((after a | after b) && ready, before tcomplete, after tbegin)");
  EXPECT_EQ(c.event.num_gates(), 1u);
  EXPECT_EQ(c.event.extended_alphabet_size(), c.event.alphabet.size() * 2);
  EXPECT_EQ(c.event.gates[0].mask->ToString(), "ready");
}

TEST(CompilerTest, GateCapEnforced) {
  CompileOptions opts;
  opts.max_gates = 1;
  EventExprPtr e = testing_util::ParseOrDie(
      "relative((after a) && m1, (after b) && m2)");
  // Note: masks attach to atoms here, so force composite masks with parens
  // around unions.
  e = testing_util::ParseOrDie(
      "relative((after a | after b) && m1, (after b | after c) && m2)");
  EXPECT_EQ(CompileEvent(e, opts).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(CompilerTest, MinimizationNeverGrowsStates) {
  for (const char* text :
       {"relative(after a, after b, after c)",
        "!(after a | before a) & after b",
        "fa(after a, prior(after b, after c), after a)"}) {
    CompileOptions raw;
    raw.minimize = false;
    EventExprPtr e = testing_util::ParseOrDie(text);
    CompiledEvent unmin = CompileEvent(e, raw).value();
    CompiledEvent min = CompileEvent(e, CompileOptions()).value();
    EXPECT_LE(min.dfa.num_states(), unmin.dfa.num_states()) << text;
  }
}

}  // namespace
}  // namespace ode
