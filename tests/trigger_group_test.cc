// Engine-level §5 footnote-5: a trigger group shares one product automaton
// on an object — one classification and one table step per event for all
// members, one integer of monitoring state.
#include <gtest/gtest.h>

#include "ode/database.h"
#include "test_util.h"

namespace ode {
namespace {

ClassDef ItemClass() {
  ClassDef def("item");
  def.AddAttr("qty", Value(0));
  def.AddAttr("hits", Value(0));
  def.AddMethod(MethodDef{"deposit", {{"int", "q"}}, MethodKind::kUpdate,
                          nullptr});
  def.AddMethod(MethodDef{"withdraw", {{"int", "q"}}, MethodKind::kUpdate,
                          nullptr});
  def.AddTrigger("A(): perpetual every 2 (after deposit) ==> hit");
  def.AddTrigger("B(): perpetual after withdraw (q) && q > 100 ==> hit");
  def.AddTrigger("C(): after deposit; before withdraw ==> hit");
  return def;
}

struct Fixture {
  Database db;
  Oid item;
  TxnId txn = 0;

  Fixture() {
    EXPECT_TRUE(db.RegisterAction("hit",
                                  [](const ActionContext& ctx) -> Status {
                                    Result<Value> v =
                                        ctx.db->PeekAttr(ctx.self, "hits");
                                    if (!v.ok()) return v.status();
                                    Result<Value> next = v->Add(Value(1));
                                    if (!next.ok()) return next.status();
                                    return ctx.db->SetAttr(ctx.txn, ctx.self,
                                                           "hits", *next);
                                  })
                    .ok());
    EXPECT_TRUE(db.RegisterClass(ItemClass()).status().ok());
    EXPECT_TRUE(
        db.DefineTriggerGroup("item", "G", {"A", "B", "C"}).ok());
    txn = db.Begin().value();
    item = db.New(txn, "item").value();
  }

  int64_t Hits() {
    return db.PeekAttr(item, "hits").value().AsInt().value();
  }
  void Deposit(int q) {
    ODE_ASSERT_OK(db.Call(txn, item, "deposit", {Value(q)}).status());
  }
  void Withdraw(int q) {
    ODE_ASSERT_OK(db.Call(txn, item, "withdraw", {Value(q)}).status());
  }
};

TEST(TriggerGroupTest, MembersFireThroughTheSharedAutomaton) {
  Fixture f;
  ODE_ASSERT_OK(f.db.ActivateTriggerGroup(f.txn, f.item, "G"));
  EXPECT_TRUE(f.db.TriggerGroupActive(f.item, "G").value());

  f.Deposit(10);             // A: 1st deposit — no.
  f.Deposit(10);             // A fires (every 2).
  EXPECT_EQ(f.db.FireCount(f.item, "A"), 1u);
  f.Withdraw(150);           // B fires (q > 100); C fires (dep ; wd).
  EXPECT_EQ(f.db.FireCount(f.item, "B"), 1u);
  EXPECT_EQ(f.db.FireCount(f.item, "C"), 1u);
  EXPECT_EQ(f.Hits(), 3);

  // C was ordinary: disarmed within the still-active group.
  f.Deposit(10);
  f.Withdraw(150);
  EXPECT_EQ(f.db.FireCount(f.item, "C"), 1u);  // No re-fire.
  EXPECT_EQ(f.db.FireCount(f.item, "B"), 2u);  // Perpetual member lives on.
  EXPECT_TRUE(f.db.TriggerGroupActive(f.item, "G").value());
}

TEST(TriggerGroupTest, GroupMatchesIndividualActivations) {
  // The same scenario driven through the group and through individual
  // triggers on two objects must fire identically.
  Fixture f;
  Oid solo = f.db.New(f.txn, "item").value();
  ODE_ASSERT_OK(f.db.ActivateTriggerGroup(f.txn, f.item, "G"));
  for (const char* t : {"A", "B", "C"}) {
    ODE_ASSERT_OK(f.db.ActivateTrigger(f.txn, solo, t));
  }
  auto drive = [&](Oid oid) {
    for (int i = 0; i < 3; ++i) {
      ODE_ASSERT_OK(f.db.Call(f.txn, oid, "deposit", {Value(5)}).status());
      ODE_ASSERT_OK(
          f.db.Call(f.txn, oid, "withdraw", {Value(i == 1 ? 500 : 5)})
              .status());
    }
  };
  drive(f.item);
  drive(solo);
  for (const char* t : {"A", "B", "C"}) {
    EXPECT_EQ(f.db.FireCount(f.item, t), f.db.FireCount(solo, t)) << t;
  }
}

TEST(TriggerGroupTest, SingleStateWord) {
  Fixture f;
  ODE_ASSERT_OK(f.db.ActivateTriggerGroup(f.txn, f.item, "G"));
  Result<int32_t> s0 = f.db.TriggerGroupState(f.item, "G");
  ODE_ASSERT_OK(s0.status());
  f.Deposit(1);
  Result<int32_t> s1 = f.db.TriggerGroupState(f.item, "G");
  EXPECT_NE(*s0, *s1);
  // No per-member ActiveTrigger slots were created.
  EXPECT_TRUE(f.db.object(f.item)->trigger_slots().empty());
  EXPECT_EQ(f.db.object(f.item)->group_slots().size(), 1u);
}

TEST(TriggerGroupTest, DeactivationStopsAllMembers) {
  Fixture f;
  ODE_ASSERT_OK(f.db.ActivateTriggerGroup(f.txn, f.item, "G"));
  f.Deposit(1);
  ODE_ASSERT_OK(f.db.DeactivateTriggerGroup(f.txn, f.item, "G"));
  f.Deposit(1);  // Would have completed `every 2`.
  f.Withdraw(500);
  EXPECT_EQ(f.Hits(), 0);
}

TEST(TriggerGroupTest, DefinitionErrors) {
  Fixture f;
  EXPECT_EQ(f.db.DefineTriggerGroup("item", "G", {"A"}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(f.db.DefineTriggerGroup("item", "H", {"nope"}).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(f.db.DefineTriggerGroup("nope", "H", {"A"}).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(f.db.DefineTriggerGroup("item", "H", {}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(f.db.ActivateTriggerGroup(f.txn, f.item, "nope").code(),
            StatusCode::kNotFound);
}

TEST(TriggerGroupTest, WitnessesAvailableToMembers) {
  Fixture f;
  Value seen;
  ODE_ASSERT_OK(f.db.RegisterAction(
      "note", [&seen](const ActionContext& ctx) -> Status {
        seen = ctx.WitnessArg("withdraw", "q");
        return Status::OK();
      }));
  ClassDef def("cell");
  def.AddAttr("x", Value(0));
  def.AddMethod(MethodDef{"withdraw", {{"int", "q"}}, MethodKind::kUpdate,
                          nullptr});
  def.AddTrigger("W(): perpetual after withdraw ==> note");
  ODE_ASSERT_OK(f.db.RegisterClass(std::move(def)).status());
  ODE_ASSERT_OK(f.db.DefineTriggerGroup("cell", "G", {"W"}));
  Oid cell = f.db.New(f.txn, "cell").value();
  ODE_ASSERT_OK(f.db.ActivateTriggerGroup(f.txn, cell, "G"));
  ODE_ASSERT_OK(f.db.Call(f.txn, cell, "withdraw", {Value(42)}).status());
  EXPECT_EQ(seen.AsInt().value_or(-1), 42);
}

TEST(TriggerGroupTest, GroupSlotSurvivesSnapshot) {
  std::string path =
      std::string(::testing::TempDir()) + "/group_snap.ode";
  Oid item;
  {
    Fixture f;
    item = f.item;
    ODE_ASSERT_OK(f.db.ActivateTriggerGroup(f.txn, f.item, "G"));
    f.Deposit(1);  // every-2 counter at 1.
    ODE_ASSERT_OK(f.db.Commit(f.txn));
    ODE_ASSERT_OK(f.db.SaveSnapshot(path));
  }
  {
    Fixture f2;  // Re-registers schema incl. group; creates its own item.
    ODE_ASSERT_OK(f2.db.Commit(f2.txn));
    ODE_ASSERT_OK(f2.db.LoadSnapshot(path));
    EXPECT_TRUE(f2.db.TriggerGroupActive(item, "G").value());
    TxnId t = f2.db.Begin().value();
    ODE_ASSERT_OK(f2.db.Call(t, item, "deposit", {Value(1)}).status());
    ODE_ASSERT_OK(f2.db.Commit(t));
    // The 2nd deposit overall: the restored counter completes.
    EXPECT_EQ(f2.db.FireCount(item, "A"), 1u);
  }
}


TEST(TriggerGroupTest, AllThreeScopesFireOnOneEvent) {
  // Object trigger, class-scope trigger, and group member can all observe
  // the same posting; firing order is object slots, class slots, groups.
  Fixture f;
  std::vector<std::string> order;
  ODE_ASSERT_OK(f.db.RegisterAction(
      "mark", [&order](const ActionContext& ctx) -> Status {
        order.push_back(ctx.trigger_name);
        return Status::OK();
      }));
  ClassDef def("tri");
  def.AddAttr("x", Value(0));
  def.AddMethod(MethodDef{"poke", {}, MethodKind::kUpdate, nullptr});
  def.AddTrigger("Obj(): perpetual after poke ==> mark");
  def.AddTrigger("Cls(): perpetual after poke ==> mark");
  def.AddTrigger("Grp(): perpetual after poke ==> mark");
  ODE_ASSERT_OK(f.db.RegisterClass(std::move(def)).status());
  ODE_ASSERT_OK(f.db.DefineTriggerGroup("tri", "G", {"Grp"}));
  ODE_ASSERT_OK(f.db.ActivateClassTrigger("tri", "Cls"));

  Oid obj = f.db.New(f.txn, "tri").value();
  ODE_ASSERT_OK(f.db.ActivateTrigger(f.txn, obj, "Obj"));
  ODE_ASSERT_OK(f.db.ActivateTriggerGroup(f.txn, obj, "G"));
  ODE_ASSERT_OK(f.db.Call(f.txn, obj, "poke").status());

  EXPECT_EQ(order,
            (std::vector<std::string>{"Obj", "Cls", "Grp"}));
  EXPECT_EQ(f.db.FireCount(obj, "Obj"), 1u);
  EXPECT_EQ(f.db.ClassFireCount("tri", "Cls"), 1u);
  EXPECT_EQ(f.db.FireCount(obj, "Grp"), 1u);
}

}  // namespace
}  // namespace ode
