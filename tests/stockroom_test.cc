// Experiment E9: the paper's §3.5 stockRoom worked example, triggers T1–T8,
// checked against the eight behaviors the paper enumerates.
#include <gtest/gtest.h>

#include "ode/database.h"
#include "test_util.h"

namespace ode {
namespace {

constexpr int64_t kAuthorizedUser = 7;
constexpr int64_t kIntruder = 13;

/// Builds the stockRoom class of §3.5. Items are first-class objects (the
/// paper's `Item items[max]`), referenced by oid in method arguments so
/// masks like `i.balance < reorder(i)` work as written.
ClassDef ItemClass() {
  ClassDef def("Item");
  def.AddAttr("balance", Value(0));
  def.AddAttr("eoq", Value(10));  // Economic order quantity.
  return def;
}

ClassDef StockRoomClass() {
  ClassDef def("stockRoom");
  for (const char* counter :
       {"orders", "summaries", "reports", "averages", "logs", "printed"}) {
    def.AddAttr(counter, Value(0));
  }

  auto adjust_item = [](MethodContext* ctx, int sign) -> Status {
    ODE_ASSIGN_OR_RETURN(Value item, ctx->Arg("i"));
    ODE_ASSIGN_OR_RETURN(Oid item_oid, item.AsOid());
    ODE_ASSIGN_OR_RETURN(Value q, ctx->Arg("q"));
    ODE_ASSIGN_OR_RETURN(Value balance,
                         ctx->db()->GetAttr(ctx->txn(), item_oid, "balance"));
    ODE_ASSIGN_OR_RETURN(Value delta, q.Mul(Value(sign)));
    ODE_ASSIGN_OR_RETURN(Value next, balance.Add(delta));
    return ctx->db()->SetAttr(ctx->txn(), item_oid, "balance", next);
  };
  def.AddMethod(MethodDef{"deposit",
                          {{"Item", "i"}, {"int", "q"}},
                          MethodKind::kUpdate,
                          [adjust_item](MethodContext* ctx) {
                            return adjust_item(ctx, +1);
                          }});
  def.AddMethod(MethodDef{"withdraw",
                          {{"Item", "i"}, {"int", "q"}},
                          MethodKind::kUpdate,
                          [adjust_item](MethodContext* ctx) {
                            return adjust_item(ctx, -1);
                          }});

  // The trigger section, §3.5 (dayBegin = at time(HR=9), dayEnd = HR=17).
  def.AddTrigger(
      "T1(): perpetual before withdraw && !authorized(user()) ==> tabort");
  def.AddTrigger(
      "T2(): after withdraw(Item i, int q) && i.balance < reorder(i) "
      "==> order");
  def.AddTrigger("T3(): perpetual at time(HR=17) ==> summary");
  def.AddTrigger(
      "T4(): perpetual relative(at time(HR=9), "
      "prior(choose 5 (after tcommit), after tcommit) & "
      "!prior(at time(HR=9), after tcommit)) ==> report");
  def.AddTrigger("T5(): perpetual every 5 (after access) ==> updateAverages");
  def.AddTrigger(
      "T6(): perpetual after withdraw (i, q) && q > 100 ==> log");
  def.AddTrigger(
      "T7(): perpetual fa(at time(HR=9), "
      "choose 5 (after withdraw (i, q) && q > 100), at time(HR=9)) "
      "==> summary");
  // The paper writes T8 as `after deposit; before withdraw; after
  // withdraw`. Our engine posts the §3.1 object-state events (before/after
  // access and update) *inside* each method invocation, so `before
  // withdraw` and `after withdraw` are never adjacent; the deposit→
  // withdrawal adjacency the trigger describes is the method-event pair
  // below. (DESIGN.md documents this granularity choice.)
  def.AddTrigger(
      "T8(): perpetual after deposit; before withdraw ==> printLog");
  return def;
}

struct StockRoom {
  Database db;
  Oid room;
  Oid bolts;
  Oid nuts;
  int64_t current_user = kAuthorizedUser;

  StockRoom() {
    auto bump = [](const char* attr) {
      return [attr](const ActionContext& ctx) -> Status {
        Result<Value> v = ctx.db->PeekAttr(ctx.self, attr);
        if (!v.ok()) return v.status();
        Result<Value> next = v->Add(Value(1));
        if (!next.ok()) return next.status();
        return ctx.db->SetAttr(ctx.txn, ctx.self, attr, *next);
      };
    };
    EXPECT_TRUE(db.RegisterAction("order", bump("orders")).ok());
    EXPECT_TRUE(db.RegisterAction("summary", bump("summaries")).ok());
    EXPECT_TRUE(db.RegisterAction("report", bump("reports")).ok());
    EXPECT_TRUE(db.RegisterAction("updateAverages", bump("averages")).ok());
    EXPECT_TRUE(db.RegisterAction("log", bump("logs")).ok());
    EXPECT_TRUE(db.RegisterAction("printLog", bump("printed")).ok());

    EXPECT_TRUE(db.RegisterHostFunction(
                      "user",
                      [this](const std::vector<Value>&, const HostContext&)
                          -> Result<Value> { return Value(current_user); })
                    .ok());
    EXPECT_TRUE(db.RegisterHostFunction(
                      "authorized",
                      [](const std::vector<Value>& args, const HostContext&)
                          -> Result<Value> {
                        return Value(args.at(0).AsInt().value() ==
                                     kAuthorizedUser);
                      })
                    .ok());
    EXPECT_TRUE(db.RegisterHostFunction(
                      "reorder",
                      [](const std::vector<Value>& args, const HostContext& ctx)
                          -> Result<Value> {
                        Result<Oid> item = args.at(0).AsOid();
                        if (!item.ok()) return item.status();
                        return ctx.db->PeekAttr(*item, "eoq");
                      })
                    .ok());

    EXPECT_TRUE(db.RegisterClass(ItemClass()).status().ok());
    EXPECT_TRUE(db.RegisterClass(StockRoomClass()).status().ok());

    TxnId t = db.Begin().value();
    room = db.New(t, "stockRoom").value();
    bolts = db.New(t, "Item", {{"balance", Value(100)}}).value();
    nuts = db.New(t, "Item", {{"balance", Value(100)}}).value();
    // The constructor activates the triggers (§3.5).
    for (const char* trig : {"T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8"}) {
      EXPECT_TRUE(db.ActivateTrigger(t, room, trig).ok())
          << trig;
    }
    EXPECT_TRUE(db.Commit(t).ok());
  }

  int64_t Counter(const char* attr) {
    return db.PeekAttr(room, attr).value().AsInt().value();
  }
  int64_t ItemBalance(Oid item) {
    return db.PeekAttr(item, "balance").value().AsInt().value();
  }

  Status Withdraw(Oid item, int q) {
    TxnId t = db.Begin().value();
    Status s = db.Call(t, room, "withdraw", {Value(item), Value(q)}).status();
    if (!s.ok()) return s;  // Aborted transactions are already finished.
    return db.Commit(t);
  }
  Status Deposit(Oid item, int q) {
    TxnId t = db.Begin().value();
    Status s = db.Call(t, room, "deposit", {Value(item), Value(q)}).status();
    if (!s.ok()) return s;
    return db.Commit(t);
  }
};

// Behavior 1: "Only authorized users can withdraw an item. Otherwise, the
// transaction is to be aborted."
TEST(StockRoomTest, T1UnauthorizedWithdrawalAborts) {
  StockRoom sr;
  sr.current_user = kIntruder;
  EXPECT_EQ(sr.Withdraw(sr.bolts, 10).code(), StatusCode::kAborted);
  EXPECT_EQ(sr.ItemBalance(sr.bolts), 100);  // Nothing happened.
  sr.current_user = kAuthorizedUser;
  ODE_ASSERT_OK(sr.Withdraw(sr.bolts, 10));
  EXPECT_EQ(sr.ItemBalance(sr.bolts), 90);
}

// Behavior 2: "If the item quantity falls below the economic order
// quantity, an order is placed. This trigger must be explicitly
// reactivated after it has fired."
TEST(StockRoomTest, T2ReorderFiresOnceUntilReactivated) {
  StockRoom sr;
  // Take the balance down to 5 < eoq (10).
  ODE_ASSERT_OK(sr.Withdraw(sr.bolts, 95));
  EXPECT_EQ(sr.Counter("orders"), 1);
  EXPECT_FALSE(sr.db.TriggerActive(sr.room, "T2").value());
  // Further shortfalls do not re-order until reactivation (ordinary
  // trigger, §2).
  ODE_ASSERT_OK(sr.Withdraw(sr.bolts, 1));
  EXPECT_EQ(sr.Counter("orders"), 1);
  TxnId t = sr.db.Begin().value();
  ODE_ASSERT_OK(sr.db.ActivateTrigger(t, sr.room, "T2"));
  ODE_ASSERT_OK(sr.db.Commit(t));
  ODE_ASSERT_OK(sr.Withdraw(sr.bolts, 1));
  EXPECT_EQ(sr.Counter("orders"), 2);
}

// Behavior 3: "At the end of the day, a summary is to be printed."
TEST(StockRoomTest, T3DayEndSummary) {
  StockRoom sr;
  ODE_ASSERT_OK(sr.db.AdvanceClock(24 * 3600 * 1000LL));
  EXPECT_EQ(sr.db.FireCount(sr.room, "T3"), 1u);
  ODE_ASSERT_OK(sr.db.AdvanceClock(24 * 3600 * 1000LL));
  EXPECT_EQ(sr.db.FireCount(sr.room, "T3"), 2u);
}

// Behavior 4: "Every transaction after the 5th transaction within the same
// day is to be explicitly reported."
TEST(StockRoomTest, T4ReportsTransactionsAfterFifthEachDay) {
  StockRoom sr;
  // Move to 09:30 of day 1: dayBegin has fired once.
  ODE_ASSERT_OK(sr.db.AdvanceClockTo(9 * 3600 * 1000LL + 1800 * 1000));
  // Seven committed transactions touch the stockroom today.
  for (int i = 0; i < 7; ++i) {
    ODE_ASSERT_OK(sr.Deposit(sr.bolts, 1));
  }
  // The 6th and 7th commits are reported.
  EXPECT_EQ(sr.Counter("reports"), 2);

  // Next day: the count starts afresh; five transactions go unreported.
  ODE_ASSERT_OK(
      sr.db.AdvanceClockTo(24 * 3600 * 1000LL + 9 * 3600 * 1000LL + 1));
  for (int i = 0; i < 5; ++i) {
    ODE_ASSERT_OK(sr.Deposit(sr.bolts, 1));
  }
  EXPECT_EQ(sr.Counter("reports"), 2);
}

// Behavior 5: "After every 5 operations, the averages are to be updated."
TEST(StockRoomTest, T5EveryFifthAccess) {
  StockRoom sr;
  for (int i = 0; i < 11; ++i) {
    ODE_ASSERT_OK(sr.Deposit(sr.nuts, 1));
  }
  // 11 accesses → averages updated at the 5th and 10th.
  EXPECT_EQ(sr.Counter("averages"), 2);
}

// Behavior 6: "All large withdrawals (quantity > 100) are to be recorded."
TEST(StockRoomTest, T6LargeWithdrawalsLogged) {
  StockRoom sr;
  ODE_ASSERT_OK(sr.Deposit(sr.bolts, 1000));
  ODE_ASSERT_OK(sr.Withdraw(sr.bolts, 100));  // Not large (strictly >).
  EXPECT_EQ(sr.Counter("logs"), 0);
  ODE_ASSERT_OK(sr.Withdraw(sr.bolts, 101));
  EXPECT_EQ(sr.Counter("logs"), 1);
  ODE_ASSERT_OK(sr.Withdraw(sr.bolts, 500));
  EXPECT_EQ(sr.Counter("logs"), 2);
}

// Behavior 7: "After the 5th large withdrawal of an item in the same day,
// print a summary."
TEST(StockRoomTest, T7FifthLargeWithdrawalOfTheDay) {
  StockRoom sr;
  ODE_ASSERT_OK(sr.Deposit(sr.bolts, 100000));
  // Enter day 1 at 09:30.
  ODE_ASSERT_OK(sr.db.AdvanceClockTo(9 * 3600 * 1000LL + 1800 * 1000));
  int64_t base = sr.Counter("summaries");
  for (int i = 0; i < 4; ++i) {
    ODE_ASSERT_OK(sr.Withdraw(sr.bolts, 200));
  }
  EXPECT_EQ(sr.Counter("summaries"), base);
  ODE_ASSERT_OK(sr.Withdraw(sr.bolts, 200));  // The 5th large one.
  EXPECT_EQ(sr.Counter("summaries"), base + 1);
  // A 6th does not re-fire (only the 5th is chosen).
  ODE_ASSERT_OK(sr.Withdraw(sr.bolts, 200));
  EXPECT_EQ(sr.Counter("summaries"), base + 1);
}

// Behavior 8: "Print the log when a deposit is immediately followed by a
// withdrawal."
TEST(StockRoomTest, T8DepositImmediatelyFollowedByWithdrawal) {
  StockRoom sr;
  TxnId t = sr.db.Begin().value();
  ODE_ASSERT_OK(
      sr.db.Call(t, sr.room, "deposit", {Value(sr.bolts), Value(1)}).status());
  ODE_ASSERT_OK(
      sr.db.Call(t, sr.room, "withdraw", {Value(sr.bolts), Value(1)})
          .status());
  ODE_ASSERT_OK(sr.db.Commit(t));
  EXPECT_EQ(sr.Counter("printed"), 1);

  // Deposit, deposit, withdraw in one transaction: the pair (2nd deposit,
  // withdraw) is adjacent → fires once more.
  TxnId t2 = sr.db.Begin().value();
  ODE_ASSERT_OK(
      sr.db.Call(t2, sr.room, "deposit", {Value(sr.bolts), Value(1)})
          .status());
  ODE_ASSERT_OK(
      sr.db.Call(t2, sr.room, "deposit", {Value(sr.bolts), Value(1)})
          .status());
  ODE_ASSERT_OK(
      sr.db.Call(t2, sr.room, "withdraw", {Value(sr.bolts), Value(1)})
          .status());
  ODE_ASSERT_OK(sr.db.Commit(t2));
  EXPECT_EQ(sr.Counter("printed"), 2);

  // Separate transactions: tbegin/tcomplete/tcommit events intervene
  // between the deposit and the withdrawal → not immediate → no fire.
  ODE_ASSERT_OK(sr.Deposit(sr.bolts, 1));
  ODE_ASSERT_OK(sr.Withdraw(sr.bolts, 1));
  EXPECT_EQ(sr.Counter("printed"), 2);
}

// All eight triggers coexist on one object with one automaton state word
// each (§5).
TEST(StockRoomTest, AllTriggersCoexist) {
  StockRoom sr;
  ODE_ASSERT_OK(sr.Deposit(sr.bolts, 500));
  ODE_ASSERT_OK(sr.Withdraw(sr.bolts, 200));
  for (const char* trig : {"T1", "T3", "T4", "T5", "T6", "T7", "T8"}) {
    EXPECT_TRUE(sr.db.TriggerActive(sr.room, trig).value()) << trig;
  }
  const Object* room = sr.db.object(sr.room);
  ASSERT_NE(room, nullptr);
  EXPECT_EQ(room->trigger_slots().size(), 8u);
}

}  // namespace
}  // namespace ode
