#include "automaton/minimize.h"

#include <gtest/gtest.h>

#include <random>

#include "automaton/determinize.h"
#include "automaton/nfa.h"

namespace ode {
namespace {

SymbolSet S(std::initializer_list<SymbolId> syms, size_t m = 2) {
  SymbolSet out(m);
  for (SymbolId s : syms) out.Add(s);
  return out;
}

TEST(MinimizeTest, RemovesRedundantStates) {
  // Build a deliberately redundant DFA: 4 states, two of which are
  // behaviorally identical.
  Dfa d(2, 4);
  d.SetStart(0);
  // States 1 and 2 behave identically (both accept, both go to 3/3).
  d.SetStep(0, 0, 1);
  d.SetStep(0, 1, 2);
  d.SetStep(1, 0, 3);
  d.SetStep(1, 1, 3);
  d.SetStep(2, 0, 3);
  d.SetStep(2, 1, 3);
  d.SetStep(3, 0, 3);
  d.SetStep(3, 1, 3);
  d.SetAccepting(1, true);
  d.SetAccepting(2, true);
  Dfa m = Minimize(d);
  EXPECT_EQ(m.num_states(), 3u);
  EXPECT_TRUE(DfaEquivalent(d, m));
}

TEST(MinimizeTest, DropsUnreachableStates) {
  Dfa d(2, 3);
  d.SetStart(0);
  for (int s = 0; s < 3; ++s) {
    d.SetStep(s, 0, 0);
    d.SetStep(s, 1, 0);
  }
  d.SetAccepting(2, true);  // Unreachable accepting state.
  Dfa m = Minimize(d);
  EXPECT_EQ(m.num_states(), 1u);
}

TEST(MinimizeTest, MinimalDfaIsFixpoint) {
  Nfa nfa = Nfa::Concat(Nfa::SigmaStarAtom(S({0})),
                        Nfa::SigmaStarAtom(S({1})));
  Dfa m1 = Minimize(Determinize(nfa).value());
  Dfa m2 = Minimize(m1);
  EXPECT_EQ(m1.num_states(), m2.num_states());
  EXPECT_TRUE(DfaEquivalent(m1, m2));
}

TEST(MinimizeTest, PreservesLanguageOnRandomNfas) {
  std::mt19937 rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    // Random composition of atoms over a 3-symbol alphabet.
    Nfa a = Nfa::SigmaStarAtom(S({static_cast<SymbolId>(rng() % 3)}, 3));
    Nfa b = Nfa::SigmaStarAtom(S({static_cast<SymbolId>(rng() % 3)}, 3));
    Nfa nfa = (rng() % 2) ? Nfa::Concat(a, b) : Nfa::Union(Nfa::Plus(a), b);
    Dfa d = Determinize(nfa).value();
    Dfa m = Minimize(d);
    EXPECT_LE(m.num_states(), d.num_states());
    EXPECT_TRUE(DfaEquivalent(d, m));
    // Spot-check with random strings too.
    for (int i = 0; i < 20; ++i) {
      std::vector<SymbolId> input(rng() % 8);
      for (SymbolId& s : input) s = static_cast<SymbolId>(rng() % 3);
      EXPECT_EQ(d.Accepts(input), m.Accepts(input));
    }
  }
}

TEST(DfaEquivalentTest, DetectsDifference) {
  Dfa ends0 = Determinize(Nfa::SigmaStarAtom(S({0}))).value();
  Dfa ends1 = Determinize(Nfa::SigmaStarAtom(S({1}))).value();
  EXPECT_FALSE(DfaEquivalent(ends0, ends1));
  EXPECT_TRUE(DfaEquivalent(ends0, ends0));
}

}  // namespace
}  // namespace ode
