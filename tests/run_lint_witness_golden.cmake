# Golden-output check for witness rendering: run ode-lint --witness=on on
# the demo fixture and byte-compare stdout against the checked-in golden
# file. The witness BFS is deterministic (lexicographically least shortest
# history), so any drift here is a real rendering or verdict change and
# must be accompanied by a golden update.
#
# Inputs: -DLINT=<ode-lint binary> -DFIXTURE=<source .trig>
#         -DGOLDEN=<expected stdout> -DACTUAL=<where to dump actual>.

get_filename_component(fixture_dir ${FIXTURE} DIRECTORY)
get_filename_component(fixture_name ${FIXTURE} NAME)
execute_process(COMMAND ${LINT} --witness=on ${fixture_name}
  WORKING_DIRECTORY ${fixture_dir}
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR
    "expected exit 1 (fixture has an A001 error), got ${rc}:\n${out}${err}")
endif()

file(WRITE ${ACTUAL} "${out}")
file(READ ${GOLDEN} want)
if(NOT out STREQUAL want)
  message(FATAL_ERROR
    "witness rendering drifted from golden.\n"
    "  golden: ${GOLDEN}\n  actual: ${ACTUAL}\n"
    "Diff the two files; if the change is intended, refresh the golden.")
endif()
message(STATUS "ode-lint witness golden ok")
