// Property tests for TimeSpec pattern matching: NextMatchAfter must return
// a matching time, be strictly increasing, and skip no earlier match.
#include <gtest/gtest.h>

#include <random>

#include "event/time_spec.h"

namespace ode {
namespace {

TimeSpec RandomPattern(std::mt19937* rng) {
  TimeSpec spec;
  // Choose from hour/minute/second fields (day-level patterns are covered
  // by deterministic tests; second-level keeps the no-earlier-match scan
  // cheap).
  switch ((*rng)() % 6) {
    case 0:
      spec.hour = static_cast<int>((*rng)() % 24);
      break;
    case 1:
      spec.minute = static_cast<int>((*rng)() % 60);
      break;
    case 2:
      spec.second = static_cast<int>((*rng)() % 60);
      break;
    case 3:
      spec.hour = static_cast<int>((*rng)() % 24);
      spec.minute = static_cast<int>((*rng)() % 60);
      break;
    case 4:
      spec.minute = static_cast<int>((*rng)() % 60);
      spec.second = static_cast<int>((*rng)() % 60);
      break;
    default:
      spec.day = static_cast<int>((*rng)() % 28 + 1);
      spec.hour = static_cast<int>((*rng)() % 24);
      break;
  }
  return spec;
}

class TimePatternSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(TimePatternSweep, NextMatchProperties) {
  std::mt19937 rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    TimeSpec spec = RandomPattern(&rng);
    TimeMs after =
        static_cast<TimeMs>(rng() % (90ull * 24 * 3600 * 1000));
    Result<TimeMs> next = spec.NextMatchAfter(after);
    ASSERT_TRUE(next.ok()) << spec.ToString() << ": "
                           << next.status().ToString();

    // (1) Strictly after the anchor.
    EXPECT_GT(*next, after) << spec.ToString();
    // (2) The result matches the pattern.
    EXPECT_TRUE(spec.Matches(FromEpochMs(*next)))
        << spec.ToString() << " -> " << *next;
    // (3) No earlier match: sample intermediate instants.
    if (*next > after + 1) {
      std::uniform_int_distribution<TimeMs> mid(after + 1, *next - 1);
      for (int probe = 0; probe < 100; ++probe) {
        TimeMs t = mid(rng);
        EXPECT_FALSE(spec.Matches(FromEpochMs(t)))
            << spec.ToString() << " matched at " << t << " before " << *next;
      }
      // Also probe the instants directly around the result.
      EXPECT_FALSE(spec.Matches(FromEpochMs(*next - 1)));
    }
    // (4) Chaining yields strictly increasing matches.
    Result<TimeMs> next2 = spec.NextMatchAfter(*next);
    ASSERT_TRUE(next2.ok());
    EXPECT_GT(*next2, *next);
    EXPECT_TRUE(spec.Matches(FromEpochMs(*next2)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimePatternSweep,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(CivilTimeProperty, RoundTripAcrossRandomInstants) {
  std::mt19937_64 rng(9);
  for (int i = 0; i < 2000; ++i) {
    // ±200 years around the epoch.
    TimeMs t = static_cast<TimeMs>(rng() % (400ull * 365 * 24 * 3600 * 1000)) -
               200ll * 365 * 24 * 3600 * 1000;
    DateTime dt = FromEpochMs(t);
    EXPECT_EQ(ToEpochMs(dt), t);
    EXPECT_GE(dt.month, 1);
    EXPECT_LE(dt.month, 12);
    EXPECT_GE(dt.day, 1);
    EXPECT_LE(dt.day, DaysInMonth(dt.year, dt.month));
  }
}

TEST(CivilTimeProperty, DaysFromCivilIsMonotone) {
  int64_t prev = DaysFromCivil(1969, 12, 31);
  for (int year = 1970; year <= 1974; ++year) {
    for (int month = 1; month <= 12; ++month) {
      for (int day = 1; day <= DaysInMonth(year, month); ++day) {
        int64_t d = DaysFromCivil(year, month, day);
        EXPECT_EQ(d, prev + 1);
        prev = d;
      }
    }
  }
}

}  // namespace
}  // namespace ode
