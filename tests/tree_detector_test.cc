#include "baseline/tree_detector.h"

#include <gtest/gtest.h>

#include "baseline/naive_detector.h"
#include "test_util.h"

namespace ode {
namespace {

using testing_util::ParseOrDie;

struct Harness {
  EventExprPtr expr;
  Alphabet alphabet;
  std::unique_ptr<TreeDetector> tree;

  explicit Harness(std::string_view text) : expr(ParseOrDie(text)) {
    alphabet = Alphabet::Build(*expr).value();
    tree = TreeDetector::Create(expr, &alphabet).value();
  }

  SymbolId Sym(char method, char qual) {
    PostedEvent e = MakePostedMethod(
        qual == '+' ? EventQualifier::kAfter : EventQualifier::kBefore,
        std::string(1, method));
    return alphabet
        .Classify(e,
                  [](const MaskSlot&, const PostedEvent&) -> Result<bool> {
                    return Status::Internal("mask-free");
                  })
        .value();
  }

  std::vector<bool> Run(std::string_view history) {
    tree->Reset();
    std::vector<bool> out;
    for (size_t i = 0; i < history.size();) {
      SymbolId sym;
      if (history[i] == '.') {
        sym = alphabet.other_symbol();
        ++i;
      } else {
        sym = Sym(history[i], history[i + 1]);
        i += 2;
      }
      out.push_back(tree->Advance(sym).value());
    }
    return out;
  }
};

TEST(TreeDetectorTest, AtomAndBoolean) {
  Harness h("after a | before b");
  EXPECT_EQ(h.Run("a+b-."), (std::vector<bool>{true, true, false}));
  Harness n("!after a");
  EXPECT_EQ(n.Run("a+."), (std::vector<bool>{false, true}));
}

TEST(TreeDetectorTest, RelativeSpawnsInstances) {
  Harness h("relative(after a, after b)");
  EXPECT_EQ(h.Run("a+b+b+"), (std::vector<bool>{false, true, true}));
  size_t before = h.tree->NumInstances();
  // Each further `a` spawns a fresh B-instance: state grows with the
  // history — the §5 contrast.
  h.tree->Reset();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(h.tree->Advance(h.Sym('a', '+')).ok());
  }
  EXPECT_GT(h.tree->NumInstances(), before);
}

TEST(TreeDetectorTest, PriorAndCounters) {
  Harness p("prior(after a, after b)");
  EXPECT_EQ(p.Run("b+a+b+"), (std::vector<bool>{false, false, true}));

  Harness c("choose 2 (after a)");
  EXPECT_EQ(c.Run("a+a+a+"), (std::vector<bool>{false, true, false}));

  Harness ev("every 2 (after a)");
  EXPECT_EQ(ev.Run("a+a+a+a+"), (std::vector<bool>{false, true, false, true}));
}

TEST(TreeDetectorTest, SequenceAdjacency) {
  Harness h("after a; after b");
  EXPECT_EQ(h.Run("a+b+"), (std::vector<bool>{false, true}));
  EXPECT_EQ(h.Run("a+.b+"), (std::vector<bool>{false, false, false}));
}

TEST(TreeDetectorTest, FaFirstOnly) {
  Harness h("fa(after a, after b, after c)");
  EXPECT_EQ(h.Run("a+b+b+"), (std::vector<bool>{false, true, false}));
  EXPECT_EQ(h.Run("a+c+b+"), (std::vector<bool>{false, false, false}));
}

TEST(TreeDetectorTest, InstanceCapTrips) {
  Harness h("relative(after a, after b)");
  TreeDetector::Options opts;
  opts.max_instances = 16;
  auto capped = TreeDetector::Create(h.expr, &h.alphabet, opts).value();
  Status last = Status::OK();
  for (int i = 0; i < 64 && last.ok(); ++i) {
    Result<bool> r = capped->Advance(h.Sym('a', '+'));
    last = r.ok() ? Status::OK() : r.status();
  }
  EXPECT_EQ(last.code(), StatusCode::kResourceExhausted);
}

TEST(TreeDetectorTest, NaiveDetectorMatchesTree) {
  for (const char* text :
       {"relative(after a, after b)", "prior 2 (after a)",
        "fa(after a, after b, after c)", "after a; after b",
        "every 3 (after a | before b)"}) {
    Harness h(text);
    NaiveDetector naive(h.expr, &h.alphabet);
    h.tree->Reset();
    std::mt19937 rng(42);
    for (int i = 0; i < 60; ++i) {
      SymbolId sym = static_cast<SymbolId>(rng() % h.alphabet.size());
      Result<bool> t = h.tree->Advance(sym);
      Result<bool> n = naive.Advance(sym);
      ASSERT_TRUE(t.ok() && n.ok());
      ASSERT_EQ(*t, *n) << text << " at step " << i;
    }
  }
}

TEST(TreeDetectorTest, RejectsGateAtomsAndNestedMasks) {
  EventExprPtr gate = EventExpr::GateAtom(0);
  Alphabet a = Alphabet::Build(*gate).value();
  EXPECT_EQ(TreeDetector::Create(gate, &a).status().code(),
            StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace ode
