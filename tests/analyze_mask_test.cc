// Layer-1 mask reasoning: constant folding and the interval/contradiction
// analysis behind L001/L002 (analyze/mask_check.h).
#include <gtest/gtest.h>

#include "analyze/mask_check.h"
#include "lang/mask_parser.h"

namespace ode {
namespace {

MaskTruth TruthOf(const char* text) {
  Result<MaskExprPtr> mask = ParseMask(text);
  EXPECT_TRUE(mask.ok()) << text << ": " << mask.status().ToString();
  if (!mask.ok()) return MaskTruth::kUnknown;
  return AnalyzeMaskTruth(**mask);
}

TEST(FoldMaskConstTest, Literals) {
  Result<MaskExprPtr> mask = ParseMask("1 + 2 * 3");
  ASSERT_TRUE(mask.ok());
  std::optional<Value> v = FoldMaskConst(**mask);
  ASSERT_TRUE(v.has_value());
  Result<double> d = v->AsDouble();
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, 7.0);
}

TEST(FoldMaskConstTest, NonConstantDoesNotFold) {
  Result<MaskExprPtr> mask = ParseMask("q + 1");
  ASSERT_TRUE(mask.ok());
  EXPECT_FALSE(FoldMaskConst(**mask).has_value());
}

TEST(FoldMaskConstTest, ShortCircuitFoldsPastNonConstant) {
  // Masks are side-effect free, so `false && q > 0` folds to false even
  // though q does not.
  Result<MaskExprPtr> mask = ParseMask("1 > 2 && q > 0");
  ASSERT_TRUE(mask.ok());
  std::optional<Value> v = FoldMaskConst(**mask);
  ASSERT_TRUE(v.has_value());
  EXPECT_FALSE(v->Truthy());
}

TEST(MaskTruthTest, ConstantMasks) {
  EXPECT_EQ(TruthOf("1 + 2 == 3"), MaskTruth::kAlways);
  EXPECT_EQ(TruthOf("true && false"), MaskTruth::kNever);
  EXPECT_EQ(TruthOf("!(5 > 3)"), MaskTruth::kNever);
  EXPECT_EQ(TruthOf("\"a\" == \"a\""), MaskTruth::kAlways);
}

TEST(MaskTruthTest, IntervalContradictions) {
  EXPECT_EQ(TruthOf("q > 100 && q < 50"), MaskTruth::kNever);
  EXPECT_EQ(TruthOf("q > 10 && q <= 10"), MaskTruth::kNever);
  EXPECT_EQ(TruthOf("q == 5 && q != 5"), MaskTruth::kNever);
  EXPECT_EQ(TruthOf("q == 5 && q == 6"), MaskTruth::kNever);
  EXPECT_EQ(TruthOf("q >= 10 && q <= 10 && q != 10"), MaskTruth::kNever);
  EXPECT_EQ(TruthOf("100 < q && 50 > q"), MaskTruth::kNever);  // Flipped.
}

TEST(MaskTruthTest, SatisfiableIntervalsStayUnknown) {
  EXPECT_EQ(TruthOf("q > 100 && q < 200"), MaskTruth::kUnknown);
  EXPECT_EQ(TruthOf("q >= 10 && q <= 10"), MaskTruth::kUnknown);
  EXPECT_EQ(TruthOf("q > 0"), MaskTruth::kUnknown);
  // Facts about different terms must not interfere.
  EXPECT_EQ(TruthOf("a > 100 && b < 50"), MaskTruth::kUnknown);
}

TEST(MaskTruthTest, BooleanContradictionAndTautology) {
  EXPECT_EQ(TruthOf("x && !x"), MaskTruth::kNever);
  EXPECT_EQ(TruthOf("x || !x"), MaskTruth::kAlways);
  EXPECT_EQ(TruthOf("x && y && !x"), MaskTruth::kNever);
}

TEST(MaskTruthTest, OrCoverageTautology) {
  // The union of comparisons covers every value: complement intersection
  // is empty.
  EXPECT_EQ(TruthOf("q > 100 || q <= 100"), MaskTruth::kAlways);
  EXPECT_EQ(TruthOf("q > 0 || q < 10"), MaskTruth::kAlways);
  EXPECT_EQ(TruthOf("q != 5 || q == 5"), MaskTruth::kAlways);
  // A gap remains: not a tautology.
  EXPECT_EQ(TruthOf("q > 0 || q < -10"), MaskTruth::kUnknown);
  EXPECT_EQ(TruthOf("q > 100 || q < 100"), MaskTruth::kUnknown);  // q == 100.
}

TEST(MaskTruthTest, NotInverts) {
  EXPECT_EQ(TruthOf("!(q > 100 && q < 50)"), MaskTruth::kAlways);
  EXPECT_EQ(TruthOf("!(q > 100 || q <= 100)"), MaskTruth::kNever);
}

TEST(MaskTruthTest, NestedConjunctionsFlatten) {
  EXPECT_EQ(TruthOf("(q > 100 && p > 0) && q < 50"), MaskTruth::kNever);
  EXPECT_EQ(TruthOf("q > 100 && (p > 0 && q < 50)"), MaskTruth::kNever);
}

TEST(MaskTruthTest, UndecidableShapesStayUnknown) {
  EXPECT_EQ(TruthOf("f(q) > 0 && f(q) < 0"), MaskTruth::kNever);  // Same key.
  EXPECT_EQ(TruthOf("a.b > 0"), MaskTruth::kUnknown);
  // Decided by the linear solver (interval engine alone could not).
  EXPECT_EQ(TruthOf("q * 2 > 10 && q < 1"), MaskTruth::kNever);
}

}  // namespace
}  // namespace ode
