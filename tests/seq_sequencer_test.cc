// Sequencer unit tests (src/seq/, docs/SEQUENCER.md): class-scope
// evaluation as its own pipeline stage. Covers the ordering/watermark
// contract, the drain barrier, quiesced (de)activation under load,
// bounded-queue backpressure, the durable order log (write-behind +
// recovery parity + replay dedup), and the metrics surface.
#include "seq/sequencer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "ode/database.h"
#include "seq/order_log.h"
#include "test_util.h"

namespace ode {
namespace {

Status CountAction(const ActionContext& ctx) {
  Result<Value> t = ctx.db->PeekAttr(ctx.self, "touches");
  if (!t.ok()) return t.status();
  Result<Value> next = t->Add(Value(1));
  if (!next.ok()) return next.status();
  return ctx.db->SetAttr(ctx.txn, ctx.self, "touches", *next);
}

/// A counter class with one §9 class-scope trigger: every third `add`
/// across ALL instances fires `count` on the posting instance.
void SetUpClass(Database* db) {
  ClassDef def("scell");
  def.AddAttr("v", Value(0));
  def.AddAttr("touches", Value(0));
  def.AddMethod(MethodDef{
      "add",
      {{"int", "d"}},
      MethodKind::kUpdate,
      [](MethodContext* ctx) -> Status {
        ODE_ASSIGN_OR_RETURN(Value v, ctx->Get("v"));
        ODE_ASSIGN_OR_RETURN(Value d, ctx->Arg("d"));
        ODE_ASSIGN_OR_RETURN(Value next, v.Add(d));
        return ctx->Set("v", next);
      }});
  def.AddTrigger("CT(): perpetual every 3 (after add) ==> count");
  ODE_ASSERT_OK(db->RegisterAction("count", CountAction));
  ODE_ASSERT_OK(db->RegisterClass(std::move(def)).status());
}

Oid MakeObject(Database* db) {
  TxnId t = db->Begin().value();
  Oid oid = db->New(t, "scell").value();
  EXPECT_TRUE(db->Commit(t).ok());
  return oid;
}

void PostAdds(Database* db, Oid oid, int n) {
  for (int i = 0; i < n; ++i) {
    TxnId t = db->Begin().value();
    ODE_ASSERT_OK(db->Call(t, oid, "add", {Value(1)}).status());
    ODE_ASSERT_OK(db->Commit(t));
  }
}

std::string TempDir(const char* tag) {
  std::string tmpl = std::string("/tmp/ode_seq_test_") + tag + "_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  EXPECT_NE(mkdtemp(buf.data()), nullptr);
  return std::string(buf.data());
}

TEST(SequencerTest, ClassTriggerFiresThroughSequencer) {
  Database db;
  SetUpClass(&db);
  Oid oid = MakeObject(&db);
  ODE_ASSERT_OK(db.ActivateClassTrigger("scell", "CT"));

  seq::Sequencer::Options options;
  options.num_lanes = 2;  // One "shard" lane + the external lane.
  seq::Sequencer sequencer(&db, options);
  db.AttachSequencer(&sequencer);
  ODE_ASSERT_OK(sequencer.Start());

  constexpr int kAdds = 30;
  PostAdds(&db, oid, kAdds);
  sequencer.WaitDrained();

  // The merged stream saw kAdds `add` symbols; every third fires. The
  // action runs asynchronously but WaitDrained is an apply barrier.
  EXPECT_EQ(db.ClassFireCount("scell", "CT"), kAdds / 3);
  EXPECT_EQ(db.PeekAttr(oid, "touches").value().AsInt().value(), kAdds / 3);

  seq::SequencerMetricsSnapshot m = sequencer.Metrics();
  EXPECT_TRUE(m.enabled);
  // Publishing is slot-existence-based: every posted event (method AND
  // txn events) flows through once a class-scope slot exists.
  EXPECT_GE(m.published, static_cast<uint64_t>(kAdds));
  EXPECT_EQ(m.sequenced, m.published);
  EXPECT_EQ(m.firings, static_cast<uint64_t>(kAdds / 3));
  EXPECT_EQ(m.dropped, 0u);
  EXPECT_EQ(m.apply_errors, 0u);
  EXPECT_EQ(m.queue_depth, 0u);

  sequencer.Stop();
  db.DetachSequencer();
}

TEST(SequencerTest, LaneWatermarksTrackPerLanePublishes) {
  Database db;
  SetUpClass(&db);
  Oid a = MakeObject(&db);
  Oid b = MakeObject(&db);
  ODE_ASSERT_OK(db.ActivateClassTrigger("scell", "CT"));

  seq::Sequencer::Options options;
  options.num_lanes = 3;  // Two registered lanes + external.
  seq::Sequencer sequencer(&db, options);
  db.AttachSequencer(&sequencer);
  ODE_ASSERT_OK(sequencer.Start());

  constexpr int kPerLane = 24;
  std::thread t0([&] {
    seq::SetThreadPublisherLane(0);
    PostAdds(&db, a, kPerLane);
  });
  std::thread t1([&] {
    seq::SetThreadPublisherLane(1);
    PostAdds(&db, b, kPerLane);
  });
  t0.join();
  t1.join();
  sequencer.WaitDrained();

  EXPECT_EQ(db.ClassFireCount("scell", "CT"), 2 * kPerLane / 3);

  // Watermarks are "highest lane_seq applied"; after a drain with no
  // publisher in flight they equal the lane counters, and the external
  // lane (unused here) stays at zero.
  seq::SequencerMetricsSnapshot m = sequencer.Metrics();
  std::vector<uint64_t> counters = sequencer.LaneCounters();
  ASSERT_EQ(m.lane_watermark.size(), 3u);
  ASSERT_EQ(counters.size(), 3u);
  EXPECT_EQ(m.lane_watermark[0], counters[0]);
  EXPECT_EQ(m.lane_watermark[1], counters[1]);
  // Inert-event filtering: exactly the `after add` postings enter the
  // stream — txn markers and before-events classify OTHER and CT's
  // automaton provably ignores them (TriggerProgram::other_inert).
  EXPECT_EQ(counters[0], static_cast<uint64_t>(kPerLane));
  EXPECT_EQ(counters[1], static_cast<uint64_t>(kPerLane));
  EXPECT_EQ(counters[2], 0u);
  EXPECT_EQ(m.sequenced, counters[0] + counters[1]);

  sequencer.Stop();
  db.DetachSequencer();
}

TEST(SequencerTest, TinyQueueBackpressureLosesNothing) {
  Database db;
  SetUpClass(&db);
  Oid oid = MakeObject(&db);
  ODE_ASSERT_OK(db.ActivateClassTrigger("scell", "CT"));

  seq::Sequencer::Options options;
  options.num_lanes = 2;
  options.queue_capacity = 4;  // Publishers must block, never lose.
  seq::Sequencer sequencer(&db, options);
  db.AttachSequencer(&sequencer);
  ODE_ASSERT_OK(sequencer.Start());

  constexpr int kAdds = 60;
  PostAdds(&db, oid, kAdds);
  sequencer.WaitDrained();

  EXPECT_EQ(db.ClassFireCount("scell", "CT"), kAdds / 3);
  seq::SequencerMetricsSnapshot m = sequencer.Metrics();
  EXPECT_EQ(m.sequenced, m.published);
  EXPECT_EQ(m.dropped, 0u);
  EXPECT_LE(m.queue_high_water, options.queue_capacity);

  sequencer.Stop();
  db.DetachSequencer();
}

TEST(SequencerTest, ActivationQuiescesUnderConcurrentPosting) {
  Database db;
  SetUpClass(&db);
  Oid oid = MakeObject(&db);

  seq::Sequencer::Options options;
  options.num_lanes = 2;
  seq::Sequencer sequencer(&db, options);
  db.AttachSequencer(&sequencer);
  ODE_ASSERT_OK(sequencer.Start());

  // One thread hammers posts while another toggles the class trigger:
  // every toggle runs under ExecuteQuiesced, so slot structure mutates
  // only with publishers gated out and the pipeline drained (TSan turns
  // a violated barrier into a hard failure).
  std::atomic<bool> stop{false};
  std::thread poster([&] {
    seq::SetThreadPublisherLane(0);
    while (!stop.load(std::memory_order_relaxed)) {
      PostAdds(&db, oid, 5);
    }
  });
  for (int i = 0; i < 20; ++i) {
    ODE_ASSERT_OK(db.ActivateClassTrigger("scell", "CT"));
    ODE_ASSERT_OK(db.DeactivateClassTrigger("scell", "CT"));
  }
  ODE_ASSERT_OK(db.ActivateClassTrigger("scell", "CT"));
  stop.store(true);
  poster.join();
  sequencer.WaitDrained();

  EXPECT_TRUE(db.ClassTriggerActive("scell", "CT").value());
  seq::SequencerMetricsSnapshot m = sequencer.Metrics();
  EXPECT_EQ(m.apply_errors, 0u);
  EXPECT_EQ(m.queue_depth, 0u);

  sequencer.Stop();
  db.DetachSequencer();
}

TEST(SequencerTest, OrderLogRecoveryReproducesFirings) {
  const std::string dir = TempDir("orderlog");
  const std::string path = seq::OrderLogPath(dir);
  constexpr int kAdds = 25;  // Not a multiple of 3: automaton ends mid-count.

  // Run 1: sequencer with a durable order log.
  uint64_t original_fires = 0;
  uint64_t original_sequenced = 0;
  {
    Database db;
    SetUpClass(&db);
    Oid oid = MakeObject(&db);
    ODE_ASSERT_OK(db.ActivateClassTrigger("scell", "CT"));

    seq::OrderLogWriter writer;
    wal::WalOptions wal_options;
    wal_options.fsync = wal::FsyncPolicy::kAlways;
    ODE_ASSERT_OK(writer.Open(path, wal_options));

    seq::Sequencer::Options options;
    options.num_lanes = 2;
    options.order_log = &writer;
    seq::Sequencer sequencer(&db, options);
    db.AttachSequencer(&sequencer);
    ODE_ASSERT_OK(sequencer.Start());
    PostAdds(&db, oid, kAdds);
    sequencer.WaitDrained();
    original_fires = db.ClassFireCount("scell", "CT");
    original_sequenced = sequencer.Metrics().sequenced;
    sequencer.Stop();
    db.DetachSequencer();
  }
  EXPECT_EQ(original_fires, kAdds / 3);

  // The log records exactly the applied order (write-behind, synced by
  // Stop): one record per sequenced event, per-lane seqs contiguous.
  Result<seq::OrderLogReadResult> logged = seq::ReadOrderLog(path);
  ODE_ASSERT_OK(logged.status());
  EXPECT_FALSE(logged->torn);
  ASSERT_EQ(logged->records.size(), original_sequenced);
  uint64_t expect_seq = 0;
  for (const seq::SeqEvent& r : logged->records) {
    ASSERT_EQ(r.lane, 1u);  // Unregistered poster → external lane.
    EXPECT_EQ(r.lane_seq, ++expect_seq);
  }

  // Run 2: a fresh database (class re-registered, trigger re-activated —
  // the snapshot's job in real recovery) re-applies the logged order and
  // lands in the identical automaton state, firing identically.
  {
    Database db;
    SetUpClass(&db);
    Oid oid = MakeObject(&db);
    (void)oid;
    ODE_ASSERT_OK(db.ActivateClassTrigger("scell", "CT"));

    seq::Sequencer::Options options;
    options.num_lanes = 2;
    seq::Sequencer sequencer(&db, options);
    db.AttachSequencer(&sequencer);
    for (const seq::SeqEvent& r : logged->records) {
      ODE_ASSERT_OK(sequencer.ApplyRecovered(r));
    }
    EXPECT_EQ(db.ClassFireCount("scell", "CT"), original_fires);

    // Replay dedup: shard-WAL replay would now re-publish these events
    // with regenerated identical lane seqs; everything at or below the
    // recovered watermark must be dropped, not double-applied.
    seq::SequencerMetricsSnapshot m = sequencer.Metrics();
    ASSERT_EQ(m.lane_watermark.size(), 2u);
    EXPECT_EQ(m.lane_watermark[1], original_sequenced);
    EXPECT_EQ(m.replay_deduped, 0u);
    sequencer.BeginReplayDedup();
    ODE_ASSERT_OK(sequencer.Start());
    {
      Oid oid2 = logged->records.front().oid;
      (void)oid2;
      // Re-publish through the public path from the external lane: the
      // lane counter starts at zero again, so the regenerated seqs all
      // fall at or below the watermark.
      for (const seq::SeqEvent& r : logged->records) {
        seq::Sequencer::PublishScope scope(&sequencer);
        seq::SeqEvent copy = r;
        copy.lane_seq = 0;  // Reassigned by Publish.
        EXPECT_TRUE(sequencer.Publish(std::move(copy)));
      }
    }
    sequencer.WaitDrained();
    sequencer.FinishReplay();
    m = sequencer.Metrics();
    EXPECT_EQ(m.replay_deduped, original_sequenced);
    // Nothing was applied twice: fire count unchanged.
    EXPECT_EQ(db.ClassFireCount("scell", "CT"), original_fires);

    sequencer.Stop();
    db.DetachSequencer();
  }

  std::remove(path.c_str());
  std::remove(dir.c_str());
}

TEST(SequencerTest, RestoreLaneCountersResumesNumbering) {
  Database db;
  SetUpClass(&db);
  Oid oid = MakeObject(&db);
  ODE_ASSERT_OK(db.ActivateClassTrigger("scell", "CT"));

  seq::Sequencer::Options options;
  options.num_lanes = 2;
  seq::Sequencer sequencer(&db, options);
  db.AttachSequencer(&sequencer);
  // A checkpoint recorded lane counters {7, 3}: post-recovery publishes
  // must continue from there so replayed shards regenerate the original
  // run's numbering.
  sequencer.RestoreLaneCounters({7, 3});
  ODE_ASSERT_OK(sequencer.Start());

  PostAdds(&db, oid, 3);  // External lane (1): seqs 4, 5, ...
  sequencer.WaitDrained();

  std::vector<uint64_t> counters = sequencer.LaneCounters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0], 7u);  // Untouched lane keeps its floor.
  EXPECT_GT(counters[1], 3u);
  seq::SequencerMetricsSnapshot m = sequencer.Metrics();
  EXPECT_EQ(m.lane_watermark[1], counters[1]);

  sequencer.Stop();
  db.DetachSequencer();
}

}  // namespace
}  // namespace ode
