// Multi-threaded front-end tests for IngestServer: worker dispatch under
// connection churn, the non-blocking shard handoff (a kBlock-full shard
// parks only the posting connection), and the server edge cases fixed
// alongside the threading rework — non-blocking connection-limit
// rejection, the malformed-frame ERR surviving a full write buffer, and
// Stop() flushing each connection's earned ACK watermark.
#include <gtest/gtest.h>

#include <stdlib.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "ode/database.h"
#include "runtime/ingest_runtime.h"
#include "test_util.h"

namespace ode {
namespace net {
namespace {

using runtime::BackpressurePolicy;
using runtime::IngestOptions;
using runtime::IngestRuntime;

// `count` bumps `touches` — the standard observable action.
Status CountAction(const ActionContext& ctx) {
  ODE_ASSIGN_OR_RETURN(Value t, ctx.db->PeekAttr(ctx.self, "touches"));
  ODE_ASSIGN_OR_RETURN(Value next, t.Add(Value(1)));
  return ctx.db->SetAttr(ctx.txn, ctx.self, "touches", next);
}

// Parity class (same construction as net_e2e_test): batching-insensitive
// triggers, so multi-worker ingest must reproduce the single-threaded
// outcome exactly.
ClassDef ParityClass() {
  ClassDef def("cell");
  def.AddAttr("v", Value(0));
  def.AddAttr("touches", Value(0));
  def.AddMethod(MethodDef{
      "add",
      {{"int", "d"}},
      MethodKind::kUpdate,
      [](MethodContext* ctx) -> Status {
        ODE_ASSIGN_OR_RETURN(Value v, ctx->Get("v"));
        ODE_ASSIGN_OR_RETURN(Value d, ctx->Arg("d"));
        ODE_ASSIGN_OR_RETURN(Value next, v.Add(d));
        return ctx->Set("v", next);
      }});
  def.AddMethod(MethodDef{"peek", {}, MethodKind::kReadOnly, nullptr});
  def.AddTrigger("T1(): perpetual every 3 (after add) ==> count");
  def.AddTrigger("T2(): perpetual after add (d) && d > 50 ==> count");
  def.AddTrigger("T3(): perpetual relative(after add, after peek) ==> count");
  return def;
}

std::vector<Oid> SetupParityDb(Database* db, size_t num_objects) {
  EXPECT_TRUE(db->RegisterAction("count", CountAction).ok());
  EXPECT_TRUE(db->RegisterClass(ParityClass()).status().ok());
  std::vector<Oid> oids;
  TxnId t = db->Begin().value();
  for (size_t i = 0; i < num_objects; ++i) {
    Result<Oid> oid = db->New(t, "cell");
    EXPECT_TRUE(oid.ok()) << oid.status().ToString();
    oids.push_back(*oid);
    for (const char* trig : {"T1", "T2", "T3"}) {
      ODE_EXPECT_OK(db->ActivateTrigger(t, *oid, trig));
    }
  }
  ODE_EXPECT_OK(db->Commit(t));
  return oids;
}

struct WorkItem {
  size_t obj;
  bool is_add;
  int delta;
};

std::vector<WorkItem> MakeWorkload(size_t num_objects, size_t num_events,
                                   uint32_t seed) {
  uint64_t state = seed * 2654435761u + 1;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  std::vector<WorkItem> work;
  work.reserve(num_events);
  for (size_t i = 0; i < num_events; ++i) {
    WorkItem w;
    w.obj = next() % num_objects;
    w.is_add = next() % 4 != 0;
    w.delta = static_cast<int>(next() % 100);
    work.push_back(w);
  }
  return work;
}

/// Full server+runtime fixture over the parity schema.
struct Rig {
  explicit Rig(IngestOptions ingest_options = {}, size_t num_objects = 16,
               ServerOptions server_options = {})
      : oids(SetupParityDb(&db, num_objects)),
        rt(&db, ingest_options),
        server(&rt, server_options) {
    ODE_EXPECT_OK(rt.Start());
    ODE_EXPECT_OK(server.Start());
  }

  ClientOptions Client() const {
    ClientOptions options;
    options.port = server.port();
    options.recv_timeout_ms = 30000;
    return options;
  }

  Database db;
  std::vector<Oid> oids;
  IngestRuntime rt;
  IngestServer server;
};

// 8 identified clients against 4 IO workers, each thread dropping and
// redialing its connection every 1500 events. Churn moves connections
// across workers while replay dedup keeps delivery exactly-once, so the
// multi-worker server must still match the single-threaded oracle.
TEST(NetMtTest, MultiWorkerChurnMatchesOracle) {
  constexpr size_t kThreads = 8;
  constexpr size_t kObjectsPerThread = 2;
  constexpr size_t kEventsPerThread = 6000;
  constexpr size_t kCloseEvery = 1500;

  IngestOptions ingest_options;
  ingest_options.num_shards = 4;
  ingest_options.queue_capacity = 2048;
  ingest_options.max_batch = 128;
  ServerOptions server_options;
  server_options.io_threads = 4;
  Rig rig(ingest_options, kThreads * kObjectsPerThread, server_options);
  ASSERT_EQ(rig.server.io_threads(), 4u);

  std::vector<std::vector<WorkItem>> work(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    work[t] = MakeWorkload(kObjectsPerThread, kEventsPerThread,
                           static_cast<uint32_t>(t + 1));
  }

  std::vector<Status> results(kThreads, Status::OK());
  std::vector<IngestClient::Stats> stats(kThreads);
  {
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        ClientOptions options = rig.Client();
        options.identity = "mt-churn-" + std::to_string(t);
        IngestClient client(options);
        Status s = client.Connect();
        size_t sent = 0;
        for (const WorkItem& w : work[t]) {
          if (!s.ok()) break;
          if (sent > 0 && sent % kCloseEvery == 0) {
            // Drop the connection mid-stream; the next Post redials and
            // replays the unacked pipeline under the durable identity.
            client.Close();
          }
          Oid oid = rig.oids[t * kObjectsPerThread + w.obj];
          s = w.is_add ? client.Post(oid, "add", {Value(w.delta)})
                       : client.Post(oid, "peek");
          ++sent;
        }
        if (s.ok()) s = client.Drain();
        results[t] = s;
        stats[t] = client.stats();
      });
    }
    for (std::thread& th : threads) th.join();
  }
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(results[t].ok())
        << "thread " << t << ": " << results[t].ToString();
    EXPECT_EQ(stats[t].posted, kEventsPerThread) << "thread " << t;
    EXPECT_EQ(stats[t].errors, 0u) << "thread " << t;
    EXPECT_GE(stats[t].reconnects, kEventsPerThread / kCloseEvery - 1)
        << "thread " << t;
  }

  // Exactly-once across the churn: every event applied once, none lost.
  runtime::RuntimeMetricsSnapshot snap = rig.rt.Metrics();
  EXPECT_EQ(snap.total.processed, kThreads * kEventsPerThread);
  EXPECT_EQ(snap.total.dropped, 0u);
  EXPECT_EQ(snap.total.dead_lettered, 0u);
  EXPECT_GE(rig.server.connections_accepted(),
            kThreads * (kEventsPerThread / kCloseEvery));

  Database oracle;
  std::vector<Oid> oracle_oids =
      SetupParityDb(&oracle, kThreads * kObjectsPerThread);
  for (size_t t = 0; t < kThreads; ++t) {
    for (const WorkItem& w : work[t]) {
      TxnId txn = oracle.Begin().value();
      Oid oid = oracle_oids[t * kObjectsPerThread + w.obj];
      Result<Value> r = w.is_add
                            ? oracle.Call(txn, oid, "add", {Value(w.delta)})
                            : oracle.Call(txn, oid, "peek");
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      ODE_ASSERT_OK(oracle.Commit(txn));
    }
  }
  for (size_t i = 0; i < rig.oids.size(); ++i) {
    Result<Value> v = rig.db.PeekAttr(rig.oids[i], "v");
    Result<Value> ov = oracle.PeekAttr(oracle_oids[i], "v");
    Result<Value> touches = rig.db.PeekAttr(rig.oids[i], "touches");
    Result<Value> otouches = oracle.PeekAttr(oracle_oids[i], "touches");
    ASSERT_TRUE(v.ok() && ov.ok() && touches.ok() && otouches.ok());
    EXPECT_EQ(v->AsInt().value(), ov->AsInt().value()) << "object " << i;
    EXPECT_EQ(touches->AsInt().value(), otouches->AsInt().value())
        << "object " << i;
  }
}

// A latch the shard worker parks on inside a method body, wedging its
// shard until the test opens it.
struct Latch {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;

  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return open; });
  }
  void Open() {
    std::lock_guard<std::mutex> lock(mu);
    open = true;
    cv.notify_all();
  }
};

// "gcell": `add` is the fast path, `gate` parks the shard worker on the
// latch — a deterministic stand-in for a slow consumer.
ClassDef GateClass(Latch* latch) {
  ClassDef def("gcell");
  def.AddAttr("v", Value(0));
  def.AddMethod(MethodDef{
      "add",
      {{"int", "d"}},
      MethodKind::kUpdate,
      [](MethodContext* ctx) -> Status {
        ODE_ASSIGN_OR_RETURN(Value v, ctx->Get("v"));
        ODE_ASSIGN_OR_RETURN(Value d, ctx->Arg("d"));
        ODE_ASSIGN_OR_RETURN(Value next, v.Add(d));
        return ctx->Set("v", next);
      }});
  def.AddMethod(MethodDef{
      "gate",
      {},
      MethodKind::kUpdate,
      [latch](MethodContext* ctx) -> Status {
        latch->Wait();
        ODE_ASSIGN_OR_RETURN(Value v, ctx->Get("v"));
        ODE_ASSIGN_OR_RETURN(Value next, v.Add(Value(1)));
        return ctx->Set("v", next);
      }});
  return def;
}

// The head-of-line regression test: with kBlock backpressure and a wedged
// shard, the old server's blocking Post() froze the whole IO loop. The
// TryPost handoff must instead park only the posting connection — a
// second connection on the SAME worker (io_threads = 1) keeps posting to
// the healthy shard and answering pings while the victim's frames sit in
// its deferred queue. Opening the latch drains everything exactly once.
TEST(NetMtTest, FullShardParksOnlyThePostingConnection) {
  constexpr int kGatePosts = 30;
  constexpr int kHealthyPosts = 500;

  Latch latch;
  Database db;
  ASSERT_TRUE(db.RegisterClass(GateClass(&latch)).status().ok());
  std::vector<Oid> oids;
  {
    TxnId t = db.Begin().value();
    for (int i = 0; i < 16; ++i) oids.push_back(db.New(t, "gcell").value());
    ODE_ASSERT_OK(db.Commit(t));
  }

  IngestOptions ingest_options;
  ingest_options.num_shards = 2;
  ingest_options.queue_capacity = 8;
  ingest_options.max_batch = 4;
  ingest_options.backpressure = BackpressurePolicy::kBlock;
  IngestRuntime rt(&db, ingest_options);
  ODE_ASSERT_OK(rt.Start());

  ServerOptions server_options;
  server_options.io_threads = 1;  // Isolation must hold within one worker.
  server_options.max_deferred_frames = 8;
  server_options.ack_every = 1;
  IngestServer server(&rt, server_options);
  ODE_ASSERT_OK(server.Start());

  Oid victim_oid = oids[0];
  size_t victim_shard = rt.ShardOf(victim_oid);
  Oid healthy_oid;
  bool found = false;
  for (const Oid& oid : oids) {
    if (rt.ShardOf(oid) != victim_shard) {
      healthy_oid = oid;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found) << "no oid landed on the other shard";

  ClientOptions client_options;
  client_options.port = server.port();
  client_options.recv_timeout_ms = 30000;
  client_options.auto_reconnect = false;

  // Wedge the victim shard: the first gate post parks its worker on the
  // latch, the rest fill the in-flight batch + queue, and the overflow
  // must land in the connection's deferred queue.
  IngestClient victim(client_options);
  ODE_ASSERT_OK(victim.Connect());
  for (int i = 0; i < kGatePosts; ++i) {
    ODE_ASSERT_OK(victim.Post(victim_oid, "gate"));
  }
  ODE_ASSERT_OK(victim.Flush());
  for (int spin = 0; spin < 2000 && server.frames_deferred() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GT(server.frames_deferred(), 0u)
      << "full shard never parked a frame";

  // The victim is parked; a healthy connection on the same worker must
  // still make full progress. Everything below happens while the latch is
  // closed, so success here *is* the absence of head-of-line blocking.
  IngestClient healthy(client_options);
  ODE_ASSERT_OK(healthy.Connect());
  for (int i = 0; i < kHealthyPosts; ++i) {
    ODE_ASSERT_OK(healthy.Post(healthy_oid, "add", {Value(1)}));
  }
  ODE_ASSERT_OK(healthy.Flush());
  ODE_ASSERT_OK(healthy.Ping());
  for (int spin = 0; spin < 2000; ++spin) {
    if (rt.Metrics().shards[1 - victim_shard].processed >=
        static_cast<uint64_t>(kHealthyPosts)) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  runtime::RuntimeMetricsSnapshot mid = rt.Metrics();
  EXPECT_EQ(mid.shards[1 - victim_shard].processed,
            static_cast<uint64_t>(kHealthyPosts));
  // The victim shard is still parked inside the first gate body.
  EXPECT_EQ(mid.shards[victim_shard].processed, 0u);

  // Release the wedge; the capacity wakeups retry the deferral and the
  // victim's barrier completes with every post applied exactly once.
  latch.Open();
  ODE_ASSERT_OK(victim.Drain());
  ODE_ASSERT_OK(healthy.Drain());
  EXPECT_EQ(db.PeekAttr(victim_oid, "v").value().AsInt().value(), kGatePosts);
  EXPECT_EQ(db.PeekAttr(healthy_oid, "v").value().AsInt().value(),
            kHealthyPosts);
  runtime::RuntimeMetricsSnapshot snap = rt.Metrics();
  EXPECT_EQ(snap.total.processed,
            static_cast<uint64_t>(kGatePosts + kHealthyPosts));
  EXPECT_EQ(snap.total.dropped, 0u);
  EXPECT_EQ(snap.total.rejected, 0u);

  server.Stop();
  ODE_ASSERT_OK(rt.Stop());
}

// Connection-limit rejections must be best-effort and non-blocking: a
// flood of over-limit dials each gets the courtesy ERR + close (when the
// socket accepts it), and the acceptor never wedges on a peer that is not
// reading — the admitted connection stays fully responsive throughout.
TEST(NetMtTest, ConnectionLimitRejectIsBestEffort) {
  ServerOptions server_options;
  server_options.max_connections = 1;
  server_options.io_threads = 2;
  Rig rig({}, 4, server_options);

  IngestClient admitted(rig.Client());
  ODE_ASSERT_OK(admitted.Connect());
  ODE_ASSERT_OK(admitted.Ping());  // Round trip ⇒ the slot is occupied.

  // Flood with raw dials that never read. Each must observe the courtesy
  // ERR and then EOF; none may wedge the acceptor.
  std::vector<Socket> rejected;
  for (int i = 0; i < 5; ++i) {
    Result<Socket> sock = TcpConnect("127.0.0.1", rig.server.port());
    ODE_ASSERT_OK(sock.status());
    rejected.push_back(std::move(*sock));
  }
  for (Socket& sock : rejected) {
    FrameDecoder decoder;
    Frame frame;
    bool got_err = false;
    bool closed = false;
    char chunk[4096];
    while (!closed) {
      ssize_t n = ::recv(sock.fd(), chunk, sizeof(chunk), 0);
      if (n <= 0) {
        closed = true;
        break;
      }
      decoder.Append(chunk, static_cast<size_t>(n));
      while (decoder.Next(&frame) == FrameDecoder::State::kFrame) {
        EXPECT_EQ(frame.type, FrameType::kErr);
        got_err = true;
      }
    }
    EXPECT_TRUE(got_err) << "over-limit dial got no courtesy ERR";
    EXPECT_TRUE(closed);
  }

  // The admitted connection never noticed the flood.
  ODE_ASSERT_OK(admitted.Post(rig.oids[0], "add", {Value(1)}));
  ODE_ASSERT_OK(admitted.Drain());
  EXPECT_EQ(rig.db.PeekAttr(rig.oids[0], "v").value().AsInt().value(), 1);

  // Freeing the slot re-admits: dropping the client must eventually let a
  // fresh dial through the limit check.
  admitted.Close();
  Status readmitted = Status::Unavailable("never re-admitted");
  for (int spin = 0; spin < 2000; ++spin) {
    IngestClient next(rig.Client());
    Status s = next.Connect();
    if (s.ok()) s = next.Ping();
    if (s.ok()) {
      readmitted = Status::OK();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ODE_EXPECT_OK(readmitted);
}

// Regression: a malformed frame arriving behind enough pending replies to
// overflow max_write_buffer must still get its promised ERR_MALFORMED —
// the over-limit close path owes the connection one final best-effort
// flush. (max_write_buffer = 100 holds 7 of the 8 13-byte ACKs, so the
// batch + ERR overflows it on any read split.)
TEST(NetMtTest, MalformedFrameErrSurvivesFullWriteBuffer) {
  ServerOptions server_options;
  server_options.ack_every = 1;
  server_options.max_write_buffer = 100;
  Rig rig({}, 4, server_options);

  Result<Socket> sock = TcpConnect("127.0.0.1", rig.server.port());
  ODE_ASSERT_OK(sock.status());
  std::string wire;
  for (uint64_t seq = 1; seq <= 8; ++seq) {
    ODE_ASSERT_OK(AppendPost(&wire, seq, rig.oids[0], "add", {Value(1)}));
  }
  // A header declaring a payload far beyond kMaxFramePayload.
  const char garbage[] = {'\xFF', '\xFF', '\xFF', '\xFF', '\x01'};
  wire.append(garbage, sizeof(garbage));
  ASSERT_EQ(::send(sock->fd(), wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));

  FrameDecoder decoder;
  Frame frame;
  bool got_err = false;
  uint64_t ack_watermark = 0;
  bool closed = false;
  char chunk[4096];
  while (!closed) {
    ssize_t n = ::recv(sock->fd(), chunk, sizeof(chunk), 0);
    if (n <= 0) {
      closed = true;
      break;
    }
    decoder.Append(chunk, static_cast<size_t>(n));
    while (decoder.Next(&frame) == FrameDecoder::State::kFrame) {
      if (frame.type == FrameType::kAck) {
        ack_watermark = frame.seq;
      } else {
        EXPECT_EQ(frame.type, FrameType::kErr);
        EXPECT_EQ(frame.error, WireError::kMalformed);
        got_err = true;
      }
    }
  }
  EXPECT_TRUE(got_err) << "over-buffer close dropped the promised ERR";
  EXPECT_TRUE(closed);
  EXPECT_EQ(ack_watermark, 8u);
}

// Regression: Stop() must flush each connection's earned-but-unsent ACK
// watermark before closing. With the default ack cadence (1024) nothing
// has been acked mid-session, so the watermark rides entirely on the
// shutdown flush.
TEST(NetMtTest, StopFlushesEarnedAckWatermark) {
  constexpr uint64_t kPosts = 5;
  Rig rig;

  Result<Socket> sock = TcpConnect("127.0.0.1", rig.server.port());
  ODE_ASSERT_OK(sock.status());
  std::string wire;
  for (uint64_t seq = 1; seq <= kPosts; ++seq) {
    ODE_ASSERT_OK(AppendPost(&wire, seq, rig.oids[0], "add", {Value(1)}));
  }
  ASSERT_EQ(::send(sock->fd(), wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));
  for (int spin = 0; spin < 2000 && rig.rt.Metrics().total.enqueued < kPosts;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(rig.rt.Metrics().total.enqueued, kPosts);

  rig.server.Stop();

  FrameDecoder decoder;
  Frame frame;
  uint64_t ack_watermark = 0;
  bool closed = false;
  char chunk[4096];
  while (!closed) {
    ssize_t n = ::recv(sock->fd(), chunk, sizeof(chunk), 0);
    if (n <= 0) {
      closed = true;
      break;
    }
    decoder.Append(chunk, static_cast<size_t>(n));
    while (decoder.Next(&frame) == FrameDecoder::State::kFrame) {
      if (frame.type == FrameType::kAck) ack_watermark = frame.seq;
    }
  }
  EXPECT_TRUE(closed);
  EXPECT_EQ(ack_watermark, kPosts) << "Stop() stranded the ACK watermark";
}

}  // namespace
}  // namespace net
}  // namespace ode
