// Sequencer stress test — the TSan workload for class-scope triggers:
// many producers × several shards all feed ONE merged class automaton
// set through the sequencer, while a single-threaded standalone run of
// the same workload (no runtime, no sequencer — the inline §9 path the
// §4 oracle semantics define) provides the expected firings. The chosen
// triggers are insensitive to cross-shard interleaving, so the parallel
// run must match the oracle run exactly, not just approximately.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "ode/database.h"
#include "runtime/ingest_runtime.h"
#include "test_util.h"

namespace ode {
namespace {

using runtime::IngestOptions;
using runtime::IngestRuntime;
using runtime::RuntimeMetricsSnapshot;

Status CountAction(const ActionContext& ctx) {
  Result<Value> t = ctx.db->PeekAttr(ctx.self, "touches");
  if (!t.ok()) return t.status();
  Result<Value> next = t->Add(Value(1));
  if (!next.ok()) return next.status();
  return ctx.db->SetAttr(ctx.txn, ctx.self, "touches", *next);
}

/// Two class-scope triggers: a merged-stream counter (`every 3`) and a
/// masked one that only sees large deltas. Both are order-insensitive:
/// their firing counts depend only on the multiset of `add` events, so
/// any legal cross-shard merge produces the same totals.
ClassDef StressClass() {
  ClassDef def("mcell");
  def.AddAttr("v", Value(0));
  def.AddAttr("touches", Value(0));
  def.AddMethod(MethodDef{
      "add",
      {{"int", "d"}},
      MethodKind::kUpdate,
      [](MethodContext* ctx) -> Status {
        ODE_ASSIGN_OR_RETURN(Value v, ctx->Get("v"));
        ODE_ASSIGN_OR_RETURN(Value d, ctx->Arg("d"));
        ODE_ASSIGN_OR_RETURN(Value next, v.Add(d));
        return ctx->Set("v", next);
      }});
  def.AddTrigger("C1(): perpetual every 3 (after add) ==> count");
  def.AddTrigger("C2(): perpetual after add (d) && d > 50 ==> count");
  return def;
}

struct Post {
  size_t obj;
  int delta;
};

std::vector<Post> MakeWorkload(size_t objects, size_t events) {
  // Deterministic mix: deltas cycle 1..100, objects round-robin.
  std::vector<Post> work;
  work.reserve(events);
  for (size_t i = 0; i < events; ++i) {
    work.push_back(Post{i % objects, static_cast<int>(i % 100) + 1});
  }
  return work;
}

TEST(SeqStressTest, ShardedClassTriggersMatchSingleThreadedOracle) {
  constexpr size_t kObjects = 16;
  constexpr size_t kEvents = 4000;
  constexpr int kProducers = 4;
  const std::vector<Post> work = MakeWorkload(kObjects, kEvents);

  // Oracle: the same workload applied single-threaded, standalone — the
  // inline class-scope path (no sequencer attached).
  uint64_t oracle_c1 = 0;
  uint64_t oracle_c2 = 0;
  {
    Database db;
    ODE_ASSERT_OK(db.RegisterAction("count", CountAction));
    ODE_ASSERT_OK(db.RegisterClass(StressClass()).status());
    std::vector<Oid> oids;
    {
      TxnId t = db.Begin().value();
      for (size_t i = 0; i < kObjects; ++i) {
        oids.push_back(db.New(t, "mcell").value());
      }
      ODE_ASSERT_OK(db.Commit(t));
    }
    ODE_ASSERT_OK(db.ActivateClassTrigger("mcell", "C1"));
    ODE_ASSERT_OK(db.ActivateClassTrigger("mcell", "C2"));
    for (const Post& p : work) {
      TxnId t = db.Begin().value();
      ODE_ASSERT_OK(db.Call(t, oids[p.obj], "add", {Value(p.delta)}).status());
      ODE_ASSERT_OK(db.Commit(t));
    }
    oracle_c1 = db.ClassFireCount("mcell", "C1");
    oracle_c2 = db.ClassFireCount("mcell", "C2");
  }
  EXPECT_EQ(oracle_c1, kEvents / 3);
  // Deltas 51..100 of every 1..100 cycle pass the mask.
  EXPECT_EQ(oracle_c2, kEvents / 2);

  // Parallel run: 4 shards, 4 producers, same multiset of posts.
  {
    Database db;
    ODE_ASSERT_OK(db.RegisterAction("count", CountAction));
    ODE_ASSERT_OK(db.RegisterClass(StressClass()).status());
    std::vector<Oid> oids;
    {
      TxnId t = db.Begin().value();
      for (size_t i = 0; i < kObjects; ++i) {
        oids.push_back(db.New(t, "mcell").value());
      }
      ODE_ASSERT_OK(db.Commit(t));
    }
    ODE_ASSERT_OK(db.ActivateClassTrigger("mcell", "C1"));
    ODE_ASSERT_OK(db.ActivateClassTrigger("mcell", "C2"));

    IngestOptions opts;
    opts.num_shards = 4;
    opts.max_batch = 16;
    opts.queue_capacity = 128;
    opts.seq_queue_capacity = 256;  // Small enough to exercise blocking.
    IngestRuntime rt(&db, opts);
    ODE_ASSERT_OK(rt.Start());

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (size_t i = p; i < work.size(); i += kProducers) {
          ASSERT_TRUE(
              rt.Post(oids[work[i].obj], "add", {Value(work[i].delta)}).ok());
        }
      });
    }
    for (auto& t : producers) t.join();
    ODE_ASSERT_OK(rt.Drain());
    ODE_ASSERT_OK(rt.Stop());

    // Exact oracle parity — same firings, same per-object action effects
    // in total, same accumulator sums.
    EXPECT_EQ(db.ClassFireCount("mcell", "C1"), oracle_c1);
    EXPECT_EQ(db.ClassFireCount("mcell", "C2"), oracle_c2);
    int64_t touches = 0;
    int64_t total_v = 0;
    for (Oid oid : oids) {
      touches += db.PeekAttr(oid, "touches").value().AsInt().value();
      total_v += db.PeekAttr(oid, "v").value().AsInt().value();
    }
    EXPECT_EQ(touches, static_cast<int64_t>(oracle_c1 + oracle_c2));

    RuntimeMetricsSnapshot m = rt.Metrics();
    EXPECT_EQ(m.total.dead_lettered, 0u);
    EXPECT_TRUE(m.sequencer.enabled);
    EXPECT_EQ(m.sequencer.dropped, 0u);
    EXPECT_EQ(m.sequencer.apply_errors, 0u);
    EXPECT_EQ(m.sequencer.sequenced, m.sequencer.published);
    EXPECT_EQ(m.sequencer.firings, oracle_c1 + oracle_c2);
  }
}

TEST(SeqStressTest, DeactivationMidStreamIsAtomic) {
  // Toggling a class trigger while 4 shards publish: the quiesce barrier
  // means a toggle happens at a clean point of the total order — no torn
  // slot state, no lost events, no firing from a deactivated slot.
  constexpr size_t kObjects = 8;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 300;
  Database db;
  ODE_ASSERT_OK(db.RegisterAction("count", CountAction));
  ODE_ASSERT_OK(db.RegisterClass(StressClass()).status());
  std::vector<Oid> oids;
  {
    TxnId t = db.Begin().value();
    for (size_t i = 0; i < kObjects; ++i) {
      oids.push_back(db.New(t, "mcell").value());
    }
    ODE_ASSERT_OK(db.Commit(t));
  }
  ODE_ASSERT_OK(db.ActivateClassTrigger("mcell", "C1"));

  IngestOptions opts;
  opts.num_shards = 4;
  IngestRuntime rt(&db, opts);
  ODE_ASSERT_OK(rt.Start());

  // Bounded toggling: each toggle pays a full quiesce (gate + drain), so
  // an unbounded loop would throttle the producers to the toggle rate.
  std::thread toggler([&] {
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(db.DeactivateClassTrigger("mcell", "C1").ok());
      ASSERT_TRUE(db.ActivateClassTrigger("mcell", "C1").ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        for (Oid oid : oids) {
          ASSERT_TRUE(rt.Post(oid, "add", {Value(1)}).ok());
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  toggler.join();
  ODE_ASSERT_OK(rt.Drain());
  ODE_ASSERT_OK(rt.Stop());

  // Every add was applied exactly once whatever the toggling did…
  int64_t total_v = 0;
  for (Oid oid : oids) {
    total_v += db.PeekAttr(oid, "v").value().AsInt().value();
  }
  EXPECT_EQ(total_v, static_cast<int64_t>(kObjects) * kProducers *
                         kPerProducer);
  // …and the trigger survived the churn in a consistent final state.
  EXPECT_TRUE(db.ClassTriggerActive("mcell", "C1").value());
  RuntimeMetricsSnapshot m = rt.Metrics();
  EXPECT_EQ(m.total.dead_lettered, 0u);
  EXPECT_EQ(m.sequencer.apply_errors, 0u);
}

}  // namespace
}  // namespace ode
