// The §5 footnote-5 trigger-group planner (analyze/group_plan.h): cluster
// construction from pairwise findings, measured cost deltas, oracle
// validation, and G001 emission through AnalyzeSpecSource.

#include "analyze/group_plan.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analyze/analyzer.h"
#include "lang/event_parser.h"

namespace ode {
namespace {

const Diagnostic* Find(const std::vector<Diagnostic>& diags,
                       std::string_view id) {
  for (const Diagnostic& d : diags) {
    if (d.id == id) return &d;
  }
  return nullptr;
}

TEST(GroupPlanTest, EquivalentTriggersFormOneVerifiedGroup) {
  AnalysisReport report = AnalyzeSpecSource(
      "both_a(): after withdraw | after deposit ==> log\n"
      "\n"
      "both_b(): after deposit | after withdraw ==> log\n"
      "\n"
      "just_w(): after withdraw ==> log\n");
  // All three are A004/A005-related, so they cluster into one group.
  ASSERT_EQ(report.groups.size(), 1u);
  const TriggerGroupPlan& plan = report.groups[0];
  EXPECT_EQ(plan.members.size(), 3u);
  EXPECT_EQ(plan.member_names.size(), 3u);

  // Concrete cost delta: running the members separately steps N automata
  // per event; the combined product steps one.
  EXPECT_EQ(plan.separate.steps_per_event, 3u);
  EXPECT_EQ(plan.combined.steps_per_event, 1u);
  EXPECT_GT(plan.separate.dfa_states, 0u);
  EXPECT_GT(plan.combined.dfa_states, 0u);
  EXPECT_GT(plan.separate.table_bytes, 0u);
  EXPECT_GT(plan.combined.table_bytes, 0u);
  EXPECT_GT(plan.oracle_histories, 0u);

  const Diagnostic* g = Find(report.file_diagnostics, "G001");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->severity, Severity::kNote);
  // The note carries the measured numbers and the validation claim.
  EXPECT_NE(g->message.find("states"), std::string::npos);
  EXPECT_NE(g->message.find("oracle"), std::string::npos);
}

TEST(GroupPlanTest, UnrelatedTriggersProduceNoGroups) {
  AnalysisReport report = AnalyzeSpecSource(
      "t1(): after open ==> log\n"
      "\n"
      "t2(): after close ==> log\n");
  EXPECT_TRUE(report.groups.empty());
  EXPECT_EQ(Find(report.file_diagnostics, "G001"), nullptr);
}

TEST(GroupPlanTest, GroupSuggestionsCanBeDisabled) {
  AnalyzeOptions options;
  options.group_suggestions = false;
  AnalysisReport report = AnalyzeSpecSource(
      "a(): after withdraw ==> log\n"
      "\n"
      "b(): after withdraw ==> log\n",
      options);
  EXPECT_TRUE(report.groups.empty());
  EXPECT_EQ(Find(report.file_diagnostics, "G001"), nullptr);
  // The pairwise finding itself is still recorded.
  EXPECT_NE(Find(report.file_diagnostics, "A004"), nullptr);
}

TEST(GroupPlanTest, PlannerClustersTransitively) {
  // a~b and b~c relate all three even without an a~c finding.
  std::vector<TriggerSpec> specs(3);
  for (size_t i = 0; i < 3; ++i) {
    Result<TriggerSpec> s = ParseTriggerSpec(
        "t" + std::to_string(i) + "(): after deposit ==> log");
    ASSERT_TRUE(s.ok());
    specs[i] = *s;
  }
  std::vector<PairFinding> findings = {
      {0, 1, PairRelation::kEquivalent, false},
      {1, 2, PairRelation::kEquivalent, false},
  };
  std::vector<TriggerGroupPlan> plans = PlanTriggerGroups(specs, findings);
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans[0].members.size(), 3u);
}

TEST(GroupPlanTest, GatedTriggersAreDropped) {
  // Nested composite masks compile to gates; CombinedProgram refuses them
  // and the planner must drop the cluster, not crash or suggest.
  std::vector<TriggerSpec> specs(2);
  for (size_t i = 0; i < 2; ++i) {
    Result<TriggerSpec> s = ParseTriggerSpec(
        "t" + std::to_string(i) +
        "(): after a ; ((after b | after c) && flag) ==> log");
    ASSERT_TRUE(s.ok());
    specs[i] = *s;
  }
  std::vector<PairFinding> findings = {
      {0, 1, PairRelation::kEquivalent, false},
  };
  EXPECT_TRUE(PlanTriggerGroups(specs, findings).empty());
}

TEST(GroupPlanTest, AtomMaskedTriggersGroupViaRealizablePruning) {
  // Atom masks fan into joint micro-symbols; the solver prunes the
  // infeasible `q > 100 && !(q > 50)` sign pattern, so big's language is
  // contained in some's over realizable symbols — plain A005, and the
  // pair still clusters into a combinable group.
  AnalysisReport report = AnalyzeSpecSource(
      "big(): after w(q) && q > 100 ==> alert\n"
      "\n"
      "some(): after w(q) && q > 50 ==> log\n");
  EXPECT_NE(Find(report.file_diagnostics, "A005"), nullptr);
  ASSERT_EQ(report.groups.size(), 1u);
  EXPECT_EQ(report.groups[0].members.size(), 2u);
}

TEST(GroupPlanTest, RootMaskImplicationPairsClusterToo) {
  // Root composite masks that differ but provably imply one another
  // (A007) also feed the planner; the combined program keeps each
  // trigger's root mask gating its own acceptance bit.
  AnalysisReport report = AnalyzeSpecSource(
      "big(): (after w | after d) && q > 100 ==> alert\n"
      "\n"
      "some(): (after w | after d) && q > 50 ==> log\n");
  EXPECT_NE(Find(report.file_diagnostics, "A007"), nullptr);
  ASSERT_EQ(report.groups.size(), 1u);
  EXPECT_EQ(report.groups[0].members.size(), 2u);
}

}  // namespace
}  // namespace ode
