// Exhaustive operator-semantics sweep: for each operator instance, compare
// the compiled DFA against the §4 oracle on EVERY history up to a bounded
// length over the expression's alphabet. Small alphabets make this
// tractable and it covers corner cases random sampling misses (empty
// prefixes, all-OTHER runs, boundary counts).
#include <gtest/gtest.h>

#include "semantics/oracle.h"
#include "test_util.h"

namespace ode {
namespace {

using testing_util::ParseOrDie;

class OperatorSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(OperatorSweep, DfaEqualsOracleOnAllShortHistories) {
  EventExprPtr expr = ParseOrDie(GetParam());
  Result<CompiledEvent> compiled = CompileEvent(expr, CompileOptions());
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  Oracle oracle(expr, &compiled->alphabet);

  const size_t m = compiled->alphabet.size();
  // Keep the enumeration around a few hundred thousand symbol steps.
  const size_t max_len = m <= 3 ? 9 : (m == 4 ? 7 : 5);

  std::vector<SymbolId> history;
  uint64_t checked = 0;
  // Iterative odometer over all histories of length 1..max_len.
  for (size_t len = 1; len <= max_len; ++len) {
    history.assign(len, 0);
    while (true) {
      std::vector<bool> dfa_marks = compiled->dfa.OccurrencePoints(history);
      Result<std::vector<bool>> oracle_marks =
          oracle.OccurrencePoints(history);
      ASSERT_TRUE(oracle_marks.ok()) << oracle_marks.status().ToString();
      if (dfa_marks != *oracle_marks) {
        std::string h;
        for (SymbolId s : history) h += std::to_string(s) + " ";
        FAIL() << "mismatch for '" << GetParam() << "' on history " << h;
      }
      ++checked;
      // Next history (odometer increment).
      size_t i = 0;
      while (i < len && ++history[i] == static_cast<SymbolId>(m)) {
        history[i] = 0;
        ++i;
      }
      if (i == len) break;
    }
  }
  EXPECT_GT(checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllOperators, OperatorSweep,
    ::testing::Values(
        // Atoms and boolean algebra.
        "after a", "before a", "after a | before a", "after a & !before a",
        "!(after a | before a)", "!!after a",
        // relative family (incl. the singleton identity).
        "relative(after a)", "relative(after a, before a)",
        "relative(after a, before a, after a)", "relative+ (after a)",
        "relative 1 (after a)", "relative 2 (after a)",
        "relative 3 (after a)",
        "relative+ (relative(after a, before a))",
        "relative 2 (relative(after a, before a))",
        // prior family.
        "prior(after a, before a)", "prior(after a, before a, after a)",
        "prior 1 (after a)", "prior 3 (after a)",
        "prior(relative(after a, before a), after a)",
        // sequence family.
        "sequence(after a, before a)", "after a; before a; after a",
        "sequence 2 (after a)", "sequence 3 (after a)",
        "sequence(relative(after a, before a), after a)",
        // counting.
        "choose 1 (after a)", "choose 3 (after a)", "every 1 (after a)",
        "every 2 (after a)", "every 3 (after a | before a)",
        "choose 2 (relative(after a, before a))",
        // fa / faAbs with composite arguments.
        "fa(after a, before a, after b)",
        "fa(after a, relative(before a, before a), after b)",
        "fa(relative(after a, after a), before a, after b)",
        "faAbs(after a, before a, after b)",
        "faAbs(relative(after a, after a), before a, after b)",
        // The empty event.
        "empty", "empty | after a", "!(empty)",
        // Mixed nests.
        "prior(choose 2 (after a), every 2 (before a))",
        "relative(fa(after a, before a, after b), after a)",
        "!relative(after a, before a)",
        // Masked atoms: micro-symbols from the §5 rewrite join the sweep.
        "after a(x) && x > 0",
        "relative(after a(x) && x > 0, after a(x) && x <= 0)",
        "sequence(after a(x) && x > 0, after a(x) && x > 0)",
        "choose 2 (after a(x) && x > 0) | before a",
        "fa(after a(x) && x > 0, after a(x) && x <= 0, before a)"));

// Acceptance-language equivalence: printing an expression and re-parsing
// it yields an automaton with the same language (minimal DFAs of both are
// equivalent). Catches printer/parser semantic drift.
class RoundTripLanguage : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripLanguage, ReparsedExpressionHasSameAutomaton) {
  EventExprPtr e1 = ParseOrDie(GetParam());
  EventExprPtr e2 = ParseOrDie(e1->ToString());
  Result<CompiledEvent> c1 = CompileEvent(e1, CompileOptions());
  Result<CompiledEvent> c2 = CompileEvent(e2, CompileOptions());
  ASSERT_TRUE(c1.ok() && c2.ok());
  ASSERT_EQ(c1->alphabet.size(), c2->alphabet.size());
  EXPECT_EQ(c1->dfa.num_states(), c2->dfa.num_states())
      << "printed: " << e1->ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Exprs, RoundTripLanguage,
    ::testing::Values("fa(after a, prior(after b, after c), after a)",
                      "relative 4 (after a | before b)",
                      "!(after a; after b)",
                      "every 3 (choose 2 (after a) | before b)"));

}  // namespace
}  // namespace ode
