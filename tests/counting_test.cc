#include "automaton/counting.h"

#include <gtest/gtest.h>

#include "automaton/determinize.h"
#include "automaton/nfa.h"

namespace ode {
namespace {

// DFA for "last symbol is 0" over alphabet {0, 1}.
Dfa EndsInZero() {
  SymbolSet zero(2);
  zero.Add(0);
  return Determinize(Nfa::SigmaStarAtom(zero)).value();
}

std::vector<bool> Marks(const Dfa& d, const std::vector<SymbolId>& input) {
  return d.OccurrencePoints(input);
}

TEST(CountingTest, PriorNMarksNthAndSubsequent) {
  // prior 3 (after zero): third and later occurrences of the event.
  Dfa d = BuildCountingDfa(EndsInZero(), 3, CountCondition::kAtLeast).value();
  std::vector<bool> m = Marks(d, {0, 1, 0, 0, 1, 0});
  // Occurrences at positions 0,2,3,5 (0-based); third is position 3.
  EXPECT_EQ(m, (std::vector<bool>{false, false, false, true, false, true}));
}

TEST(CountingTest, ChooseNMarksExactlyNth) {
  // choose 2: only the second occurrence (§3.4: choose 5 (after tcommit)
  // is posted by the commit of the fifth transaction — and only that one).
  Dfa d = BuildCountingDfa(EndsInZero(), 2, CountCondition::kExactly).value();
  std::vector<bool> m = Marks(d, {0, 0, 0, 1, 0});
  EXPECT_EQ(m, (std::vector<bool>{false, true, false, false, false}));
}

TEST(CountingTest, EveryNMarksMultiples) {
  // every 2: 2nd, 4th, 6th, ... occurrences (§3.4's every 5 semantics).
  Dfa d = BuildCountingDfa(EndsInZero(), 2, CountCondition::kModulo).value();
  std::vector<bool> m = Marks(d, {0, 0, 0, 0, 0});
  EXPECT_EQ(m, (std::vector<bool>{false, true, false, true, false}));
}

TEST(CountingTest, EveryOneMarksAll) {
  Dfa d = BuildCountingDfa(EndsInZero(), 1, CountCondition::kModulo).value();
  std::vector<bool> m = Marks(d, {0, 1, 0});
  EXPECT_EQ(m, (std::vector<bool>{true, false, true}));
}

TEST(CountingTest, ChooseOneIsFirstOnly) {
  Dfa d = BuildCountingDfa(EndsInZero(), 1, CountCondition::kExactly).value();
  std::vector<bool> m = Marks(d, {1, 0, 0});
  EXPECT_EQ(m, (std::vector<bool>{false, true, false}));
}

TEST(CountingTest, NonOccurrencesDoNotAdvanceCounter) {
  Dfa d = BuildCountingDfa(EndsInZero(), 2, CountCondition::kExactly).value();
  // Interleave many 1s; still the second 0 fires.
  std::vector<bool> m = Marks(d, {1, 1, 0, 1, 1, 0, 1});
  EXPECT_EQ(m, (std::vector<bool>{false, false, false, false, false, true,
                                  false}));
}

TEST(CountingTest, RejectsNonPositiveN) {
  EXPECT_FALSE(BuildCountingDfa(EndsInZero(), 0, CountCondition::kAtLeast)
                   .ok());
}

TEST(CountingTest, CounterStateSpaceIsBounded) {
  Dfa d = BuildCountingDfa(EndsInZero(), 50, CountCondition::kAtLeast).value();
  // At most |E| * (N+1) states.
  EXPECT_LE(d.num_states(), EndsInZero().num_states() * 51);
}

}  // namespace
}  // namespace ode
