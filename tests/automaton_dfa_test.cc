#include "automaton/dfa.h"

#include <gtest/gtest.h>

#include "automaton/determinize.h"
#include "automaton/dot.h"
#include "automaton/nfa.h"

namespace ode {
namespace {

SymbolSet S(std::initializer_list<SymbolId> syms, size_t m = 2) {
  SymbolSet out(m);
  for (SymbolId s : syms) out.Add(s);
  return out;
}

// Hand-built DFA over {0,1}: accepts strings ending in 1.
Dfa EndsInOne() {
  Dfa d(2, 2);
  d.SetStart(0);
  d.SetStep(0, 0, 0);
  d.SetStep(0, 1, 1);
  d.SetStep(1, 0, 0);
  d.SetStep(1, 1, 1);
  d.SetAccepting(1, true);
  return d;
}

TEST(DfaTest, StepAndAccept) {
  Dfa d = EndsInOne();
  EXPECT_EQ(d.Step(0, 1), 1);
  EXPECT_TRUE(d.Accepts({0, 1}));
  EXPECT_FALSE(d.Accepts({1, 0}));
  EXPECT_FALSE(d.Accepts({}));
}

TEST(DfaTest, OccurrencePointsMatchPrefixAcceptance) {
  Dfa d = EndsInOne();
  std::vector<bool> marks = d.OccurrencePoints({1, 0, 1, 1});
  ASSERT_EQ(marks.size(), 4u);
  EXPECT_TRUE(marks[0]);
  EXPECT_FALSE(marks[1]);
  EXPECT_TRUE(marks[2]);
  EXPECT_TRUE(marks[3]);
}

TEST(DfaTest, TableBytesScalesWithStatesAndAlphabet) {
  Dfa small(2, 2);
  Dfa large(4, 100);
  EXPECT_LT(small.TableBytes(), large.TableBytes());
  EXPECT_GE(large.TableBytes(), 100u * 4u * sizeof(int32_t));
}

TEST(DotExportTest, ContainsStatesAndLabels) {
  Dfa d = EndsInOne();
  std::string dot = DfaToDot(d, {"zero", "one"});
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("one"), std::string::npos);
}

TEST(DotExportTest, NfaIncludesEpsilonEdges) {
  Nfa nfa = Nfa::Union(Nfa::SigmaStarAtom(S({0})),
                       Nfa::SigmaStarAtom(S({1})));
  std::string dot = NfaToDot(nfa);
  EXPECT_NE(dot.find("ε"), std::string::npos);
}

TEST(CloneStartTest, MakesStartUnreachable) {
  // The EndsInOne DFA re-enters state 0 on symbol 0.
  Dfa cloned = CloneStartIfReentrant(EndsInOne());
  for (size_t s = 0; s < cloned.num_states(); ++s) {
    for (size_t sym = 0; sym < cloned.alphabet_size(); ++sym) {
      EXPECT_NE(cloned.Step(static_cast<Dfa::State>(s),
                            static_cast<SymbolId>(sym)),
                cloned.start());
    }
  }
  // Language unchanged.
  EXPECT_TRUE(cloned.Accepts({0, 1}));
  EXPECT_FALSE(cloned.Accepts({1, 0}));
}

}  // namespace
}  // namespace ode
