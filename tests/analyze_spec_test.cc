// Layer-1 spec checks (L-series diagnostics) and their source spans
// (analyze/spec_check.h), plus the caret renderer (analyze/diagnostic.h).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "analyze/spec_check.h"
#include "lang/trigger_spec.h"

namespace ode {
namespace {

std::vector<Diagnostic> Check(std::string_view source,
                              const ClassDef* class_def = nullptr) {
  Result<TriggerSpec> spec = ParseTriggerSpec(source);
  EXPECT_TRUE(spec.ok()) << source << ": " << spec.status().ToString();
  std::vector<Diagnostic> out;
  if (!spec.ok()) return out;
  SpecCheckContext ctx;
  ctx.class_def = class_def;
  CheckTriggerSpec(*spec, ctx, &out);
  return out;
}

const Diagnostic* Find(const std::vector<Diagnostic>& diags,
                       std::string_view id) {
  for (const Diagnostic& d : diags) {
    if (d.id == id) return &d;
  }
  return nullptr;
}

/// The source text the diagnostic's span covers.
std::string Covered(std::string_view source, const Diagnostic& d) {
  return std::string(source.substr(d.span.begin, d.span.size()));
}

TEST(SpecCheckTest, L001NeverTrueMaskWithExactSpan) {
  const std::string src =
      "t(): after withdraw(amt) && amt > 100 && amt < 50 ==> alert";
  std::vector<Diagnostic> diags = Check(src);
  const Diagnostic* d = Find(diags, "L001");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(Covered(src, *d), "amt > 100 && amt < 50");
}

TEST(SpecCheckTest, L002AlwaysTrueMask) {
  const std::string src = "t(): after withdraw(amt) && amt >= 0 || amt < 1 "
                          "==> alert";
  // The mask parser consumes the whole `a || b` as the atom's mask.
  std::vector<Diagnostic> diags = Check(src);
  const Diagnostic* d = Find(diags, "L002");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
}

TEST(SpecCheckTest, L003UnknownMethod) {
  ClassDef def("account");
  def.AddAttr("balance", Value(0));
  def.AddMethod(MethodDef{
      "withdraw", {{"int", "amount"}}, MethodKind::kUpdate, nullptr});
  const std::string src = "t(): after deposit ==> alert";
  std::vector<Diagnostic> diags = Check(src, &def);
  const Diagnostic* d = Find(diags, "L003");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);

  // Arity mismatch against the declaration is also L003.
  diags = Check("t(): after withdraw(a, b) ==> alert", &def);
  EXPECT_NE(Find(diags, "L003"), nullptr);

  // A declared method with matching arity is clean.
  diags = Check("t(): after withdraw(amount) ==> alert", &def);
  EXPECT_EQ(Find(diags, "L003"), nullptr);
}

TEST(SpecCheckTest, L004UnknownIdentifierWithClassContext) {
  ClassDef def("account");
  def.AddAttr("balance", Value(0));
  def.AddMethod(MethodDef{
      "withdraw", {{"int", "amount"}}, MethodKind::kUpdate, nullptr});
  const std::string src =
      "t(): after withdraw(amount) && amout > 100 ==> alert";  // Typo.
  std::vector<Diagnostic> diags = Check(src, &def);
  const Diagnostic* d = Find(diags, "L004");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);

  // Attribute, event argument, and trigger parameter references resolve.
  diags = Check("t(limit): after withdraw(amount) && "
                "amount > limit && balance > 0 ==> alert",
                &def);
  EXPECT_EQ(Find(diags, "L004"), nullptr);
}

TEST(SpecCheckTest, L005UnboundIdentifierWithoutClassContext) {
  // Without a class the analyzer cannot see attributes, so an identifier
  // that is not a bound parameter is only a note.
  const std::string src =
      "t(): after withdraw(amount) && balance > 0 ==> alert";
  std::vector<Diagnostic> diags = Check(src);
  const Diagnostic* d = Find(diags, "L005");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kNote);
  EXPECT_EQ(Find(diags, "L004"), nullptr);
}

TEST(SpecCheckTest, L006TopLevelNot) {
  const std::string src = "t(): !after withdraw ==> alert";
  std::vector<Diagnostic> diags = Check(src);
  const Diagnostic* d = Find(diags, "L006");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
}

TEST(SpecCheckTest, L007DegenerateCount) {
  std::vector<Diagnostic> diags = Check("t(): relative 1 (after a) ==> x");
  EXPECT_NE(Find(diags, "L007"), nullptr);
  // prior 1 (E) means "E has occurred at some point" — not degenerate.
  diags = Check("t(): prior 1 (after a) ==> x");
  EXPECT_EQ(Find(diags, "L007"), nullptr);
  diags = Check("t(): relative 2 (after a) ==> x");
  EXPECT_EQ(Find(diags, "L007"), nullptr);
}

TEST(SpecCheckTest, L008EmptyOperand) {
  std::vector<Diagnostic> diags = Check("t(): after a | empty ==> x");
  const Diagnostic* d = Find(diags, "L008");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kNote);
}

TEST(SpecCheckTest, CleanSpecHasNoDiagnostics) {
  ClassDef def("account");
  def.AddAttr("balance", Value(0));
  def.AddMethod(MethodDef{
      "withdraw", {{"int", "amount"}}, MethodKind::kUpdate, nullptr});
  def.AddMethod(MethodDef{
      "deposit", {{"int", "amount"}}, MethodKind::kUpdate, nullptr});
  std::vector<Diagnostic> diags = Check(
      "overdraft(): after withdraw(amount) && amount > balance ==> alert",
      &def);
  EXPECT_TRUE(diags.empty());
}

TEST(DiagnosticRenderTest, CaretPointsAtSpan) {
  const std::string src = "t(): after w(q) && q > 9 && q < 1 ==> a";
  std::vector<Diagnostic> diags = Check(src);
  const Diagnostic* d = Find(diags, "L001");
  ASSERT_NE(d, nullptr);
  std::string rendered = RenderDiagnostic(*d, src, "spec.trig");
  // Header: file:line:col, severity, id.
  EXPECT_NE(rendered.find("spec.trig:1:"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("error: [L001]"), std::string::npos) << rendered;
  // Caret line underlines the full mask.
  EXPECT_NE(rendered.find("^~~~"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("q > 9 && q < 1"), std::string::npos) << rendered;
}

TEST(DiagnosticRenderTest, SpanCrossingLineBoundaryClampsToEol) {
  // The unsatisfiable mask spans two physical lines; each line gets its
  // own caret run and neither run swallows the newline.
  const std::string src =
      "t(): after w(q) && q > 9 &&\n"
      "     q < 1 ==> a";
  std::vector<Diagnostic> diags = Check(src);
  const Diagnostic* d = Find(diags, "L001");
  ASSERT_NE(d, nullptr);
  ASSERT_GT(d->span.end, src.find('\n')) << "span should cross the newline";
  std::string rendered = RenderDiagnostic(*d, src, "spec.trig");
  // Both source lines are echoed, each followed by a caret line.
  EXPECT_NE(rendered.find("q > 9 &&"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("q < 1"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find('^'), std::string::npos) << rendered;
  // No caret line may be longer than its source line (the old renderer
  // let the run of the first line spill past EOL).
  std::istringstream lines(rendered);
  std::string prev, cur;
  while (std::getline(lines, cur)) {
    if (cur.find_first_not_of(" \t^~") == std::string::npos &&
        cur.find('^') != std::string::npos) {
      EXPECT_LE(cur.size(), prev.size()) << rendered;
    }
    prev = cur;
  }
}

TEST(DiagnosticRenderTest, CarriageReturnIsStrippedFromEchoedLine) {
  const std::string src = "t(): after w(q) && q > 9 && q < 1 ==> a\r\n";
  std::vector<Diagnostic> diags = Check(src);
  const Diagnostic* d = Find(diags, "L001");
  ASSERT_NE(d, nullptr);
  std::string rendered = RenderDiagnostic(*d, src, "spec.trig");
  EXPECT_EQ(rendered.find('\r'), std::string::npos) << rendered;
}

TEST(DiagnosticRenderTest, LongSpanIsElided) {
  Diagnostic d;
  d.id = "X000";
  d.severity = Severity::kNote;
  d.message = "long span";
  const std::string src = "aa\nbb\ncc\ndd\nee";
  d.span = SourceSpan{0, src.size()};
  std::string rendered = RenderDiagnostic(d, src, "f.trig");
  EXPECT_NE(rendered.find("..."), std::string::npos) << rendered;
  EXPECT_EQ(rendered.find("dd"), std::string::npos) << rendered;
}

TEST(DiagnosticRenderTest, EmptySpanRendersHeaderOnly) {
  Diagnostic d;
  d.id = "P001";
  d.severity = Severity::kError;
  d.message = "does not parse";
  std::string rendered = RenderDiagnostic(d, "whatever", "f.trig");
  EXPECT_NE(rendered.find("error: [P001] does not parse"), std::string::npos)
      << rendered;
  EXPECT_EQ(rendered.find('^'), std::string::npos) << rendered;
}

}  // namespace
}  // namespace ode
