// The §6 before-tcomplete fixpoint in depth: cascades that touch new
// objects mid-commit, and the generalized committed transform with masked
// transaction markers.
#include <gtest/gtest.h>

#include "automaton/committed_transform.h"
#include "ode/database.h"
#include "test_util.h"

namespace ode {
namespace {

ClassDef NodeClass() {
  ClassDef def("node");
  def.AddAttr("v", Value(0));
  def.AddAttr("peer", Value(kNullOid));
  def.AddMethod(MethodDef{"touch", {}, MethodKind::kUpdate, nullptr});
  return def;
}

// A deferred trigger on A whose action touches B, whose own deferred
// trigger then fires in the next round: the fixpoint must extend
// `before tcomplete` posting to objects first accessed *during* commit.
TEST(FixpointTest, CascadeReachesNewlyAccessedObjects) {
  ClassDef def = NodeClass();
  // Anchored on a touch so the setup transaction's own commit (which
  // also posts tcomplete) does not consume the trigger.
  def.AddTrigger(
      "D(): relative(after touch, before tcomplete) ==> touch_peer");
  Database db;
  ODE_ASSERT_OK(db.RegisterAction(
      "touch_peer", [](const ActionContext& ctx) -> Status {
        Result<Value> peer = ctx.db->PeekAttr(ctx.self, "peer");
        if (!peer.ok()) return peer.status();
        Result<Oid> oid = peer->AsOid();
        if (!oid.ok() || oid->IsNull()) return Status::OK();
        return ctx.db->Call(ctx.txn, *oid, "touch").status();
      }));
  ODE_ASSERT_OK(db.RegisterClass(std::move(def)).status());

  TxnId t0 = db.Begin().value();
  Oid b = db.New(t0, "node").value();
  Oid a = db.New(t0, "node", {{"peer", Value(b)}}).value();
  ODE_ASSERT_OK(db.ActivateTrigger(t0, a, "D"));
  ODE_ASSERT_OK(db.ActivateTrigger(t0, b, "D"));
  ODE_ASSERT_OK(db.Commit(t0));

  // A transaction touching only A: at commit, A's deferred trigger touches
  // B, pulling B into the transaction; the next round posts tcomplete to B
  // and B's trigger fires too.
  TxnId t = db.Begin().value();
  ODE_ASSERT_OK(db.Call(t, a, "touch").status());
  ODE_ASSERT_OK(db.Commit(t));
  EXPECT_EQ(db.FireCount(a, "D"), 1u);
  EXPECT_EQ(db.FireCount(b, "D"), 1u);
  // B received tbegin + touch events from txn t (first access mid-commit).
  const EventHistory* hb = db.history(b);
  ASSERT_NE(hb, nullptr);
  bool saw_tbegin_from_t = false;
  for (const PostedEvent& e : hb->events()) {
    if (e.kind == BasicEventKind::kTbegin && e.txn == t) {
      saw_tbegin_from_t = true;
    }
  }
  EXPECT_TRUE(saw_tbegin_from_t);
}

// Two mutually-referential deferred triggers still quiesce: both are
// ordinary (deactivate on firing), so round 3 fires nothing.
TEST(FixpointTest, MutualCascadeQuiesces) {
  ClassDef def = NodeClass();
  // Anchored on a touch so the setup transaction's own commit (which
  // also posts tcomplete) does not consume the trigger.
  def.AddTrigger(
      "D(): relative(after touch, before tcomplete) ==> touch_peer");
  Database db;
  ODE_ASSERT_OK(db.RegisterAction(
      "touch_peer", [](const ActionContext& ctx) -> Status {
        Result<Value> peer = ctx.db->PeekAttr(ctx.self, "peer");
        if (!peer.ok()) return peer.status();
        Result<Oid> oid = peer->AsOid();
        if (!oid.ok() || oid->IsNull()) return Status::OK();
        return ctx.db->Call(ctx.txn, *oid, "touch").status();
      }));
  ODE_ASSERT_OK(db.RegisterClass(std::move(def)).status());

  TxnId t0 = db.Begin().value();
  Oid a = db.New(t0, "node").value();
  Oid b = db.New(t0, "node", {{"peer", Value(a)}}).value();
  ODE_ASSERT_OK(db.SetAttr(t0, a, "peer", Value(b)));
  ODE_ASSERT_OK(db.ActivateTrigger(t0, a, "D"));
  ODE_ASSERT_OK(db.ActivateTrigger(t0, b, "D"));
  ODE_ASSERT_OK(db.Commit(t0));

  TxnId t = db.Begin().value();
  ODE_ASSERT_OK(db.Call(t, a, "touch").status());
  ODE_ASSERT_OK(db.Commit(t));
  EXPECT_EQ(db.FireCount(a, "D"), 1u);
  EXPECT_EQ(db.FireCount(b, "D"), 1u);
}

// The committed transform also works when transaction markers carry masks:
// each micro-symbol of the tbegin group is still a tbegin.
TEST(MaskedMarkerTest, TransformHandlesMaskedTbegin) {
  // `after f` counted on the committed view, with the expression also
  // mentioning a masked tbegin (mask outcome irrelevant to rollback).
  EventExprPtr expr = testing_util::ParseOrDie(
      "choose 2 (after f) | (after tbegin && armed & empty)");
  // (The masked-tbegin disjunct is intersected with empty so it never
  // *occurs*, but it forces mask micro-symbols into the tbegin group.)
  CompileOptions opts;
  opts.include_txn_markers = true;
  Result<CompiledEvent> compiled = CompileEvent(expr, opts);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  TxnMarkerSymbols markers = compiled->alphabet.txn_markers();
  EXPECT_EQ(markers.tbegin.Count(), 2u);  // Masked: two micro-symbols.
  Result<Dfa> a_prime = BuildCommittedTransform(compiled->dfa, markers);
  ASSERT_TRUE(a_prime.ok());

  // Trace: f, tbegin(mask=true), f, tabort, f — the aborted f vanishes, so
  // the final f is the 2nd committed one and choose 2 fires.
  SymbolId f = -1;
  compiled->alphabet
      .GroupSymbols(BasicEvent::Method(EventQualifier::kAfter, "f"))
      .ForEach([&](SymbolId s) { f = s; });
  std::vector<SymbolId> tbegins;
  markers.tbegin.ForEach([&](SymbolId s) { tbegins.push_back(s); });
  SymbolId tabort = -1;
  markers.tabort.ForEach([&](SymbolId s) { tabort = s; });
  for (SymbolId tb : tbegins) {
    std::vector<SymbolId> trace = {f, tb, f, tabort, f};
    std::vector<bool> marks = a_prime->OccurrencePoints(trace);
    EXPECT_TRUE(marks[4]) << "tbegin micro-symbol " << tb;
    // Without the transform, the full-history automaton counts 3 f's.
    EXPECT_FALSE(compiled->dfa.OccurrencePoints(trace)[4]);
  }
}

}  // namespace
}  // namespace ode
