#!/usr/bin/env python3
"""Asserts the stable `ode-lint --format=json` schema (schema_version 1).

Usage: check_lint_json.py <ode-lint-binary> <spec-file>...

Runs the linter over the given fixtures and validates the shape of the
emitted document: top-level keys, per-file diagnostic records with exactly
{id, severity, message, trigger, line, column}, trigger records, and a
summary whose counts match the diagnostics. Exits non-zero on any
mismatch, so a schema change must be deliberate (bump schema_version).
"""
import json
import subprocess
import sys


def fail(msg):
    print("check_lint_json: FAIL:", msg, file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) < 3:
        fail("usage: check_lint_json.py <ode-lint> <spec-file>...")
    lint, files = sys.argv[1], sys.argv[2:]
    proc = subprocess.run(
        [lint, "--format=json", *files], capture_output=True, text=True
    )
    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        fail(f"output is not valid JSON: {e}\n{proc.stdout}")

    if doc.get("tool") != "ode-lint":
        fail(f"tool: {doc.get('tool')!r}")
    if doc.get("schema_version") != 1:
        fail(f"schema_version: {doc.get('schema_version')!r}")
    if not isinstance(doc.get("files"), list) or len(doc["files"]) != len(files):
        fail("files: wrong type or count")

    counts = {"error": 0, "warning": 0, "note": 0}
    for f in doc["files"]:
        if not isinstance(f.get("path"), str):
            fail(f"path: {f.get('path')!r}")
        if not isinstance(f.get("diagnostics"), list):
            fail("diagnostics missing or not a list")
        for d in f["diagnostics"]:
            if set(d) != {"id", "severity", "message", "trigger", "line", "column"}:
                fail(f"diagnostic keys: {sorted(d)}")
            if d["severity"] not in counts:
                fail(f"severity: {d['severity']!r}")
            if not isinstance(d["line"], int) or not isinstance(d["column"], int):
                fail("line/column must be integers")
            counts[d["severity"]] += 1
        if not isinstance(f.get("triggers"), list):
            fail("triggers missing or not a list")
        for t in f["triggers"]:
            if not isinstance(t.get("name"), str) or not isinstance(t.get("compiled"), bool):
                fail(f"trigger record: {t!r}")

    summary = doc.get("summary")
    if not isinstance(summary, dict) or set(summary) != {
        "files", "errors", "warnings", "notes",
    }:
        fail(f"summary: {summary!r}")
    if summary["files"] != len(files):
        fail(f"summary.files: {summary['files']}")
    for key, sev in (("errors", "error"), ("warnings", "warning"), ("notes", "note")):
        if summary[key] != counts[sev]:
            fail(f"summary.{key}={summary[key]} but counted {counts[sev]}")
    want_rc = 1 if counts["error"] else 0
    if proc.returncode != want_rc:
        fail(f"exit code {proc.returncode}, want {want_rc}")
    print("check_lint_json: ok:", json.dumps(summary))


if __name__ == "__main__":
    main()
