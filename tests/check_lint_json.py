#!/usr/bin/env python3
"""Asserts the stable `ode-lint --format=json` schema (schema_version 4).

Usage: check_lint_json.py <ode-lint-binary> <spec-file>...

Runs the linter over the given fixtures and validates the shape of the
emitted document: top-level keys (including the solver capability record),
per-file diagnostic records with exactly {id, severity, message, trigger,
line, column, end_line, end_column, fix_hints, witness}, witness histories
with per-step oracle fire bits, trigger records, group records with
separate/combined cost objects, fix records (v4: with machine-applicable
byte_start/byte_end/replacement spans), and a summary whose counts
match the diagnostics and witness totals. Exits non-zero on any mismatch,
so a schema change must be deliberate (bump schema_version).
"""
import json
import subprocess
import sys


def fail(msg):
    print("check_lint_json: FAIL:", msg, file=sys.stderr)
    sys.exit(1)


DIAG_KEYS = {
    "id", "severity", "message", "trigger",
    "line", "column", "end_line", "end_column",
    "fix_hints", "witness",
}
WITNESS_KEYS = {"claim", "columns", "steps"}
STEP_KEYS = {"event", "note", "fires"}
SOLVER_KEYS = {"integer_aware", "gap_cuts", "elimination"}
COST_KEYS = {"states", "table_bytes", "steps_per_event"}
GROUP_KEYS = {"members", "separate", "combined", "oracle_histories"}
FIX_KEYS = {"trigger", "code", "description"}
# v4: fixes spliced from a source file additionally carry an edit span.
FIX_SPAN_KEYS = {"byte_start", "byte_end", "replacement"}
SUMMARY_KEYS = {
    "files", "errors", "warnings", "notes",
    "fixes_applied", "fixes_suppressed",
    "witnesses", "witness_failures",
}


def check_cost(obj, label):
    if not isinstance(obj, dict) or set(obj) != COST_KEYS:
        fail(f"{label}: {obj!r}")
    for key in COST_KEYS:
        if not isinstance(obj[key], int):
            fail(f"{label}.{key} must be an integer")


def check_witness(w, label):
    if not isinstance(w, dict) or set(w) != WITNESS_KEYS:
        fail(f"{label} keys: {sorted(w) if isinstance(w, dict) else w!r}")
    if not isinstance(w["claim"], str) or not w["claim"]:
        fail(f"{label}.claim: {w['claim']!r}")
    if not isinstance(w["columns"], list) or not all(
        isinstance(c, str) for c in w["columns"]
    ):
        fail(f"{label}.columns: {w['columns']!r}")
    if not isinstance(w["steps"], list):
        fail(f"{label}.steps not a list")
    for s in w["steps"]:
        if not isinstance(s, dict) or set(s) != STEP_KEYS:
            fail(f"{label} step keys: {sorted(s) if isinstance(s, dict) else s!r}")
        if not isinstance(s["event"], str) or not isinstance(s["note"], str):
            fail(f"{label} step event/note must be strings")
        if not isinstance(s["fires"], list) or len(s["fires"]) != len(
            w["columns"]
        ):
            fail(f"{label} step fires must parallel columns: {s['fires']!r}")
        if not all(isinstance(b, bool) for b in s["fires"]):
            fail(f"{label} step fires must be booleans")


def main():
    if len(sys.argv) < 3:
        fail("usage: check_lint_json.py <ode-lint> <spec-file>...")
    lint, files = sys.argv[1], sys.argv[2:]
    proc = subprocess.run(
        [lint, "--format=json", *files], capture_output=True, text=True
    )
    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        fail(f"output is not valid JSON: {e}\n{proc.stdout}")

    if doc.get("tool") != "ode-lint":
        fail(f"tool: {doc.get('tool')!r}")
    if doc.get("schema_version") != 4:
        fail(f"schema_version: {doc.get('schema_version')!r}")
    solver = doc.get("solver")
    if not isinstance(solver, dict) or set(solver) != SOLVER_KEYS:
        fail(f"solver: {solver!r}")
    if solver["integer_aware"] is not True or solver["gap_cuts"] is not True:
        fail(f"solver capabilities: {solver!r}")
    if not isinstance(solver["elimination"], str):
        fail(f"solver.elimination: {solver['elimination']!r}")
    if not isinstance(doc.get("files"), list) or len(doc["files"]) != len(files):
        fail("files: wrong type or count")

    counts = {"error": 0, "warning": 0, "note": 0}
    witness_total = 0
    for f in doc["files"]:
        if not isinstance(f.get("path"), str):
            fail(f"path: {f.get('path')!r}")
        if not isinstance(f.get("diagnostics"), list):
            fail("diagnostics missing or not a list")
        for d in f["diagnostics"]:
            if set(d) != DIAG_KEYS:
                fail(f"diagnostic keys: {sorted(d)}")
            if d["severity"] not in counts:
                fail(f"severity: {d['severity']!r}")
            for key in ("line", "column", "end_line", "end_column"):
                if not isinstance(d[key], int):
                    fail(f"{key} must be an integer")
            if not isinstance(d["fix_hints"], list) or not all(
                isinstance(h, str) for h in d["fix_hints"]
            ):
                fail(f"fix_hints: {d['fix_hints']!r}")
            if not isinstance(d["witness"], list):
                fail("witness missing or not a list")
            for w in d["witness"]:
                check_witness(w, f"witness of [{d['id']}]")
            witness_total += len(d["witness"])
            counts[d["severity"]] += 1
        if not isinstance(f.get("triggers"), list):
            fail("triggers missing or not a list")
        for t in f["triggers"]:
            if not isinstance(t.get("name"), str) or not isinstance(t.get("compiled"), bool):
                fail(f"trigger record: {t!r}")
        if not isinstance(f.get("groups"), list):
            fail("groups missing or not a list")
        for g in f["groups"]:
            if set(g) != GROUP_KEYS:
                fail(f"group keys: {sorted(g)}")
            if not isinstance(g["members"], list) or len(g["members"]) < 2:
                fail(f"group members: {g['members']!r}")
            check_cost(g["separate"], "group.separate")
            check_cost(g["combined"], "group.combined")
            if not isinstance(g["oracle_histories"], int) or g["oracle_histories"] < 1:
                fail(f"group.oracle_histories: {g['oracle_histories']!r}")
        if not isinstance(f.get("fixes"), list):
            fail("fixes missing or not a list")
        for x in f["fixes"]:
            if set(x) not in (FIX_KEYS, FIX_KEYS | FIX_SPAN_KEYS):
                fail(f"fix keys: {sorted(x)}")
            if "byte_start" in x:
                if not isinstance(x["byte_start"], int) or not isinstance(
                    x["byte_end"], int
                ):
                    fail("fix byte span must be integers")
                if not 0 <= x["byte_start"] <= x["byte_end"]:
                    fail(
                        f"fix byte span out of order: "
                        f"[{x['byte_start']}, {x['byte_end']})"
                    )
                if not isinstance(x["replacement"], str) or not x["replacement"]:
                    fail(f"fix replacement: {x['replacement']!r}")

    summary = doc.get("summary")
    if not isinstance(summary, dict) or set(summary) != SUMMARY_KEYS:
        fail(f"summary: {summary!r}")
    if summary["files"] != len(files):
        fail(f"summary.files: {summary['files']}")
    for key, sev in (("errors", "error"), ("warnings", "warning"), ("notes", "note")):
        if summary[key] != counts[sev]:
            fail(f"summary.{key}={summary[key]} but counted {counts[sev]}")
    for key in ("fixes_applied", "fixes_suppressed", "witnesses",
                "witness_failures"):
        if not isinstance(summary[key], int):
            fail(f"summary.{key} must be an integer")
    if summary["witnesses"] != witness_total:
        fail(
            f"summary.witnesses={summary['witnesses']} but counted "
            f"{witness_total} attached histories"
        )
    if summary["witness_failures"] != 0:
        fail(
            "summary.witness_failures="
            f"{summary['witness_failures']} on shipped fixtures (must be 0)"
        )
    want_rc = 1 if counts["error"] else 0
    if proc.returncode != want_rc:
        fail(f"exit code {proc.returncode}, want {want_rc}")
    print("check_lint_json: ok:", json.dumps(summary))


if __name__ == "__main__":
    main()
