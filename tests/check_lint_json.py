#!/usr/bin/env python3
"""Asserts the stable `ode-lint --format=json` schema (schema_version 5).

Usage: check_lint_json.py <ode-lint-binary> [--lint-flag...] <spec-file>...

Any `--`-prefixed argument is passed through to the linter (e.g.
`--effects=<file>` to exercise the cascade object, `--fix` to exercise fix
records). Runs the linter over the given fixtures and validates the shape
of the emitted document: top-level keys (including the solver capability
record), per-file diagnostic records with exactly {id, severity, message,
trigger, line, column, end_line, end_column, fix_hints, witness}, witness
histories with per-step oracle fire bits, trigger records, group records
with separate/combined cost objects, fix records (v5: an `edits` array of
machine-applicable byte spans — in-bounds, ordered, and non-overlapping),
the optional per-file cascade graph object (v5, present when --effects was
given), and a summary whose counts match the diagnostics and witness
totals. Exits non-zero on any mismatch, so a schema change must be
deliberate (bump schema_version).
"""
import json
import os
import subprocess
import sys


def fail(msg):
    print("check_lint_json: FAIL:", msg, file=sys.stderr)
    sys.exit(1)


DIAG_KEYS = {
    "id", "severity", "message", "trigger",
    "line", "column", "end_line", "end_column",
    "fix_hints", "witness",
}
WITNESS_KEYS = {"claim", "columns", "steps"}
STEP_KEYS = {"event", "note", "fires"}
SOLVER_KEYS = {"integer_aware", "gap_cuts", "elimination"}
COST_KEYS = {"states", "table_bytes", "steps_per_event"}
GROUP_KEYS = {"members", "separate", "combined", "oracle_histories"}
FIX_KEYS = {"trigger", "code", "description"}
# v5: fixes spliced from a source file additionally carry an edit list.
EDIT_KEYS = {"byte_start", "byte_end", "replacement"}
CASCADE_KEYS = {"nodes", "edges", "has_cycle", "truncated", "max_chain"}
CASCADE_NODE_KEYS = {"name", "action", "perpetual", "immediate",
                     "opaque_action"}
CASCADE_EDGE_KEYS = {"from", "to", "via", "kind", "fires"}
SUMMARY_KEYS = {
    "files", "errors", "warnings", "notes",
    "fixes_applied", "fixes_suppressed",
    "witnesses", "witness_failures",
}


def check_cost(obj, label):
    if not isinstance(obj, dict) or set(obj) != COST_KEYS:
        fail(f"{label}: {obj!r}")
    for key in COST_KEYS:
        if not isinstance(obj[key], int):
            fail(f"{label}.{key} must be an integer")


def check_witness(w, label):
    if not isinstance(w, dict) or set(w) != WITNESS_KEYS:
        fail(f"{label} keys: {sorted(w) if isinstance(w, dict) else w!r}")
    if not isinstance(w["claim"], str) or not w["claim"]:
        fail(f"{label}.claim: {w['claim']!r}")
    if not isinstance(w["columns"], list) or not all(
        isinstance(c, str) for c in w["columns"]
    ):
        fail(f"{label}.columns: {w['columns']!r}")
    if not isinstance(w["steps"], list):
        fail(f"{label}.steps not a list")
    for s in w["steps"]:
        if not isinstance(s, dict) or set(s) != STEP_KEYS:
            fail(f"{label} step keys: {sorted(s) if isinstance(s, dict) else s!r}")
        if not isinstance(s["event"], str) or not isinstance(s["note"], str):
            fail(f"{label} step event/note must be strings")
        if not isinstance(s["fires"], list) or len(s["fires"]) != len(
            w["columns"]
        ):
            fail(f"{label} step fires must parallel columns: {s['fires']!r}")
        if not all(isinstance(b, bool) for b in s["fires"]):
            fail(f"{label} step fires must be booleans")


def check_edits(edits, file_size, label):
    """Edit spans must be integers, in-bounds, ordered, non-overlapping."""
    if not isinstance(edits, list) or not edits:
        fail(f"{label}: must be a non-empty list: {edits!r}")
    prev_end = 0
    for i, e in enumerate(edits):
        if not isinstance(e, dict) or set(e) != EDIT_KEYS:
            fail(f"{label}[{i}] keys: {sorted(e) if isinstance(e, dict) else e!r}")
        if not isinstance(e["byte_start"], int) or not isinstance(
            e["byte_end"], int
        ):
            fail(f"{label}[{i}] byte span must be integers")
        if not 0 <= e["byte_start"] <= e["byte_end"]:
            fail(
                f"{label}[{i}] byte span out of order: "
                f"[{e['byte_start']}, {e['byte_end']})"
            )
        if file_size is not None and e["byte_end"] > file_size:
            fail(
                f"{label}[{i}] byte span [{e['byte_start']}, "
                f"{e['byte_end']}) exceeds file size {file_size}"
            )
        if i > 0 and e["byte_start"] < prev_end:
            fail(
                f"{label}[{i}] overlaps the previous edit "
                f"(starts at {e['byte_start']}, previous ends at {prev_end})"
            )
        prev_end = e["byte_end"]
        if not isinstance(e["replacement"], str):
            fail(f"{label}[{i}].replacement: {e['replacement']!r}")
        if e["byte_start"] == e["byte_end"] and not e["replacement"]:
            fail(f"{label}[{i}] is a no-op (empty span, empty replacement)")


def check_cascade(c, label):
    if not isinstance(c, dict) or set(c) != CASCADE_KEYS:
        fail(f"{label} keys: {sorted(c) if isinstance(c, dict) else c!r}")
    if not isinstance(c["nodes"], list) or not isinstance(c["edges"], list):
        fail(f"{label}.nodes/edges must be lists")
    for i, node in enumerate(c["nodes"]):
        if not isinstance(node, dict) or set(node) != CASCADE_NODE_KEYS:
            fail(f"{label}.nodes[{i}] keys: "
                 f"{sorted(node) if isinstance(node, dict) else node!r}")
        if not isinstance(node["name"], str) or not node["name"]:
            fail(f"{label}.nodes[{i}].name: {node['name']!r}")
        if not isinstance(node["action"], str):
            fail(f"{label}.nodes[{i}].action: {node['action']!r}")
        for key in ("perpetual", "immediate", "opaque_action"):
            if not isinstance(node[key], bool):
                fail(f"{label}.nodes[{i}].{key} must be a boolean")
    for i, edge in enumerate(c["edges"]):
        if not isinstance(edge, dict) or set(edge) != CASCADE_EDGE_KEYS:
            fail(f"{label}.edges[{i}] keys: "
                 f"{sorted(edge) if isinstance(edge, dict) else edge!r}")
        for key in ("from", "to"):
            if not isinstance(edge[key], int) or not (
                0 <= edge[key] < len(c["nodes"])
            ):
                fail(f"{label}.edges[{i}].{key} out of node range: "
                     f"{edge[key]!r}")
        if not isinstance(edge["via"], str) or not edge["via"]:
            fail(f"{label}.edges[{i}].via: {edge['via']!r}")
        if edge["kind"] not in ("posts", "assumed"):
            fail(f"{label}.edges[{i}].kind: {edge['kind']!r}")
        if not isinstance(edge["fires"], bool):
            fail(f"{label}.edges[{i}].fires must be a boolean")
    for key in ("has_cycle", "truncated"):
        if not isinstance(c[key], bool):
            fail(f"{label}.{key} must be a boolean")
    if not isinstance(c["max_chain"], int) or c["max_chain"] < 0:
        fail(f"{label}.max_chain: {c['max_chain']!r}")
    if c["has_cycle"] and c["max_chain"] != 0:
        fail(f"{label}: max_chain must be 0 when the graph cycles")


def main():
    if len(sys.argv) < 3:
        fail("usage: check_lint_json.py <ode-lint> [--flag...] <spec-file>...")
    lint = sys.argv[1]
    flags = [a for a in sys.argv[2:] if a.startswith("--")]
    files = [a for a in sys.argv[2:] if not a.startswith("--")]
    if not files:
        fail("no spec files given")
    expect_cascade = any(a.startswith("--effects=") for a in flags)
    proc = subprocess.run(
        [lint, "--format=json", *flags, *files], capture_output=True, text=True
    )
    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        fail(f"output is not valid JSON: {e}\n{proc.stdout}")

    if doc.get("tool") != "ode-lint":
        fail(f"tool: {doc.get('tool')!r}")
    if doc.get("schema_version") != 5:
        fail(f"schema_version: {doc.get('schema_version')!r}")
    solver = doc.get("solver")
    if not isinstance(solver, dict) or set(solver) != SOLVER_KEYS:
        fail(f"solver: {solver!r}")
    if solver["integer_aware"] is not True or solver["gap_cuts"] is not True:
        fail(f"solver capabilities: {solver!r}")
    if not isinstance(solver["elimination"], str):
        fail(f"solver.elimination: {solver['elimination']!r}")
    if not isinstance(doc.get("files"), list) or len(doc["files"]) != len(files):
        fail("files: wrong type or count")

    counts = {"error": 0, "warning": 0, "note": 0}
    witness_total = 0
    for f in doc["files"]:
        if not isinstance(f.get("path"), str):
            fail(f"path: {f.get('path')!r}")
        try:
            file_size = os.path.getsize(f["path"])
        except OSError:
            file_size = None
        if not isinstance(f.get("diagnostics"), list):
            fail("diagnostics missing or not a list")
        for d in f["diagnostics"]:
            if set(d) != DIAG_KEYS:
                fail(f"diagnostic keys: {sorted(d)}")
            if d["severity"] not in counts:
                fail(f"severity: {d['severity']!r}")
            for key in ("line", "column", "end_line", "end_column"):
                if not isinstance(d[key], int):
                    fail(f"{key} must be an integer")
            if not isinstance(d["fix_hints"], list) or not all(
                isinstance(h, str) for h in d["fix_hints"]
            ):
                fail(f"fix_hints: {d['fix_hints']!r}")
            if not isinstance(d["witness"], list):
                fail("witness missing or not a list")
            for w in d["witness"]:
                check_witness(w, f"witness of [{d['id']}]")
            witness_total += len(d["witness"])
            counts[d["severity"]] += 1
        if not isinstance(f.get("triggers"), list):
            fail("triggers missing or not a list")
        for t in f["triggers"]:
            if not isinstance(t.get("name"), str) or not isinstance(t.get("compiled"), bool):
                fail(f"trigger record: {t!r}")
        if not isinstance(f.get("groups"), list):
            fail("groups missing or not a list")
        for g in f["groups"]:
            if set(g) != GROUP_KEYS:
                fail(f"group keys: {sorted(g)}")
            if not isinstance(g["members"], list) or len(g["members"]) < 2:
                fail(f"group members: {g['members']!r}")
            check_cost(g["separate"], "group.separate")
            check_cost(g["combined"], "group.combined")
            if not isinstance(g["oracle_histories"], int) or g["oracle_histories"] < 1:
                fail(f"group.oracle_histories: {g['oracle_histories']!r}")
        if not isinstance(f.get("fixes"), list):
            fail("fixes missing or not a list")
        for x in f["fixes"]:
            if set(x) not in (FIX_KEYS, FIX_KEYS | {"edits"}):
                fail(f"fix keys: {sorted(x)}")
            if "edits" in x:
                check_edits(
                    x["edits"], file_size,
                    f"fix [{x['code']}] '{x['trigger']}' edits",
                )
        if "cascade" in f:
            check_cascade(f["cascade"], "cascade")
        elif expect_cascade:
            fail("cascade object missing although --effects was given")

    summary = doc.get("summary")
    if not isinstance(summary, dict) or set(summary) != SUMMARY_KEYS:
        fail(f"summary: {summary!r}")
    if summary["files"] != len(files):
        fail(f"summary.files: {summary['files']}")
    for key, sev in (("errors", "error"), ("warnings", "warning"), ("notes", "note")):
        if summary[key] != counts[sev]:
            fail(f"summary.{key}={summary[key]} but counted {counts[sev]}")
    for key in ("fixes_applied", "fixes_suppressed", "witnesses",
                "witness_failures"):
        if not isinstance(summary[key], int):
            fail(f"summary.{key} must be an integer")
    if summary["witnesses"] != witness_total:
        fail(
            f"summary.witnesses={summary['witnesses']} but counted "
            f"{witness_total} attached histories"
        )
    if summary["witness_failures"] != 0:
        fail(
            "summary.witness_failures="
            f"{summary['witness_failures']} on shipped fixtures (must be 0)"
        )
    want_rc = 1 if counts["error"] else 0
    if proc.returncode != want_rc:
        fail(f"exit code {proc.returncode}, want {want_rc}")
    print("check_lint_json: ok:", json.dumps(summary))


if __name__ == "__main__":
    main()
