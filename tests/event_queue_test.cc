// Bounded MPSC queue unit tests: FIFO order, capacity limits, the three
// push flavours (blocking, try, deadline), close/drain semantics, the
// high-water mark, and a multi-producer interleaving check.
#include "runtime/event_queue.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace ode {
namespace runtime {
namespace {

IngestEvent Ev(uint64_t oid, int seq) {
  IngestEvent e;
  e.oid = Oid{oid};
  e.method = "m";
  e.args = {Value(seq)};
  return e;
}

int SeqOf(const IngestEvent& e) {
  return static_cast<int>(e.args.at(0).AsInt().value());
}

TEST(EventQueueTest, ZeroCapacityClampsToOne) {
  EventQueue q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_EQ(q.TryPush(Ev(1, 0)), EventQueue::PushResult::kOk);
  EXPECT_EQ(q.TryPush(Ev(1, 1)), EventQueue::PushResult::kFull);
}

TEST(EventQueueTest, FifoOrder) {
  EventQueue q(8);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(q.TryPush(Ev(7, i)), EventQueue::PushResult::kOk);
  }
  std::vector<IngestEvent> out;
  EXPECT_EQ(q.PopBatch(&out, 16), 5u);
  ASSERT_EQ(out.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(SeqOf(out[i]), i);
}

TEST(EventQueueTest, PopBatchHonorsMaxAndAppends) {
  EventQueue q(8);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(q.TryPush(Ev(7, i)), EventQueue::PushResult::kOk);
  }
  std::vector<IngestEvent> out;
  EXPECT_EQ(q.PopBatch(&out, 2), 2u);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.PopBatch(&out, 16), 3u);
  ASSERT_EQ(out.size(), 5u);  // Appended, not replaced.
  for (int i = 0; i < 5; ++i) EXPECT_EQ(SeqOf(out[i]), i);
}

TEST(EventQueueTest, TryPushReportsFull) {
  EventQueue q(2);
  EXPECT_EQ(q.TryPush(Ev(1, 0)), EventQueue::PushResult::kOk);
  EXPECT_EQ(q.TryPush(Ev(1, 1)), EventQueue::PushResult::kOk);
  EXPECT_EQ(q.TryPush(Ev(1, 2)), EventQueue::PushResult::kFull);
}

TEST(EventQueueTest, PushForTimesOutThenSucceedsAfterPop) {
  EventQueue q(1);
  ASSERT_EQ(q.TryPush(Ev(1, 0)), EventQueue::PushResult::kOk);
  EXPECT_EQ(q.PushFor(Ev(1, 1), std::chrono::milliseconds(5)),
            EventQueue::PushResult::kFull);
  std::vector<IngestEvent> out;
  ASSERT_EQ(q.PopBatch(&out, 1), 1u);
  EXPECT_EQ(q.PushFor(Ev(1, 1), std::chrono::milliseconds(5)),
            EventQueue::PushResult::kOk);
}

TEST(EventQueueTest, BlockingPushWaitsForSpace) {
  EventQueue q(1);
  ASSERT_EQ(q.TryPush(Ev(1, 0)), EventQueue::PushResult::kOk);
  std::thread producer([&] {
    EXPECT_EQ(q.Push(Ev(1, 1)), EventQueue::PushResult::kOk);
  });
  // Give the producer a moment to block on the full queue, then make room.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  std::vector<IngestEvent> out;
  ASSERT_EQ(q.PopBatch(&out, 1), 1u);
  producer.join();
  ASSERT_EQ(q.PopBatch(&out, 1), 1u);
  EXPECT_EQ(SeqOf(out.back()), 1);
}

TEST(EventQueueTest, CloseRejectsPushesButDrainsRemainder) {
  EventQueue q(4);
  ASSERT_EQ(q.TryPush(Ev(1, 0)), EventQueue::PushResult::kOk);
  ASSERT_EQ(q.TryPush(Ev(1, 1)), EventQueue::PushResult::kOk);
  q.Close();
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.TryPush(Ev(1, 2)), EventQueue::PushResult::kClosed);
  EXPECT_EQ(q.Push(Ev(1, 2)), EventQueue::PushResult::kClosed);
  EXPECT_EQ(q.PushFor(Ev(1, 2), std::chrono::milliseconds(1)),
            EventQueue::PushResult::kClosed);
  std::vector<IngestEvent> out;
  EXPECT_EQ(q.PopBatch(&out, 16), 2u);   // Remainder still drains...
  EXPECT_EQ(q.PopBatch(&out, 16), 0u);   // ...then 0 signals shutdown.
}

TEST(EventQueueTest, CloseWakesBlockedConsumer) {
  EventQueue q(4);
  std::thread consumer([&] {
    std::vector<IngestEvent> out;
    EXPECT_EQ(q.PopBatch(&out, 16), 0u);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  consumer.join();
}

TEST(EventQueueTest, HighWaterTracksMaxDepth) {
  EventQueue q(8);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(q.TryPush(Ev(1, i)), EventQueue::PushResult::kOk);
  }
  std::vector<IngestEvent> out;
  ASSERT_EQ(q.PopBatch(&out, 16), 3u);
  ASSERT_EQ(q.TryPush(Ev(1, 3)), EventQueue::PushResult::kOk);
  EXPECT_EQ(q.high_water(), 3u);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, MultiProducerPreservesPerProducerOrder) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  EventQueue q(16);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        // Producer id rides in the oid, sequence in the args.
        ASSERT_EQ(q.Push(Ev(static_cast<uint64_t>(p), i)),
                  EventQueue::PushResult::kOk);
      }
    });
  }
  std::vector<IngestEvent> all;
  while (all.size() < kProducers * kPerProducer) {
    std::vector<IngestEvent> batch;
    size_t n = q.PopBatch(&batch, 32);
    ASSERT_GT(n, 0u);
    for (auto& e : batch) all.push_back(std::move(e));
  }
  for (auto& t : producers) t.join();
  // The global interleaving is arbitrary, but each producer's events must
  // appear in the order that producer pushed them.
  std::vector<int> next(kProducers, 0);
  for (const IngestEvent& e : all) {
    int p = static_cast<int>(e.oid.id);
    EXPECT_EQ(SeqOf(e), next[p]);
    ++next[p];
  }
  for (int p = 0; p < kProducers; ++p) EXPECT_EQ(next[p], kPerProducer);
}

}  // namespace
}  // namespace runtime
}  // namespace ode
