// Experiment E8: the nine §7 coupling modes, expressed purely as E-A event
// expressions, fire at the times the E-C-A couplings prescribe. The firing
// moment is observed through a recording action that notes the phase of the
// triggering transaction.
#include "trigger/coupling.h"

#include <gtest/gtest.h>

#include "compile/trigger_program.h"
#include "lang/printer.h"
#include "ode/database.h"
#include "test_util.h"

namespace ode {
namespace {

// Compile-level checks: each mode builds the paper's exact expression.
TEST(CouplingBuildTest, ExpressionShapes) {
  EventExprPtr e = testing_util::ParseOrDie("after bump");
  MaskExprPtr c = testing_util::ParseMaskOrDie("ready");

  EXPECT_EQ(
      BuildCoupling(CouplingMode::kImmediateImmediate, e, c).value()
          ->ToString(),
      "after bump && ready");
  EXPECT_EQ(
      BuildCoupling(CouplingMode::kImmediateDeferred, e, c).value()
          ->ToString(),
      "fa(after bump && ready, before tcomplete, after tbegin)");
  EXPECT_EQ(
      BuildCoupling(CouplingMode::kImmediateDependent, e, c).value()
          ->ToString(),
      "fa(after bump && ready, after tcommit, after tbegin)");
  EXPECT_EQ(
      BuildCoupling(CouplingMode::kImmediateIndependent, e, c).value()
          ->ToString(),
      "fa(after bump && ready, after tcommit | after tabort, after tbegin)");
  EXPECT_EQ(
      BuildCoupling(CouplingMode::kDeferredImmediate, e, c).value()
          ->ToString(),
      "fa(after bump, before tcomplete, after tbegin) && ready");
  EXPECT_EQ(
      BuildCoupling(CouplingMode::kDeferredDependent, e, c).value()
          ->ToString(),
      "fa(fa(after bump, before tcomplete, after tbegin) && ready, "
      "after tcommit, after tbegin)");
  EXPECT_EQ(
      BuildCoupling(CouplingMode::kDeferredIndependent, e, c).value()
          ->ToString(),
      "fa(fa(after bump, before tcomplete, after tbegin) && ready, "
      "after tcommit | after tabort, after tbegin)");
  EXPECT_EQ(
      BuildCoupling(CouplingMode::kDependentImmediate, e, c).value()
          ->ToString(),
      "fa(after bump, after tcommit, after tbegin) && ready");
  EXPECT_EQ(
      BuildCoupling(CouplingMode::kIndependentImmediate, e, c).value()
          ->ToString(),
      "fa(after bump, after tcommit | after tabort, after tbegin) && ready");
}

TEST(CouplingBuildTest, AllModesCompile) {
  for (int m = 1; m <= 9; ++m) {
    Result<EventExprPtr> e = BuildCouplingFromText(
        static_cast<CouplingMode>(m), "after bump", "ready");
    ASSERT_TRUE(e.ok()) << m << ": " << e.status().ToString();
    Result<CompiledEvent> compiled = CompileEvent(*e, CompileOptions());
    EXPECT_TRUE(compiled.ok())
        << CouplingModeName(static_cast<CouplingMode>(m)) << ": "
        << compiled.status().ToString();
  }
}

// --- Engine-level timing -----------------------------------------------

// The recording action notes the state of the *triggering* user
// transaction at firing time (active / committed / aborted), which is
// exactly what distinguishes immediate, deferred, and separate couplings.
struct FiringLog {
  std::vector<std::string> entries;
};

ClassDef MakeClass(CouplingMode mode, const char* condition) {
  Result<EventExprPtr> expr =
      BuildCouplingFromText(mode, "after bump", condition);
  EXPECT_TRUE(expr.ok()) << expr.status().ToString();
  ClassDef def("obj");
  def.AddAttr("n", Value(0));
  def.AddAttr("ready", Value(true));
  def.AddMethod(MethodDef{
      "bump",
      {},
      MethodKind::kUpdate,
      [](MethodContext* ctx) -> Status {
        ODE_ASSIGN_OR_RETURN(Value n, ctx->Get("n"));
        ODE_ASSIGN_OR_RETURN(Value next, n.Add(Value(1)));
        return ctx->Set("n", next);
      }});
  TriggerSpec spec;
  spec.name = "K";
  spec.perpetual = true;
  spec.event = *expr;
  spec.action = "record";
  def.AddTrigger(spec);
  return def;
}

struct CouplingFixture {
  Database db;
  Oid obj;
  TxnId user_txn = 0;
  FiringLog log;

  explicit CouplingFixture(CouplingMode mode, const char* condition = "ready") {
    EXPECT_TRUE(db.RegisterAction("record",
                                  [this](const ActionContext& ctx) -> Status {
                                    Record(ctx);
                                    return Status::OK();
                                  })
                    .ok());
    EXPECT_TRUE(db.RegisterClass(MakeClass(mode, condition)).status().ok());
    TxnId t = db.Begin().value();
    obj = db.New(t, "obj").value();
    EXPECT_TRUE(db.ActivateTrigger(t, obj, "K").ok());
    EXPECT_TRUE(db.Commit(t).ok());
  }

  void Record(const ActionContext& ctx) {
    const Transaction* user = db.txn(user_txn);
    std::string phase = user == nullptr
                            ? "?"
                            : std::string(TxnStateName(user->state()));
    std::string in_system =
        db.txn(ctx.txn) != nullptr && db.txn(ctx.txn)->is_system()
            ? "system"
            : "user";
    log.entries.push_back(phase + "/" + in_system + "/" +
                          std::string(BasicEventKindName(ctx.event->kind)));
  }

  /// Runs one transaction doing a bump, committing or aborting.
  void RunTxn(bool commit) {
    user_txn = db.Begin().value();
    EXPECT_TRUE(db.Call(user_txn, obj, "bump").status().ok());
    if (commit) {
      EXPECT_TRUE(db.Commit(user_txn).ok());
    } else {
      EXPECT_TRUE(db.Abort(user_txn).ok());
    }
  }
};

TEST(CouplingEngineTest, ImmediateImmediateFiresAtEvent) {
  CouplingFixture f(CouplingMode::kImmediateImmediate);
  f.RunTxn(/*commit=*/true);
  ASSERT_EQ(f.log.entries.size(), 1u);
  // Fired while the user transaction was active, in the user transaction,
  // at the bump event itself.
  EXPECT_EQ(f.log.entries[0], "active/user/method");
}

TEST(CouplingEngineTest, ImmediateDeferredFiresAtTcomplete) {
  CouplingFixture f(CouplingMode::kImmediateDeferred);
  f.RunTxn(/*commit=*/true);
  ASSERT_EQ(f.log.entries.size(), 1u);
  // Fired at before-tcomplete: still the user transaction, still active.
  EXPECT_EQ(f.log.entries[0], "active/user/tcomplete");
}

TEST(CouplingEngineTest, ImmediateDependentFiresAfterCommit) {
  CouplingFixture f(CouplingMode::kImmediateDependent);
  f.RunTxn(/*commit=*/true);
  ASSERT_EQ(f.log.entries.size(), 1u);
  // Fired at after-tcommit: user txn committed, action in a system txn.
  EXPECT_EQ(f.log.entries[0], "committed/system/tcommit");
  // On abort, the dependent coupling never fires.
  f.log.entries.clear();
  f.RunTxn(/*commit=*/false);
  EXPECT_TRUE(f.log.entries.empty());
}

TEST(CouplingEngineTest, ImmediateIndependentFiresEitherWay) {
  CouplingFixture f(CouplingMode::kImmediateIndependent);
  f.RunTxn(/*commit=*/true);
  ASSERT_EQ(f.log.entries.size(), 1u);
  EXPECT_EQ(f.log.entries[0], "committed/system/tcommit");
  f.log.entries.clear();
  f.RunTxn(/*commit=*/false);
  ASSERT_EQ(f.log.entries.size(), 1u);
  EXPECT_EQ(f.log.entries[0], "aborted/system/tabort");
}

TEST(CouplingEngineTest, DeferredImmediateFiresAtTcomplete) {
  CouplingFixture f(CouplingMode::kDeferredImmediate);
  f.RunTxn(/*commit=*/true);
  ASSERT_EQ(f.log.entries.size(), 1u);
  EXPECT_EQ(f.log.entries[0], "active/user/tcomplete");
}

TEST(CouplingEngineTest, DeferredDependentFiresAfterCommit) {
  CouplingFixture f(CouplingMode::kDeferredDependent);
  f.RunTxn(/*commit=*/true);
  ASSERT_EQ(f.log.entries.size(), 1u);
  EXPECT_EQ(f.log.entries[0], "committed/system/tcommit");
  f.log.entries.clear();
  f.RunTxn(/*commit=*/false);
  EXPECT_TRUE(f.log.entries.empty());
}

TEST(CouplingEngineTest, DeferredIndependentFiresEitherWay) {
  CouplingFixture f(CouplingMode::kDeferredIndependent);
  f.RunTxn(/*commit=*/true);
  ASSERT_EQ(f.log.entries.size(), 1u);
  EXPECT_EQ(f.log.entries[0], "committed/system/tcommit");
  f.log.entries.clear();
  f.RunTxn(/*commit=*/false);
  // The deferred inner fa never completed (no tcomplete in an aborted
  // txn), so nothing fires even on the abort path.
  EXPECT_TRUE(f.log.entries.empty());
}

TEST(CouplingEngineTest, DependentImmediateChecksConditionAtCommit) {
  CouplingFixture f(CouplingMode::kDependentImmediate);
  f.RunTxn(/*commit=*/true);
  ASSERT_EQ(f.log.entries.size(), 1u);
  EXPECT_EQ(f.log.entries[0], "committed/system/tcommit");
}

TEST(CouplingEngineTest, IndependentImmediateFiresOnAbortToo) {
  CouplingFixture f(CouplingMode::kIndependentImmediate);
  f.RunTxn(/*commit=*/false);
  ASSERT_EQ(f.log.entries.size(), 1u);
  EXPECT_EQ(f.log.entries[0], "aborted/system/tabort");
}

TEST(CouplingEngineTest, ImmediateConditionEvaluatedAtEventTime) {
  // Immediate-Deferred: C is checked when E occurs, not at tcomplete. Flip
  // `ready` to false *after* the bump: the trigger must still fire,
  // because C held at E's occurrence (the gate bit latched it, §7).
  CouplingFixture f(CouplingMode::kImmediateDeferred);
  f.user_txn = f.db.Begin().value();
  ODE_ASSERT_OK(f.db.Call(f.user_txn, f.obj, "bump").status());
  ODE_ASSERT_OK(f.db.SetAttr(f.user_txn, f.obj, "ready", Value(false)));
  ODE_ASSERT_OK(f.db.Commit(f.user_txn));
  ASSERT_EQ(f.log.entries.size(), 1u);
  EXPECT_EQ(f.log.entries[0], "active/user/tcomplete");
}

TEST(CouplingEngineTest, DeferredConditionEvaluatedAtTcomplete) {
  // Deferred-Immediate: C is a composite mask on the whole fa — checked at
  // tcomplete time. Flipping `ready` to false after the bump suppresses
  // the firing.
  CouplingFixture f(CouplingMode::kDeferredImmediate);
  f.user_txn = f.db.Begin().value();
  ODE_ASSERT_OK(f.db.Call(f.user_txn, f.obj, "bump").status());
  ODE_ASSERT_OK(f.db.SetAttr(f.user_txn, f.obj, "ready", Value(false)));
  ODE_ASSERT_OK(f.db.Commit(f.user_txn));
  EXPECT_TRUE(f.log.entries.empty());
}

TEST(CouplingEngineTest, FalseImmediateConditionSuppresses) {
  // E occurs while C is false: no coupling mode with an immediate
  // condition may fire.
  CouplingFixture f(CouplingMode::kImmediateDeferred);
  f.user_txn = f.db.Begin().value();
  ODE_ASSERT_OK(f.db.SetAttr(f.user_txn, f.obj, "ready", Value(false)));
  ODE_ASSERT_OK(f.db.Call(f.user_txn, f.obj, "bump").status());
  ODE_ASSERT_OK(f.db.Commit(f.user_txn));
  EXPECT_TRUE(f.log.entries.empty());
}

}  // namespace
}  // namespace ode
