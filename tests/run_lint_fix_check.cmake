# Dry-run check for `ode-lint --fix=check`: copy the fixable fixture into
# the build tree, run --fix=check, and assert (1) it exits 1 with pending
# fixes and a unified diff, (2) it wrote NOTHING, (3) after a real --fix
# the same invocation exits 0 with no pending fixes, (4) --format=json is
# rejected as incompatible (exit 2).
#
# Inputs: -DLINT=<ode-lint binary> -DFIXTURE=<source .trig> -DWORK=<copy>.

file(COPY_FILE ${FIXTURE} ${WORK})

execute_process(COMMAND ${LINT} --fix=check ${WORK}
  OUTPUT_VARIABLE check_out ERROR_VARIABLE check_err
  RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 1)
  message(FATAL_ERROR
    "--fix=check with pending fixes must exit 1, got ${check_rc}:\n"
    "${check_out}${check_err}")
endif()
if(NOT check_out MATCHES "would fix: trigger")
  message(FATAL_ERROR "--fix=check reported no pending fixes:\n${check_out}")
endif()
if(NOT check_out MATCHES "\\+\\+\\+ .*\\(fixed\\)")
  message(FATAL_ERROR "--fix=check printed no unified diff:\n${check_out}")
endif()
if(NOT check_out MATCHES "@@ -")
  message(FATAL_ERROR "--fix=check diff has no hunk header:\n${check_out}")
endif()

file(READ ${FIXTURE} before)
file(READ ${WORK} after)
if(NOT before STREQUAL after)
  message(FATAL_ERROR "--fix=check modified the file (dry run must not)")
endif()

execute_process(COMMAND ${LINT} --fix ${WORK}
  OUTPUT_VARIABLE fix_out RESULT_VARIABLE fix_rc)
execute_process(COMMAND ${LINT} --fix=check ${WORK}
  OUTPUT_VARIABLE clean_out ERROR_VARIABLE clean_err
  RESULT_VARIABLE clean_rc)
if(NOT clean_rc EQUAL 0)
  message(FATAL_ERROR
    "--fix=check on a fixed file must exit 0, got ${clean_rc}:\n"
    "${clean_out}${clean_err}")
endif()
if(NOT clean_out MATCHES "0 fixes pending")
  message(FATAL_ERROR "--fix=check summary missing on clean file:\n${clean_out}")
endif()

execute_process(COMMAND ${LINT} --fix=check --format=json ${WORK}
  OUTPUT_VARIABLE json_out ERROR_VARIABLE json_err
  RESULT_VARIABLE json_rc)
if(NOT json_rc EQUAL 2)
  message(FATAL_ERROR
    "--fix=check --format=json must be rejected with exit 2, got ${json_rc}")
endif()
message(STATUS "ode-lint --fix=check dry run ok")
