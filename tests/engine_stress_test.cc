// Randomized engine stress: thousands of random operations (create, call,
// set, activate/deactivate, commit, abort, clock advances) against a
// shadow model that only applies effects at commit. After every
// commit/abort, the database's visible state must equal the model —
// the §6 atomicity contract under trigger load.
#include <gtest/gtest.h>

#include <map>
#include <random>

#include "ode/database.h"
#include "test_util.h"

namespace ode {
namespace {

ClassDef CellClass() {
  ClassDef def("cell");
  def.AddAttr("v", Value(0));
  def.AddAttr("touches", Value(0));
  def.AddMethod(MethodDef{
      "add",
      {{"int", "d"}},
      MethodKind::kUpdate,
      [](MethodContext* ctx) -> Status {
        ODE_ASSIGN_OR_RETURN(Value v, ctx->Get("v"));
        ODE_ASSIGN_OR_RETURN(Value d, ctx->Arg("d"));
        ODE_ASSIGN_OR_RETURN(Value next, v.Add(d));
        return ctx->Set("v", next);
      }});
  def.AddMethod(MethodDef{"peek", {}, MethodKind::kReadOnly, nullptr});
  // A mix of trigger shapes riding along; `count` bumps `touches`.
  def.AddTrigger("T1(): perpetual every 3 (after add) ==> count");
  def.AddTrigger("T2(): perpetual after add (d) && d > 50 ==> count");
  {
    Result<TriggerSpec> spec = ParseTriggerSpec(
        "T3(): perpetual choose 4 (after add) ==> count");
    def.AddTrigger(*spec, HistoryView::kCommitted);
  }
  {
    Result<TriggerSpec> spec = ParseTriggerSpec(
        "T4(): perpetual choose 4 (after add) ==> count");
    def.AddTrigger(*spec, HistoryView::kCommittedViaTransform);
  }
  return def;
}

struct Shadow {
  // Committed attribute values.
  std::map<uint64_t, int64_t> v;
  std::map<uint64_t, bool> exists;
};

class StressSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(StressSweep, AtomicityHoldsUnderRandomOps) {
  std::mt19937 rng(GetParam());
  Database db;
  ODE_ASSERT_OK(db.RegisterAction(
      "count", [](const ActionContext& ctx) -> Status {
        Result<Value> t = ctx.db->PeekAttr(ctx.self, "touches");
        if (!t.ok()) return t.status();
        Result<Value> next = t->Add(Value(1));
        if (!next.ok()) return next.status();
        return ctx.db->SetAttr(ctx.txn, ctx.self, "touches", *next);
      }));
  ODE_ASSERT_OK(db.RegisterClass(CellClass()).status());

  Shadow committed;
  std::vector<Oid> objects;

  for (int txn_round = 0; txn_round < 120; ++txn_round) {
    TxnId t = db.Begin().value();
    // Pending view starts from the committed shadow.
    Shadow pending = committed;
    bool doomed = false;  // Set when an action aborted the txn.

    int ops = 1 + static_cast<int>(rng() % 6);
    for (int op = 0; op < ops && !doomed; ++op) {
      int what = static_cast<int>(rng() % 10);
      if (what < 2 || objects.empty()) {
        // Create.
        Result<Oid> oid = db.New(t, "cell");
        ASSERT_TRUE(oid.ok()) << oid.status().ToString();
        objects.push_back(*oid);
        pending.exists[oid->id] = true;
        pending.v[oid->id] = 0;
        // Arm a random subset of triggers; T3/T4 always together so the
        // committed-view-vs-transform comparison below is meaningful.
        for (const char* trig : {"T1", "T2"}) {
          if (rng() % 2 == 0) {
            ODE_ASSERT_OK(db.ActivateTrigger(t, *oid, trig));
          }
        }
        if (rng() % 2 == 0) {
          ODE_ASSERT_OK(db.ActivateTrigger(t, *oid, "T3"));
          ODE_ASSERT_OK(db.ActivateTrigger(t, *oid, "T4"));
        }
        continue;
      }
      Oid target = objects[rng() % objects.size()];
      if (!pending.exists[target.id]) continue;
      switch (what) {
        case 2:
        case 3:
        case 4: {
          int64_t d = static_cast<int64_t>(rng() % 100);
          Status s = db.Call(t, target, "add", {Value(d)}).status();
          if (s.code() == StatusCode::kAborted) {
            doomed = true;
            break;
          }
          ODE_ASSERT_OK(s);
          pending.v[target.id] += d;
          break;
        }
        case 5: {
          ODE_ASSERT_OK(db.Call(t, target, "peek").status());
          break;
        }
        case 6: {
          int64_t nv = static_cast<int64_t>(rng() % 1000);
          ODE_ASSERT_OK(db.SetAttr(t, target, "v", Value(nv)));
          pending.v[target.id] = nv;
          break;
        }
        case 7: {
          Status s = db.Delete(t, target);
          if (s.code() == StatusCode::kAborted) {
            doomed = true;
            break;
          }
          ODE_ASSERT_OK(s);
          pending.exists[target.id] = false;
          break;
        }
        case 8: {
          ODE_ASSERT_OK(db.ActivateTrigger(t, target, "T1"));
          break;
        }
        default: {
          ODE_ASSERT_OK(db.DeactivateTrigger(t, target, "T2"));
          break;
        }
      }
    }

    bool commit = !doomed && (rng() % 3 != 0);
    if (doomed) {
      // The engine already aborted the transaction.
      ASSERT_EQ(db.txn(t)->state(), TxnState::kAborted);
    } else if (commit) {
      ODE_ASSERT_OK(db.Commit(t));
      committed = pending;
    } else {
      ODE_ASSERT_OK(db.Abort(t));
    }

    // Invariant: visible state == committed shadow. (The `touches`
    // attribute is trigger-driven and intentionally unmodeled; `v` and
    // existence are the atomicity contract.)
    for (Oid oid : objects) {
      bool should_exist = committed.exists.count(oid.id) > 0 &&
                          committed.exists[oid.id];
      ASSERT_EQ(db.Exists(oid), should_exist)
          << "round " << txn_round << " object " << oid.id;
      if (should_exist) {
        ASSERT_EQ(db.PeekAttr(oid, "v").value().AsInt().value(),
                  committed.v[oid.id])
            << "round " << txn_round << " object " << oid.id;
      }
    }
    // The §6 claim, continuously: the committed-view trigger and its A′
    // twin never diverge.
    for (Oid oid : objects) {
      if (!db.Exists(oid)) continue;
      ASSERT_EQ(db.FireCount(oid, "T3"), db.FireCount(oid, "T4"))
          << "object " << oid.id;
    }
  }

  // The run must have exercised both outcomes and some trigger firings.
  EXPECT_GT(db.txns().num_committed(), 10u);
  EXPECT_GT(db.txns().num_aborted(), 5u);
  EXPECT_GT(db.stats().triggers_fired, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressSweep,
                         ::testing::Values(7u, 77u, 777u, 7777u, 77777u));

}  // namespace
}  // namespace ode
