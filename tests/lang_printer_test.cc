#include "lang/printer.h"

#include <gtest/gtest.h>

#include <random>

#include "lang/event_parser.h"
#include "test_util.h"

namespace ode {
namespace {

using testing_util::ParseOrDie;
using testing_util::RandomExpr;

/// Printing and re-parsing must reproduce the same printed text (the
/// canonical-form fixpoint property).
void ExpectRoundTrip(std::string_view text) {
  EventExprPtr e1 = ParseOrDie(text);
  std::string printed1 = PrintEventExpr(*e1);
  EventExprPtr e2 = ParseOrDie(printed1);
  std::string printed2 = PrintEventExpr(*e2);
  EXPECT_EQ(printed1, printed2) << "source: " << text;
}

TEST(PrinterTest, AtomForms) {
  EXPECT_EQ(ParseOrDie("after read")->ToString(), "after read");
  EXPECT_EQ(ParseOrDie("before withdraw(Item i, int q)")->ToString(),
            "before withdraw(Item i, int q)");
  EXPECT_EQ(ParseOrDie("at time(HR=9)")->ToString(), "at time(HR=9)");
}

TEST(PrinterTest, OperatorForms) {
  EXPECT_EQ(ParseOrDie("relative+(after f)")->ToString(),
            "relative+(after f)");
  EXPECT_EQ(ParseOrDie("relative 5 (after f)")->ToString(),
            "relative 5 (after f)");
  EXPECT_EQ(ParseOrDie("choose 2 (after f)")->ToString(),
            "choose 2 (after f)");
  EXPECT_EQ(ParseOrDie("fa(after a, after b, after c)")->ToString(),
            "fa(after a, after b, after c)");
}

TEST(PrinterTest, PrecedenceParenthesization) {
  // Or of And keeps children unparenthesized; And of Or must parenthesize.
  EXPECT_EQ(ParseOrDie("after a & after b | after c")->ToString(),
            "after a & after b | after c");
  EXPECT_EQ(ParseOrDie("after a & (after b | after c)")->ToString(),
            "after a & (after b | after c)");
  EXPECT_EQ(ParseOrDie("!(after a | after b)")->ToString(),
            "!(after a | after b)");
}

TEST(PrinterTest, MaskedForms) {
  ExpectRoundTrip("after withdraw(Item i, int q) && q > 1000");
  ExpectRoundTrip("(after f | after g) && ready");
}

TEST(PrinterTest, PaperExamplesRoundTrip) {
  ExpectRoundTrip("before withdraw && !authorized(user())");
  ExpectRoundTrip(
      "fa(at time(HR=9), choose 5 (after withdraw (i, q) && q > 100), "
      "at time(HR=9))");
  ExpectRoundTrip("after deposit; before withdraw; after withdraw");
  ExpectRoundTrip("every 5 (after access)");
  ExpectRoundTrip(
      "relative(at time(HR=9), prior(choose 5 (after tcommit), "
      "after tcommit) & !prior(at time(HR=9), after tcommit))");
}

TEST(PrinterTest, RandomExpressionsRoundTrip) {
  std::mt19937 rng(1234);
  for (int i = 0; i < 200; ++i) {
    EventExprPtr e1 = RandomExpr(&rng, 4);
    std::string printed1 = PrintEventExpr(*e1);
    Result<EventExprPtr> e2 = ParseEvent(printed1);
    ASSERT_TRUE(e2.ok()) << printed1 << ": " << e2.status().ToString();
    EXPECT_EQ(PrintEventExpr(**e2), printed1);
  }
}

}  // namespace
}  // namespace ode
