// Cascade/termination analysis (analyze/cascade.h): the triggering graph
// over a whole rulebase. Covers the effects sidecar parser, edge
// construction and solver-backed refinement, the T001–T004 findings with
// oracle-replayed witness cascades, the AnalyzeSpecSource integration
// (AnalysisReport::cascade), the cross-class entry point, and the
// Database registration hook (kWarn records, kReject rejects).
#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "analyze/analyzer.h"
#include "analyze/cascade.h"
#include "ode/database.h"
#include "test_util.h"

namespace ode {
namespace {

const Diagnostic* Find(const std::vector<Diagnostic>& diags,
                       std::string_view id) {
  for (const Diagnostic& d : diags) {
    if (d.id == id) return &d;
  }
  return nullptr;
}

size_t Count(const std::vector<Diagnostic>& diags, std::string_view id) {
  size_t n = 0;
  for (const Diagnostic& d : diags) {
    if (d.id == id) ++n;
  }
  return n;
}

EffectMap ParseEffectsOrDie(std::string_view source) {
  Result<EffectMap> r = ParseEffectsSource(source);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : EffectMap{};
}

AnalysisReport AnalyzeWithEffects(std::string_view source,
                                  const EffectMap& effects) {
  AnalyzeOptions options;
  options.effects = &effects;
  return AnalyzeSpecSource(source, options);
}

// ---------------------------------------------------------------------------
// Effects sidecar parsing.

TEST(EffectsSourceTest, ParsesEveryEffectForm) {
  EffectMap m = ParseEffectsOrDie(
      "# comment line\n"
      "alert: none\n"
      "post_prod: posts prod on self\n"
      "escalate: posts notify/2 on same-class, posts audit on class ledger\n"
      "kill: aborts\n"
      "mystery: opaque\n");
  ASSERT_EQ(m.size(), 4u);  // `opaque` stays out of the map.
  EXPECT_TRUE(m.at("alert").effects.empty());
  ASSERT_EQ(m.at("post_prod").effects.size(), 1u);
  const ActionEffect& pp = m.at("post_prod").effects[0];
  EXPECT_EQ(pp.kind, ActionEffect::Kind::kMethod);
  EXPECT_EQ(pp.target, ActionEffect::Target::kSelf);
  EXPECT_EQ(pp.method, "prod");
  EXPECT_EQ(pp.arity, -1);
  ASSERT_EQ(m.at("escalate").effects.size(), 2u);
  EXPECT_EQ(m.at("escalate").effects[0].arity, 2);
  EXPECT_EQ(m.at("escalate").effects[0].target,
            ActionEffect::Target::kSameClass);
  EXPECT_EQ(m.at("escalate").effects[1].target, ActionEffect::Target::kClass);
  EXPECT_EQ(m.at("escalate").effects[1].class_name, "ledger");
  ASSERT_EQ(m.at("kill").effects.size(), 1u);
  EXPECT_EQ(m.at("kill").effects[0].kind, ActionEffect::Kind::kAbort);
  EXPECT_EQ(m.count("mystery"), 0u);
}

TEST(EffectsSourceTest, RejectsMalformedLinesWithLineNumbers) {
  for (const char* bad : {
           "alert none\n",                   // missing colon
           "alert: posts\n",                 // posts without a name
           "alert: posts x on\n",            // dangling `on`
           "alert: posts x on planet nine extra\n",  // trailing junk
           "alert: posts x/banana\n",        // non-numeric arity
           "9lert: none\n",                  // bad identifier
       }) {
    Result<EffectMap> r = ParseEffectsSource(bad);
    EXPECT_FALSE(r.ok()) << "accepted: " << bad;
    EXPECT_NE(r.status().message().find("line 1"), std::string::npos)
        << r.status().ToString();
  }
  // Duplicate declarations are an error on the second line.
  Result<EffectMap> dup = ParseEffectsSource("a: none\na: aborts\n");
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.status().message().find("line 2"), std::string::npos);
}

TEST(EffectsSourceTest, SignatureRoundTripsThroughToString) {
  EffectMap m = ParseEffectsOrDie(
      "escalate: posts notify/2 on same-class, posts audit on class ledger\n");
  EXPECT_EQ(m.at("escalate").ToString(),
            "posts notify/2 on same-class, posts audit on class ledger");
  ActionSignature pure;
  EXPECT_EQ(pure.ToString(), "none");
}

// ---------------------------------------------------------------------------
// Triggering-graph construction and T001 on a file-scope rulebase.

constexpr char kPerpetualCycle[] =
    "ping(): perpetual after poke ==> post_prod\n"
    "\n"
    "pong(): perpetual after prod ==> post_poke\n";

constexpr char kCycleEffects[] =
    "post_prod: posts prod on self\n"
    "post_poke: posts poke on self\n";

TEST(CascadeTest, PerpetualFiringCycleIsT001Error) {
  EffectMap effects = ParseEffectsOrDie(kCycleEffects);
  AnalysisReport report = AnalyzeWithEffects(kPerpetualCycle, effects);

  ASSERT_TRUE(report.cascade.has_value());
  const CascadeGraph& g = *report.cascade;
  ASSERT_EQ(g.nodes.size(), 2u);
  EXPECT_TRUE(g.has_cycle);
  EXPECT_FALSE(g.truncated);
  EXPECT_EQ(g.max_chain, 0u);  // Unbounded: the graph cycles.
  ASSERT_EQ(g.cycles.size(), 1u);
  EXPECT_TRUE(g.cycles[0].all_perpetual);
  EXPECT_EQ(g.cycles[0].nodes.size(), 2u);

  const Diagnostic* t001 = Find(report.file_diagnostics, "T001");
  ASSERT_NE(t001, nullptr);
  EXPECT_EQ(t001->severity, Severity::kError);
  EXPECT_NE(t001->message.find("ping"), std::string::npos);
  EXPECT_NE(t001->message.find("pong"), std::string::npos);
  EXPECT_TRUE(report.has_errors());

  // The finding carries an oracle-replayed witness cascade.
  // One priming history plus one history per cycle hop.
  ASSERT_EQ(t001->witness.size(), 3u);
  EXPECT_NE(t001->witness[0].claim.find("priming"), std::string::npos);
  EXPECT_NE(t001->witness[1].claim.find("cascade step"), std::string::npos);
  EXPECT_GT(report.witnesses, 0u);
  EXPECT_EQ(report.witness_failures, 0u);
}

TEST(CascadeTest, EdgesRecordViaAndFiringExplanation) {
  EffectMap effects = ParseEffectsOrDie(kCycleEffects);
  AnalysisReport report = AnalyzeWithEffects(kPerpetualCycle, effects);
  ASSERT_TRUE(report.cascade.has_value());
  const CascadeGraph& g = *report.cascade;
  ASSERT_EQ(g.edges.size(), 2u);
  for (const CascadeEdge& e : g.edges) {
    EXPECT_FALSE(e.opaque);
    EXPECT_TRUE(e.fires) << e.why;
    EXPECT_FALSE(e.via.empty());
    EXPECT_NE(e.why.find("may post"), std::string::npos) << e.why;
  }
}

// The same cycle, but the closing edge's guard is integer-refutable:
// `q > 1 && q < 2` has no solution once `q` is declared integral, so the
// guard-true micro-symbol is unrealizable and the prod→pong edge must be
// pruned. The trigger still fires on `nudge`, so this is not dead-trigger
// (A001) fallout.
constexpr char kRefutedCycle[] =
    "ping(): perpetual after poke ==> post_prod\n"
    "\n"
    "pong(): perpetual after prod(int q) && q > 1 && q < 2 | after nudge "
    "==> post_poke\n";

TEST(CascadeTest, SolverRefutedGuardBreaksTheCycle) {
  EffectMap effects = ParseEffectsOrDie(kCycleEffects);
  AnalysisReport report = AnalyzeWithEffects(kRefutedCycle, effects);
  ASSERT_TRUE(report.cascade.has_value());
  const CascadeGraph& g = *report.cascade;
  EXPECT_FALSE(g.has_cycle);
  EXPECT_TRUE(g.cycles.empty());
  EXPECT_EQ(Find(report.file_diagnostics, "T001"), nullptr);
  // Only pong→ping survives (post_poke posts poke, on which ping fires);
  // the refuted prod edge is gone.
  ASSERT_EQ(g.edges.size(), 1u);
  EXPECT_EQ(g.nodes[g.edges[0].from].name, "pong");
  EXPECT_EQ(g.nodes[g.edges[0].to].name, "ping");
  EXPECT_FALSE(report.has_errors());
  EXPECT_EQ(g.max_chain, 2u);  // pong then ping: two firings.
}

// Ordinary (non-perpetual) triggers disarm after firing, so a cycle is a
// warning, not an error: each slot fires at most once per activation.
constexpr char kOrdinaryCycle[] =
    "ping(): after poke ==> post_prod\n"
    "\n"
    "pong(): after prod ==> post_poke\n";

TEST(CascadeTest, OrdinaryCycleIsT001Warning) {
  EffectMap effects = ParseEffectsOrDie(kCycleEffects);
  AnalysisReport report = AnalyzeWithEffects(kOrdinaryCycle, effects);
  const Diagnostic* t001 = Find(report.file_diagnostics, "T001");
  ASSERT_NE(t001, nullptr);
  EXPECT_EQ(t001->severity, Severity::kWarning);
  EXPECT_FALSE(report.has_errors());
}

TEST(CascadeTest, SelfLoopOnImmediateTriggerIsT002) {
  EffectMap effects = ParseEffectsOrDie("recurse: posts deposit on self\n");
  AnalysisReport report = AnalyzeWithEffects(
      "greedy(): perpetual after deposit ==> recurse\n", effects);
  // The singleton strong cycle is T001; T002 flags the immediate coupling.
  EXPECT_NE(Find(report.file_diagnostics, "T001"), nullptr);
  const Diagnostic* t002 = Find(report.file_diagnostics, "T002");
  ASSERT_NE(t002, nullptr);
  EXPECT_EQ(t002->severity, Severity::kWarning);
  EXPECT_EQ(t002->trigger, "greedy");
}

TEST(CascadeTest, OpaqueActionIsT003NoteWithAssumedEdges) {
  EffectMap effects = ParseEffectsOrDie("post_prod: posts prod on self\n");
  AnalysisReport report = AnalyzeWithEffects(
      "watch(): after poke ==> mystery\n"
      "\n"
      "tail(): after prod ==> post_prod\n",
      effects);
  ASSERT_TRUE(report.cascade.has_value());
  const CascadeGraph& g = *report.cascade;
  const Diagnostic* t003 = Find(report.file_diagnostics, "T003");
  ASSERT_NE(t003, nullptr);
  EXPECT_EQ(t003->severity, Severity::kNote);
  EXPECT_NE(t003->message.find("mystery"), std::string::npos);
  // The opaque action contributes assumed edges, marked as such.
  bool saw_opaque_edge = false;
  for (const CascadeEdge& e : g.edges) {
    if (g.nodes[e.from].name == "watch") {
      EXPECT_TRUE(e.opaque);
      saw_opaque_edge = true;
    }
  }
  EXPECT_TRUE(saw_opaque_edge);
  // Assumed edges alone never prove a T001 firing cycle... but
  // tail()'s self-edge does (posts prod, fires on prod).
  ASSERT_EQ(g.cycles.size(), 1u);
  EXPECT_EQ(g.nodes[g.cycles[0].nodes[0]].name, "tail");
}

TEST(CascadeTest, AcyclicChainMeasuresMaxChainAndT004) {
  EffectMap effects = ParseEffectsOrDie(
      "post_b: posts beta on self\n"
      "post_c: posts gamma on self\n"
      "finish: none\n");
  const char* chain =
      "a(): after alpha ==> post_b\n"
      "\n"
      "b(): after beta ==> post_c\n"
      "\n"
      "c(): after gamma ==> finish\n";

  EffectMap m = effects;
  AnalyzeOptions options;
  options.effects = &m;
  AnalysisReport report = AnalyzeSpecSource(chain, options);
  ASSERT_TRUE(report.cascade.has_value());
  EXPECT_FALSE(report.cascade->has_cycle);
  EXPECT_EQ(report.cascade->max_chain, 3u);
  EXPECT_EQ(Find(report.file_diagnostics, "T004"), nullptr);

  // A runtime depth limit smaller than the chain is flagged.
  options.cascade_depth_limit = 2;
  AnalysisReport tight = AnalyzeSpecSource(chain, options);
  const Diagnostic* t004 = Find(tight.file_diagnostics, "T004");
  ASSERT_NE(t004, nullptr);
  EXPECT_EQ(t004->severity, Severity::kWarning);

  // A sufficient limit is not.
  options.cascade_depth_limit = 3;
  AnalysisReport ok = AnalyzeSpecSource(chain, options);
  EXPECT_EQ(Find(ok.file_diagnostics, "T004"), nullptr);
}

TEST(CascadeTest, NoEffectsDeclaredYieldsNoCascadeLayer) {
  AnalysisReport report = AnalyzeSpecSource(kPerpetualCycle);
  EXPECT_FALSE(report.cascade.has_value());
  EXPECT_EQ(Find(report.file_diagnostics, "T001"), nullptr);
}

// ---------------------------------------------------------------------------
// Cross-class analysis: effects targeting a named class.

TEST(CascadeTest, CrossClassEdgeThroughNamedClassTarget) {
  ClassTriggerSet account;
  account.class_name = "account";
  account.method_arity = {{"withdraw", 1}};
  account.trigger_names = {"watch"};
  {
    Result<TriggerSpec> spec = ParseTriggerSpec(
        "watch(): perpetual after withdraw ==> notify_ledger");
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    account.triggers.push_back(*spec);
  }
  ClassTriggerSet ledger;
  ledger.class_name = "ledger";
  ledger.method_arity = {{"entry", 1}};
  ledger.trigger_names = {"mirror"};
  {
    Result<TriggerSpec> spec = ParseTriggerSpec(
        "mirror(): perpetual after entry ==> poke_account");
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    ledger.triggers.push_back(*spec);
  }

  EffectMap effects = ParseEffectsOrDie(
      "notify_ledger: posts entry on class ledger\n"
      "poke_account: posts withdraw on class account\n");
  CascadeOptions options;
  options.effects = &effects;
  // Class-scoped triggers are registered text without file spans; skip
  // witness synthesis and assert on the graph verdicts alone.
  options.witnesses = false;
  CascadeResult result = AnalyzeCascadeOverClassSets(
      {&account, &ledger}, options);

  ASSERT_EQ(result.graph.nodes.size(), 2u);
  EXPECT_TRUE(result.graph.has_cycle);
  ASSERT_EQ(result.graph.cycles.size(), 1u);
  const Diagnostic* t001 = Find(result.diagnostics, "T001");
  ASSERT_NE(t001, nullptr);
  EXPECT_NE(t001->message.find("account::watch"), std::string::npos);
  EXPECT_NE(t001->message.find("ledger::mirror"), std::string::npos);

  // Retargeting the ledger effect at an absent class breaks the cycle.
  EffectMap scoped = ParseEffectsOrDie(
      "notify_ledger: posts entry on class vault\n"
      "poke_account: posts withdraw on class account\n");
  options.effects = &scoped;
  CascadeResult quiet = AnalyzeCascadeOverClassSets(
      {&account, &ledger}, options);
  EXPECT_FALSE(quiet.graph.has_cycle);
  EXPECT_EQ(Find(quiet.diagnostics, "T001"), nullptr);
}

TEST(CascadeTest, SameClassTargetDoesNotLeakAcrossClasses) {
  ClassTriggerSet a;
  a.class_name = "alpha";
  a.trigger_names = {"t"};
  {
    Result<TriggerSpec> spec =
        ParseTriggerSpec("t(): perpetual after poke ==> post_poke");
    ASSERT_TRUE(spec.ok());
    a.triggers.push_back(*spec);
  }
  ClassTriggerSet b = a;
  b.class_name = "beta";

  EffectMap effects = ParseEffectsOrDie("post_poke: posts poke on self\n");
  CascadeOptions options;
  options.effects = &effects;
  options.witnesses = false;
  CascadeResult result = AnalyzeCascadeOverClassSets({&a, &b}, options);
  // Each class has its own self-cycle; no alpha↔beta edges.
  ASSERT_EQ(result.graph.edges.size(), 2u);
  for (const CascadeEdge& e : result.graph.edges) {
    EXPECT_EQ(result.graph.nodes[e.from].class_name,
              result.graph.nodes[e.to].class_name);
  }
  EXPECT_EQ(result.graph.cycles.size(), 2u);
  EXPECT_EQ(Count(result.diagnostics, "T001"), 2u);
}

// ---------------------------------------------------------------------------
// Database registration hook.

ClassDef CyclingClass() {
  ClassDef def("item");
  def.AddAttr("stock", Value(0));
  def.AddMethod(MethodDef{
      "poke", {{"int", "q"}}, MethodKind::kUpdate, nullptr});
  def.AddMethod(MethodDef{
      "prod", {{"int", "q"}}, MethodKind::kUpdate, nullptr});
  def.AddTrigger("ping(): perpetual after poke ==> post_prod",
                 HistoryView::kFull, /*auto_activate=*/false);
  def.AddTrigger("pong(): perpetual after prod ==> post_poke",
                 HistoryView::kFull, /*auto_activate=*/false);
  return def;
}

void RegisterCycleActions(Database& db) {
  ODE_ASSERT_OK(db.RegisterAction(
      "post_prod", [](const ActionContext&) -> Status { return {}; },
      ActionSignature{{ActionEffect::MakeMethod("prod")}}));
  ODE_ASSERT_OK(db.RegisterAction(
      "post_poke", [](const ActionContext&) -> Status { return {}; },
      ActionSignature{{ActionEffect::MakeMethod("poke")}}));
}

TEST(CascadeRegisterTest, RejectModeRefusesStaticallyDivergingRulebase) {
  DatabaseOptions options;
  options.analyze_triggers = DatabaseOptions::TriggerAnalysisMode::kReject;
  Database db(options);
  RegisterCycleActions(db);
  Result<ClassId> id = db.RegisterClass(CyclingClass());
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(id.status().message().find("cascade"), std::string::npos)
      << id.status().ToString();
  EXPECT_EQ(db.classes().Find("item"), nullptr);
}

TEST(CascadeRegisterTest, WarnModeRecordsT001AndRegisters) {
  DatabaseOptions options;
  options.analyze_triggers = DatabaseOptions::TriggerAnalysisMode::kWarn;
  Database db(options);
  RegisterCycleActions(db);
  Result<ClassId> id = db.RegisterClass(CyclingClass());
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  const Diagnostic* t001 = Find(db.analysis_diagnostics(), "T001");
  ASSERT_NE(t001, nullptr);
  EXPECT_NE(db.classes().Find("item"), nullptr);
}

TEST(CascadeRegisterTest, NoDeclaredSignaturesSkipsCascadeSweep) {
  DatabaseOptions options;
  options.analyze_triggers = DatabaseOptions::TriggerAnalysisMode::kReject;
  Database db(options);
  // Actions registered WITHOUT signatures: cascade stays off (nothing to
  // analyze against), so the same rulebase registers fine.
  ODE_ASSERT_OK(db.RegisterAction(
      "post_prod", [](const ActionContext&) -> Status { return {}; }));
  ODE_ASSERT_OK(db.RegisterAction(
      "post_poke", [](const ActionContext&) -> Status { return {}; }));
  Result<ClassId> id = db.RegisterClass(CyclingClass());
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(Find(db.analysis_diagnostics(), "T001"), nullptr);
}

}  // namespace
}  // namespace ode
