// Property test: the analyzer's verdicts are claims about every possible
// history, so no randomized history may ever contradict them. Emptiness /
// universality (A001/A002) and pairwise equivalence / subsumption
// (A004/A005) are each cross-validated against the §4 denotational oracle
// on 1000+ random histories per expression / pair.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "analyze/automaton_check.h"
#include "compile/compiler.h"
#include "lang/event_ast.h"
#include "semantics/oracle.h"
#include "test_util.h"

namespace ode {
namespace {

using testing_util::RandomExpr;
using testing_util::RandomHistory;

constexpr int kHistoriesPerSubject = 1000;

TEST(AnalyzeOracleProperty, EmptinessAndUniversalityMatchOracle) {
  std::mt19937 rng(20260805);
  int checked = 0;
  for (int trial = 0; trial < 60 && checked < 25; ++trial) {
    EventExprPtr expr = RandomExpr(&rng, 3);
    Result<CompiledEvent> compiled = CompileEvent(expr, CompileOptions());
    if (!compiled.ok()) continue;  // Resource-guard rejection.
    ++checked;

    std::vector<bool> possible = ComputePossibleSymbols(*compiled);
    bool empty = DfaEmptySigmaPlus(compiled->dfa, possible);
    bool universal = DfaUniversalSigmaPlus(compiled->dfa, possible);
    ASSERT_FALSE(empty && universal) << expr->ToString();

    Oracle oracle(expr, &compiled->alphabet);
    for (int h = 0; h < kHistoriesPerSubject; ++h) {
      std::vector<SymbolId> history = RandomHistory(
          &rng, compiled->alphabet.size(), 1 + (rng() % 8));
      Result<std::vector<bool>> occ = oracle.OccurrencePoints(history);
      ASSERT_TRUE(occ.ok()) << expr->ToString() << ": "
                            << occ.status().ToString();
      for (size_t p = 0; p < occ->size(); ++p) {
        if (empty) {
          ASSERT_FALSE((*occ)[p])
              << "analyzer said never-fires, oracle found an occurrence: "
              << expr->ToString();
        }
        if (universal) {
          ASSERT_TRUE((*occ)[p])
              << "analyzer said universal, oracle found a gap: "
              << expr->ToString();
        }
      }
    }
  }
  EXPECT_GE(checked, 10);
}

TEST(AnalyzeOracleProperty, PairwiseVerdictsMatchOracle) {
  std::mt19937 rng(42);
  int checked = 0;
  for (int trial = 0; trial < 40 && checked < 15; ++trial) {
    EventExprPtr a = RandomExpr(&rng, 3);
    EventExprPtr b;
    switch (trial % 3) {
      case 0:  // !!E == E: an equivalent-by-construction pair.
        b = EventExpr::Not(EventExpr::Not(a));
        break;
      case 1:  // L(a) ⊆ L(a | fresh): a subsumed-by-construction pair.
        b = EventExpr::Or(a, RandomExpr(&rng, 2));
        break;
      default:  // Independent pair — usually distinct.
        b = RandomExpr(&rng, 3);
        break;
    }

    Result<PairRelation> rel = CompareEventExprs(a, b, CompileOptions());
    if (!rel.ok()) continue;  // Resource-guard rejection.
    if (*rel == PairRelation::kIncomparable) continue;

    // The oracle must see both expressions over ONE symbol space — the
    // same joint alphabet CompareEventExprs builds internally.
    Result<Alphabet> joint = Alphabet::Build(*EventExpr::Or(a, b));
    ASSERT_TRUE(joint.ok()) << joint.status().ToString();
    Oracle oracle_a(a, &*joint);
    Oracle oracle_b(b, &*joint);
    ++checked;

    for (int h = 0; h < kHistoriesPerSubject; ++h) {
      std::vector<SymbolId> history =
          RandomHistory(&rng, joint->size(), 1 + (rng() % 8));
      Result<std::vector<bool>> occ_a = oracle_a.OccurrencePoints(history);
      Result<std::vector<bool>> occ_b = oracle_b.OccurrencePoints(history);
      ASSERT_TRUE(occ_a.ok() && occ_b.ok());
      for (size_t p = 0; p < occ_a->size(); ++p) {
        switch (*rel) {
          case PairRelation::kEquivalent:
            ASSERT_EQ((*occ_a)[p], (*occ_b)[p])
                << "equivalence verdict contradicted at point " << p << ": "
                << a->ToString() << " vs " << b->ToString();
            break;
          case PairRelation::kASubsumesB:  // L(b) ⊆ L(a).
            ASSERT_TRUE(!(*occ_b)[p] || (*occ_a)[p])
                << "subsumption verdict contradicted: " << a->ToString()
                << " vs " << b->ToString();
            break;
          case PairRelation::kBSubsumesA:  // L(a) ⊆ L(b).
            ASSERT_TRUE(!(*occ_a)[p] || (*occ_b)[p])
                << "subsumption verdict contradicted: " << a->ToString()
                << " vs " << b->ToString();
            break;
          default:
            break;
        }
      }
    }

    // The constructed identities must also be *recognized*, not merely
    // uncontradicted.
    if (trial % 3 == 0) {
      EXPECT_EQ(*rel, PairRelation::kEquivalent)
          << a->ToString() << " vs !!same";
    }
    if (trial % 3 == 1) {
      EXPECT_TRUE(*rel == PairRelation::kBSubsumesA ||
                  *rel == PairRelation::kEquivalent)
          << a->ToString() << " vs " << b->ToString();
    }
  }
  EXPECT_GE(checked, 8);
}

}  // namespace
}  // namespace ode
