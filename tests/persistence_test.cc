#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "ode/database.h"
#include "test_util.h"

namespace ode {
namespace {

ClassDef CounterClass() {
  ClassDef def("counter");
  def.AddAttr("n", Value(0));
  def.AddAttr("label", Value("x"));
  def.AddAttr("ratio", Value(0.5));
  def.AddAttr("peer", Value(kNullOid));
  def.AddMethod(MethodDef{
      "bump",
      {},
      MethodKind::kUpdate,
      [](MethodContext* ctx) -> Status {
        ODE_ASSIGN_OR_RETURN(Value n, ctx->Get("n"));
        ODE_ASSIGN_OR_RETURN(Value next, n.Add(Value(1)));
        return ctx->Set("n", next);
      }});
  def.AddTrigger("T(): perpetual choose 3 (after bump) ==> noop");
  def.AddTrigger("D(): perpetual at time(HR=17) ==> noop");
  return def;
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

/// Registers the actions and classes a database needs before it can load
/// a counter snapshot (class definitions are code, not data).
void SetUpSchema(Database* db) {
  EXPECT_TRUE(db->RegisterAction("noop", [](const ActionContext&) -> Status {
                  return Status::OK();
                }).ok());
  EXPECT_TRUE(db->RegisterClass(CounterClass()).status().ok());
}

TEST(PersistenceTest, RoundTripObjectsAndValues) {
  std::string path = TempPath("snap1.ode");
  Database db;
  SetUpSchema(&db);
  TxnId t = db.Begin().value();
  Oid a = db.New(t, "counter", {{"n", Value(7)},
                                {"label", Value("hello world")},
                                {"ratio", Value(2.25)}})
              .value();
  Oid b = db.New(t, "counter", {{"peer", Value(a)}}).value();
  ODE_ASSERT_OK(db.Commit(t));
  ODE_ASSERT_OK(db.SaveSnapshot(path));

  Database db2;
  SetUpSchema(&db2);
  ODE_ASSERT_OK(db2.LoadSnapshot(path));
  EXPECT_EQ(db2.PeekAttr(a, "n").value().AsInt().value(), 7);
  EXPECT_EQ(db2.PeekAttr(a, "label").value().AsString().value(),
            "hello world");
  EXPECT_EQ(db2.PeekAttr(a, "ratio").value().AsDouble().value(), 2.25);
  EXPECT_EQ(db2.PeekAttr(b, "peer").value().AsOid().value(), a);
}

TEST(PersistenceTest, TriggerStateSurvives) {
  // The §5 point: the one-word automaton state is all that must persist —
  // two committed bumps before the snapshot mean the third after reload
  // fires the choose-3 trigger.
  std::string path = TempPath("snap2.ode");
  Database db;
  SetUpSchema(&db);
  TxnId t = db.Begin().value();
  Oid a = db.New(t, "counter").value();
  ODE_ASSERT_OK(db.ActivateTrigger(t, a, "T"));
  ODE_ASSERT_OK(db.Commit(t));
  for (int i = 0; i < 2; ++i) {
    TxnId ti = db.Begin().value();
    ODE_ASSERT_OK(db.Call(ti, a, "bump").status());
    ODE_ASSERT_OK(db.Commit(ti));
  }
  EXPECT_EQ(db.FireCount(a, "T"), 0u);
  ODE_ASSERT_OK(db.SaveSnapshot(path));

  Database db2;
  SetUpSchema(&db2);
  ODE_ASSERT_OK(db2.LoadSnapshot(path));
  EXPECT_TRUE(db2.TriggerActive(a, "T").value());
  EXPECT_EQ(db2.TriggerState(a, "T").value(), db.TriggerState(a, "T").value());
  TxnId t3 = db2.Begin().value();
  ODE_ASSERT_OK(db2.Call(t3, a, "bump").status());
  ODE_ASSERT_OK(db2.Commit(t3));
  EXPECT_EQ(db2.FireCount(a, "T"), 1u);
}

TEST(PersistenceTest, ClockAndTimersSurvive) {
  std::string path = TempPath("snap3.ode");
  Database db;
  SetUpSchema(&db);
  TxnId t = db.Begin().value();
  Oid a = db.New(t, "counter").value();
  ODE_ASSERT_OK(db.ActivateTrigger(t, a, "D"));
  ODE_ASSERT_OK(db.Commit(t));
  ODE_ASSERT_OK(db.AdvanceClock(3600 * 1000));  // 01:00.
  ODE_ASSERT_OK(db.SaveSnapshot(path));

  Database db2;
  SetUpSchema(&db2);
  ODE_ASSERT_OK(db2.LoadSnapshot(path));
  EXPECT_EQ(db2.clock().now(), 3600 * 1000);
  EXPECT_EQ(db2.clock().num_timers(), 1u);
  // The 17:00 timer fires after reload.
  ODE_ASSERT_OK(db2.AdvanceClockTo(18 * 3600 * 1000));
  EXPECT_EQ(db2.FireCount(a, "D"), 1u);
}

TEST(PersistenceTest, OidAllocationContinues) {
  std::string path = TempPath("snap4.ode");
  Database db;
  SetUpSchema(&db);
  TxnId t = db.Begin().value();
  Oid a = db.New(t, "counter").value();
  ODE_ASSERT_OK(db.Commit(t));
  ODE_ASSERT_OK(db.SaveSnapshot(path));

  Database db2;
  SetUpSchema(&db2);
  ODE_ASSERT_OK(db2.LoadSnapshot(path));
  TxnId t2 = db2.Begin().value();
  Oid b = db2.New(t2, "counter").value();
  EXPECT_GT(b.id, a.id);  // No oid reuse.
}

TEST(PersistenceTest, ChecksumDetectsCorruption) {
  std::string path = TempPath("snap5.ode");
  Database db;
  SetUpSchema(&db);
  TxnId t = db.Begin().value();
  ODE_ASSERT_OK(db.New(t, "counter", {{"n", Value(7)}}).status());
  ODE_ASSERT_OK(db.Commit(t));
  ODE_ASSERT_OK(db.SaveSnapshot(path));

  // Flip a digit in the body.
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  size_t pos = content.find("int:7");
  ASSERT_NE(pos, std::string::npos);
  content[pos + 4] = '8';
  std::ofstream out(path, std::ios::trunc);
  out << content;
  out.close();

  Database db2;
  SetUpSchema(&db2);
  EXPECT_EQ(db2.LoadSnapshot(path).code(), StatusCode::kInvalidArgument);
}

TEST(PersistenceTest, MissingClassRejected) {
  std::string path = TempPath("snap6.ode");
  Database db;
  SetUpSchema(&db);
  TxnId t = db.Begin().value();
  ODE_ASSERT_OK(db.New(t, "counter").status());
  ODE_ASSERT_OK(db.Commit(t));
  ODE_ASSERT_OK(db.SaveSnapshot(path));

  Database empty;  // No classes registered.
  EXPECT_EQ(empty.LoadSnapshot(path).code(),
            StatusCode::kFailedPrecondition);
}

TEST(PersistenceTest, MissingFileIsNotFound) {
  Database db;
  SetUpSchema(&db);
  EXPECT_EQ(db.LoadSnapshot(TempPath("does_not_exist.ode")).code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace ode
