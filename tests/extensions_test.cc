// Tests for the §9 future-work extensions this library implements:
//  * argument capture — actions read the constituent events' parameters
//    through ActionContext::Witness;
//  * class-scope triggers — one automaton over the merged event stream of
//    every instance of a class;
//  * history expressions — the HistoryQuery API (tested separately in
//    history_query_test.cc).
#include <gtest/gtest.h>

#include "ode/database.h"
#include "test_util.h"

namespace ode {
namespace {

ClassDef AccountClass() {
  ClassDef def("account");
  def.AddAttr("balance", Value(1000));
  def.AddAttr("noted_deposit", Value(0));
  def.AddAttr("noted_withdraw", Value(0));
  auto adjust = [](MethodContext* ctx, int sign) -> Status {
    ODE_ASSIGN_OR_RETURN(Value balance, ctx->Get("balance"));
    ODE_ASSIGN_OR_RETURN(Value q, ctx->Arg("q"));
    ODE_ASSIGN_OR_RETURN(Value delta, q.Mul(Value(sign)));
    ODE_ASSIGN_OR_RETURN(Value next, balance.Add(delta));
    return ctx->Set("balance", next);
  };
  def.AddMethod(MethodDef{"deposit",
                          {{"int", "q"}},
                          MethodKind::kUpdate,
                          [adjust](MethodContext* c) { return adjust(c, 1); }});
  def.AddMethod(MethodDef{"withdraw",
                          {{"int", "q"}},
                          MethodKind::kUpdate,
                          [adjust](MethodContext* c) {
                            return adjust(c, -1);
                          }});
  return def;
}

// --- Argument capture -----------------------------------------------------

TEST(WitnessCaptureTest, ActionSeesConstituentArguments) {
  // The composite `after deposit then after withdraw` carries no
  // parameters itself (§3.3); witnesses recover both constituents' q.
  ClassDef def = AccountClass();
  def.AddTrigger(
      "Pair(): perpetual relative(after deposit, after withdraw) "
      "==> note");
  Database db;
  ODE_ASSERT_OK(db.RegisterAction(
      "note", [](const ActionContext& ctx) -> Status {
        ODE_RETURN_IF_ERROR(ctx.db->SetAttr(
            ctx.txn, ctx.self, "noted_deposit",
            ctx.WitnessArg("deposit", "q")));
        return ctx.db->SetAttr(ctx.txn, ctx.self, "noted_withdraw",
                               ctx.WitnessArg("withdraw", "q"));
      }));
  ODE_ASSERT_OK(db.RegisterClass(std::move(def)).status());

  TxnId t = db.Begin().value();
  Oid acct = db.New(t, "account").value();
  ODE_ASSERT_OK(db.ActivateTrigger(t, acct, "Pair"));
  ODE_ASSERT_OK(db.Call(t, acct, "deposit", {Value(70)}).status());
  ODE_ASSERT_OK(db.Call(t, acct, "withdraw", {Value(30)}).status());
  ODE_ASSERT_OK(db.Commit(t));

  EXPECT_EQ(db.PeekAttr(acct, "noted_deposit").value().AsInt().value(), 70);
  EXPECT_EQ(db.PeekAttr(acct, "noted_withdraw").value().AsInt().value(), 30);
}

TEST(WitnessCaptureTest, LatestOccurrenceWins) {
  ClassDef def = AccountClass();
  def.AddTrigger(
      "Pair(): perpetual relative(after deposit, after withdraw) ==> note");
  Database db;
  ODE_ASSERT_OK(db.RegisterAction(
      "note", [](const ActionContext& ctx) -> Status {
        return ctx.db->SetAttr(ctx.txn, ctx.self, "noted_deposit",
                               ctx.WitnessArg("deposit", "q"));
      }));
  ODE_ASSERT_OK(db.RegisterClass(std::move(def)).status());
  TxnId t = db.Begin().value();
  Oid acct = db.New(t, "account").value();
  ODE_ASSERT_OK(db.ActivateTrigger(t, acct, "Pair"));
  ODE_ASSERT_OK(db.Call(t, acct, "deposit", {Value(10)}).status());
  ODE_ASSERT_OK(db.Call(t, acct, "deposit", {Value(20)}).status());
  ODE_ASSERT_OK(db.Call(t, acct, "withdraw", {Value(5)}).status());
  // The most recent deposit (20) is the recorded witness.
  EXPECT_EQ(db.PeekAttr(acct, "noted_deposit").value().AsInt().value(), 20);
}

TEST(WitnessCaptureTest, DisabledByOption) {
  DatabaseOptions opts;
  opts.capture_witnesses = false;
  ClassDef def = AccountClass();
  def.AddTrigger("W(): perpetual after withdraw ==> check");
  Database db(opts);
  bool witness_seen = true;
  ODE_ASSERT_OK(db.RegisterAction(
      "check", [&witness_seen](const ActionContext& ctx) -> Status {
        witness_seen = ctx.Witness("withdraw") != nullptr;
        return Status::OK();
      }));
  ODE_ASSERT_OK(db.RegisterClass(std::move(def)).status());
  TxnId t = db.Begin().value();
  Oid acct = db.New(t, "account").value();
  ODE_ASSERT_OK(db.ActivateTrigger(t, acct, "W"));
  ODE_ASSERT_OK(db.Call(t, acct, "withdraw", {Value(1)}).status());
  EXPECT_FALSE(witness_seen);
}

TEST(WitnessCaptureTest, ResetOnReactivation) {
  ClassDef def = AccountClass();
  def.AddTrigger("W(): after withdraw ==> check");
  Database db;
  Value seen;
  ODE_ASSERT_OK(db.RegisterAction(
      "check", [&seen](const ActionContext& ctx) -> Status {
        seen = ctx.WitnessArg("deposit", "q");
        return Status::OK();
      }));
  ODE_ASSERT_OK(db.RegisterClass(std::move(def)).status());
  TxnId t = db.Begin().value();
  Oid acct = db.New(t, "account").value();
  ODE_ASSERT_OK(db.ActivateTrigger(t, acct, "W"));
  // `deposit` is not in W's alphabet, so no witness is recorded for it.
  ODE_ASSERT_OK(db.Call(t, acct, "deposit", {Value(9)}).status());
  ODE_ASSERT_OK(db.Call(t, acct, "withdraw", {Value(1)}).status());
  EXPECT_TRUE(seen.is_null());
}

// --- Class-scope triggers ---------------------------------------------------

TEST(ClassTriggerTest, MonitorsAllInstances) {
  ClassDef def = AccountClass();
  def.AddTrigger("Big(): perpetual after withdraw (q) && q > 100 ==> count");
  Database db;
  int fired = 0;
  ODE_ASSERT_OK(db.RegisterAction(
      "count", [&fired](const ActionContext&) -> Status {
        ++fired;
        return Status::OK();
      }));
  ODE_ASSERT_OK(db.RegisterClass(std::move(def)).status());
  ODE_ASSERT_OK(db.ActivateClassTrigger("account", "Big"));

  TxnId t = db.Begin().value();
  Oid a = db.New(t, "account").value();
  Oid b = db.New(t, "account").value();
  ODE_ASSERT_OK(db.Call(t, a, "withdraw", {Value(150)}).status());
  ODE_ASSERT_OK(db.Call(t, b, "withdraw", {Value(150)}).status());
  ODE_ASSERT_OK(db.Call(t, a, "withdraw", {Value(50)}).status());
  ODE_ASSERT_OK(db.Commit(t));

  // Both instances observed by the single class-scope automaton.
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(db.ClassFireCount("account", "Big"), 2u);
  // Per-object fire counts untouched.
  EXPECT_EQ(db.FireCount(a, "Big"), 0u);
}

TEST(ClassTriggerTest, CompositeAcrossObjects) {
  // choose 3 over the merged stream: the third withdrawal *anywhere* in
  // the class fires, regardless of which object it hits.
  ClassDef def = AccountClass();
  def.AddTrigger("Third(): perpetual choose 3 (after withdraw) ==> count");
  Database db;
  std::vector<uint64_t> firing_objects;
  ODE_ASSERT_OK(db.RegisterAction(
      "count", [&firing_objects](const ActionContext& ctx) -> Status {
        firing_objects.push_back(ctx.self.id);
        return Status::OK();
      }));
  ODE_ASSERT_OK(db.RegisterClass(std::move(def)).status());
  ODE_ASSERT_OK(db.ActivateClassTrigger("account", "Third"));

  TxnId t = db.Begin().value();
  Oid a = db.New(t, "account").value();
  Oid b = db.New(t, "account").value();
  ODE_ASSERT_OK(db.Call(t, a, "withdraw", {Value(1)}).status());
  ODE_ASSERT_OK(db.Call(t, b, "withdraw", {Value(1)}).status());
  EXPECT_TRUE(firing_objects.empty());
  ODE_ASSERT_OK(db.Call(t, a, "withdraw", {Value(1)}).status());
  ASSERT_EQ(firing_objects.size(), 1u);
  // The third withdrawal was on `a`; the action saw that object as self.
  EXPECT_EQ(firing_objects[0], a.id);
  ODE_ASSERT_OK(db.Commit(t));
}

TEST(ClassTriggerTest, OrdinaryClassTriggerFiresOnce) {
  ClassDef def = AccountClass();
  def.AddTrigger("Once(): after withdraw ==> count");
  Database db;
  int fired = 0;
  ODE_ASSERT_OK(db.RegisterAction(
      "count", [&fired](const ActionContext&) -> Status {
        ++fired;
        return Status::OK();
      }));
  ODE_ASSERT_OK(db.RegisterClass(std::move(def)).status());
  ODE_ASSERT_OK(db.ActivateClassTrigger("account", "Once"));
  TxnId t = db.Begin().value();
  Oid a = db.New(t, "account").value();
  ODE_ASSERT_OK(db.Call(t, a, "withdraw", {Value(1)}).status());
  ODE_ASSERT_OK(db.Call(t, a, "withdraw", {Value(1)}).status());
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(db.ClassTriggerActive("account", "Once").value());
  ODE_ASSERT_OK(db.Commit(t));
}

TEST(ClassTriggerTest, DeactivationStopsMonitoring) {
  ClassDef def = AccountClass();
  def.AddTrigger("W(): perpetual after withdraw ==> count");
  Database db;
  int fired = 0;
  ODE_ASSERT_OK(db.RegisterAction(
      "count", [&fired](const ActionContext&) -> Status {
        ++fired;
        return Status::OK();
      }));
  ODE_ASSERT_OK(db.RegisterClass(std::move(def)).status());
  ODE_ASSERT_OK(db.ActivateClassTrigger("account", "W"));
  TxnId t = db.Begin().value();
  Oid a = db.New(t, "account").value();
  ODE_ASSERT_OK(db.Call(t, a, "withdraw", {Value(1)}).status());
  ODE_ASSERT_OK(db.DeactivateClassTrigger("account", "W"));
  ODE_ASSERT_OK(db.Call(t, a, "withdraw", {Value(1)}).status());
  EXPECT_EQ(fired, 1);
  ODE_ASSERT_OK(db.Commit(t));
}

TEST(ClassTriggerTest, CommittedViewRejectedAtClassScope) {
  ClassDef def = AccountClass();
  {
    Result<TriggerSpec> spec =
        ParseTriggerSpec("C(): perpetual after withdraw ==> count");
    ASSERT_TRUE(spec.ok());
    def.AddTrigger(*spec, HistoryView::kCommitted);
  }
  Database db;
  ODE_ASSERT_OK(db.RegisterAction(
      "count", [](const ActionContext&) -> Status { return Status::OK(); }));
  ODE_ASSERT_OK(db.RegisterClass(std::move(def)).status());
  EXPECT_EQ(db.ActivateClassTrigger("account", "C").code(),
            StatusCode::kInvalidArgument);
}

TEST(ClassTriggerTest, TimeEventsRejectedAtClassScope) {
  ClassDef def = AccountClass();
  def.AddTrigger("D(): perpetual at time(HR=9) ==> count");
  Database db;
  ODE_ASSERT_OK(db.RegisterAction(
      "count", [](const ActionContext&) -> Status { return Status::OK(); }));
  ODE_ASSERT_OK(db.RegisterClass(std::move(def)).status());
  EXPECT_EQ(db.ActivateClassTrigger("account", "D").code(),
            StatusCode::kUnimplemented);
}

TEST(ClassTriggerTest, MaskSeesPostingObjectState) {
  // The mask's object-state references resolve against whichever instance
  // posted the event.
  ClassDef def = AccountClass();
  def.AddTrigger(
      "Low(): perpetual after withdraw && balance < 100 ==> count");
  Database db;
  std::vector<uint64_t> firing_objects;
  ODE_ASSERT_OK(db.RegisterAction(
      "count", [&firing_objects](const ActionContext& ctx) -> Status {
        firing_objects.push_back(ctx.self.id);
        return Status::OK();
      }));
  ODE_ASSERT_OK(db.RegisterClass(std::move(def)).status());
  ODE_ASSERT_OK(db.ActivateClassTrigger("account", "Low"));

  TxnId t = db.Begin().value();
  Oid rich = db.New(t, "account", {{"balance", Value(10000)}}).value();
  Oid poor = db.New(t, "account", {{"balance", Value(120)}}).value();
  ODE_ASSERT_OK(db.Call(t, rich, "withdraw", {Value(50)}).status());
  ODE_ASSERT_OK(db.Call(t, poor, "withdraw", {Value(50)}).status());
  ODE_ASSERT_OK(db.Commit(t));
  ASSERT_EQ(firing_objects.size(), 1u);
  EXPECT_EQ(firing_objects[0], poor.id);
}


// --- Database-scope (schema) events (§3) -----------------------------------

TEST(SchemaEventTest, ClassRegistrationPostsToSchemaObject) {
  Database db;
  ODE_ASSERT_OK(db.RegisterAction(
      "count_schema", [](const ActionContext& ctx) -> Status {
        Result<Value> v =
            ctx.db->PeekAttr(ctx.self, "classes_registered");
        if (!v.ok()) return v.status();
        Result<Value> next = v->Add(Value(1));
        if (!next.ok()) return next.status();
        return ctx.db->SetAttr(ctx.txn, ctx.self, "classes_registered",
                               *next);
      }));
  ODE_ASSERT_OK(db.AddSchemaTrigger(
      "S(): perpetual after classRegistered ==> count_schema"));
  ODE_ASSERT_OK(db.EnableSchemaEvents());
  ASSERT_FALSE(db.schema_object().IsNull());

  ODE_ASSERT_OK(db.RegisterClass(AccountClass()).status());
  ODE_ASSERT_OK(db.RegisterClass(ClassDef("widget")).status());
  EXPECT_EQ(db.PeekAttr(db.schema_object(), "classes_registered")
                .value()
                .AsInt()
                .value(),
            2);
  EXPECT_EQ(db.FireCount(db.schema_object(), "S"), 2u);

  // The schema object's history carries the class names.
  const EventHistory* h = db.history(db.schema_object());
  ASSERT_NE(h, nullptr);
  std::vector<std::string> names;
  for (const PostedEvent& e : h->events()) {
    if (e.kind == BasicEventKind::kMethod &&
        e.qualifier == EventQualifier::kAfter &&
        e.method_name == "classRegistered") {
      names.push_back(e.FindArg("name")->AsString().value());
    }
  }
  EXPECT_EQ(names, (std::vector<std::string>{"account", "widget"}));
}

TEST(SchemaEventTest, MaskOnClassName) {
  Database db;
  int fired = 0;
  ODE_ASSERT_OK(db.RegisterAction(
      "note", [&fired](const ActionContext&) -> Status {
        ++fired;
        return Status::OK();
      }));
  ODE_ASSERT_OK(db.AddSchemaTrigger(
      "S(): perpetual after classRegistered (name) && "
      "name == \"account\" ==> note"));
  ODE_ASSERT_OK(db.EnableSchemaEvents());
  ODE_ASSERT_OK(db.RegisterClass(ClassDef("widget")).status());
  EXPECT_EQ(fired, 0);
  ODE_ASSERT_OK(db.RegisterClass(AccountClass()).status());
  EXPECT_EQ(fired, 1);
}

TEST(SchemaEventTest, EnableIsIdempotentAndLate) {
  Database db;
  ODE_ASSERT_OK(db.EnableSchemaEvents());
  Oid first = db.schema_object();
  ODE_ASSERT_OK(db.EnableSchemaEvents());
  EXPECT_EQ(db.schema_object(), first);
  // Declaring schema triggers after enabling is rejected.
  EXPECT_EQ(db.AddSchemaTrigger("S(): after classRegistered ==> x").code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ode
