// Differential tests for the gated-subevent mechanism (nested composite
// masks) outside the engine: a library-level runner replicates the
// engine's gate loop, and constant masks make gated compilations
// comparable against plain ones:
//   * mask ≡ true  →  gated(E && true)  ≡  plain(E)
//   * mask ≡ false →  gated(E && false) ≡  plain(empty in that position)
// Also: classification invariants under random masked alphabets.
#include <gtest/gtest.h>

#include <random>

#include "compile/compiler.h"
#include "mask/mask_eval.h"
#include "test_util.h"

namespace ode {
namespace {

using testing_util::ParseOrDie;

/// Replicates TriggerEngine's per-event gate resolution for a compiled
/// event, with mask outcomes supplied by a callback.
class GateRunner {
 public:
  explicit GateRunner(const CompiledEvent* event) : event_(event) {
    Reset();
  }

  void Reset() {
    state_ = event_->dfa.start();
    gate_states_.assign(event_->gates.size(), 0);
    for (size_t g = 0; g < event_->gates.size(); ++g) {
      gate_states_[g] = event_->gates[g].dfa.start();
    }
  }

  bool Advance(SymbolId base_sym,
               const std::function<bool(size_t)>& mask_holds) {
    uint32_t bits = 0;
    for (size_t g = 0; g < event_->gates.size(); ++g) {
      SymbolId ext = event_->ExtendSymbol(base_sym, bits);
      gate_states_[g] = event_->gates[g].dfa.Step(gate_states_[g], ext);
      if (event_->gates[g].dfa.accepting(gate_states_[g]) &&
          mask_holds(g)) {
        bits |= (1u << g);
      }
    }
    state_ = event_->dfa.Step(state_, event_->ExtendSymbol(base_sym, bits));
    return event_->dfa.accepting(state_);
  }

 private:
  const CompiledEvent* event_;
  Dfa::State state_ = 0;
  std::vector<int32_t> gate_states_;
};

struct GatePair {
  const char* gated;  // Contains `(X) && m`.
  const char* plain;  // The mask-true equivalent.
};

class GateTrueSweep : public ::testing::TestWithParam<GatePair> {};

TEST_P(GateTrueSweep, TrueMaskEqualsPlainExpression) {
  EventExprPtr gated_expr = ParseOrDie(GetParam().gated);
  EventExprPtr plain_expr = ParseOrDie(GetParam().plain);
  Result<CompiledEvent> gated = CompileEvent(gated_expr, CompileOptions());
  Result<CompiledEvent> plain = CompileEvent(plain_expr, CompileOptions());
  ASSERT_TRUE(gated.ok()) << gated.status().ToString();
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  ASSERT_GT(gated->num_gates(), 0u);
  ASSERT_EQ(gated->alphabet.size(), plain->alphabet.size())
      << "the pair must reference the same logical events";

  std::mt19937 rng(31);
  GateRunner runner(&*gated);
  for (int trial = 0; trial < 60; ++trial) {
    runner.Reset();
    Dfa::State plain_state = plain->dfa.start();
    for (int i = 0; i < 24; ++i) {
      SymbolId sym =
          static_cast<SymbolId>(rng() % gated->alphabet.size());
      bool gated_occurs = runner.Advance(sym, [](size_t) { return true; });
      plain_state = plain->dfa.Step(plain_state, sym);
      ASSERT_EQ(gated_occurs, plain->dfa.accepting(plain_state))
          << GetParam().gated << " step " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, GateTrueSweep,
    ::testing::Values(
        GatePair{"fa((after a | after b) && m, after c, after a)",
                 "fa(after a | after b, after c, after a)"},
        GatePair{"relative((after a | after b) && m, after c)",
                 "relative(after a | after b, after c)"},
        GatePair{"prior((relative(after a, after b)) && m, after c)",
                 "prior(relative(after a, after b), after c)"},
        GatePair{"choose 3 ((after a | after b) && m) | after c & after c",
                 "choose 3 (after a | after b) | after c & after c"},
        GatePair{
            "fa(fa((after a | after b) && m, after c, after a) && m2, "
            "after b, after c)",
            "fa(fa(after a | after b, after c, after a), after b, "
            "after c)"}));

TEST(GateFalseTest, FalseMaskNeverLetsTheGateFire) {
  // With the mask constantly false the gated composite never occurs, so
  // fa anchored on it never fires — but plain atoms elsewhere still do.
  EventExprPtr expr = ParseOrDie(
      "fa((after a | after b) && m, after c, after a) | after b & after b");
  CompiledEvent gated = CompileEvent(expr, CompileOptions()).value();
  ASSERT_EQ(gated.num_gates(), 1u);

  // Equivalent plain form: the fa anchor collapses to the empty language.
  // `(after a | after b) & empty` keeps the atom collection order (and
  // hence the symbol numbering) identical to the gated expression.
  EventExprPtr plain_expr = ParseOrDie(
      "fa((after a | after b) & empty, after c, after a) | "
      "after b & after b");
  CompiledEvent plain = CompileEvent(plain_expr, CompileOptions()).value();
  ASSERT_EQ(gated.alphabet.size(), plain.alphabet.size());

  std::mt19937 rng(32);
  GateRunner runner(&gated);
  for (int trial = 0; trial < 40; ++trial) {
    runner.Reset();
    Dfa::State plain_state = plain.dfa.start();
    for (int i = 0; i < 24; ++i) {
      SymbolId sym = static_cast<SymbolId>(rng() % gated.alphabet.size());
      bool gated_occurs = runner.Advance(sym, [](size_t) { return false; });
      plain_state = plain.dfa.Step(plain_state, sym);
      ASSERT_EQ(gated_occurs, plain.dfa.accepting(plain_state)) << i;
    }
  }
}

TEST(GateFlipTest, MaskLatchedAtOccurrenceTime) {
  // fa((after a) && m, after b, after c): flip m per event; the anchor
  // only forms when m held at the a-point. Reference: hand simulation.
  EventExprPtr expr = ParseOrDie("fa((after a & after a) && m, after b, "
                                 "after c)");
  CompiledEvent gated = CompileEvent(expr, CompileOptions()).value();
  ASSERT_EQ(gated.num_gates(), 1u);

  SymbolId a = -1, b = -1, c = -1;
  gated.alphabet.GroupSymbols(BasicEvent::Method(EventQualifier::kAfter, "a"))
      .ForEach([&](SymbolId s) { a = s; });
  gated.alphabet.GroupSymbols(BasicEvent::Method(EventQualifier::kAfter, "b"))
      .ForEach([&](SymbolId s) { b = s; });
  gated.alphabet.GroupSymbols(BasicEvent::Method(EventQualifier::kAfter, "c"))
      .ForEach([&](SymbolId s) { c = s; });

  struct Step {
    SymbolId sym;
    bool mask;
    bool expect;
  };
  // a(mask off) b → no anchor → no fire. a(mask on) b → fire.
  std::vector<Step> script = {{a, false, false}, {b, true, false},
                              {a, true, false},  {b, false, true}};
  GateRunner runner(&gated);
  for (size_t i = 0; i < script.size(); ++i) {
    bool fired = runner.Advance(script[i].sym, [&](size_t) {
      return script[i].mask;
    });
    EXPECT_EQ(fired, script[i].expect) << "step " << i;
  }
}

// --- Classification invariants under random masked alphabets ---------------

TEST(ClassificationInvariantTest, SymbolMembershipMatchesMaskOutcomes) {
  std::mt19937 rng(77);
  EventExprPtr expr = ParseOrDie(
      "after f(x, y) && x > 10 | after f(x, y) && y > 10 | "
      "before g(z) && z > 5 | after h");
  Alphabet alphabet = Alphabet::Build(*expr).value();
  std::vector<const EventExpr*> atoms;
  expr->CollectAtoms(&atoms);

  Alphabet::MaskEvalFn eval = [](const MaskSlot& slot,
                                 const PostedEvent& ev) -> Result<bool> {
    SimpleMaskEnv env;
    for (size_t i = 0; i < slot.params.size() && i < ev.args.size(); ++i) {
      env.Bind(slot.params[i].name, ev.args[i].value);
    }
    return EvalMaskBool(*slot.mask, env);
  };

  for (int trial = 0; trial < 300; ++trial) {
    // Random posted event among f/g/h/other.
    PostedEvent event;
    int pick = static_cast<int>(rng() % 4);
    int64_t x = static_cast<int64_t>(rng() % 30);
    int64_t y = static_cast<int64_t>(rng() % 30);
    switch (pick) {
      case 0:
        event = MakePostedMethod(EventQualifier::kAfter, "f",
                                 {{"x", Value(x)}, {"y", Value(y)}});
        break;
      case 1:
        event = MakePostedMethod(EventQualifier::kBefore, "g",
                                 {{"z", Value(x)}});
        break;
      case 2:
        event = MakePostedMethod(EventQualifier::kAfter, "h");
        break;
      default:
        event = MakePostedMethod(EventQualifier::kAfter, "unrelated");
        break;
    }
    SymbolId sym = alphabet.Classify(event, eval).value();
    ASSERT_GE(sym, 0);
    ASSERT_LT(static_cast<size_t>(sym), alphabet.size());

    // Invariant: the classified symbol is in an atom's symbol set iff the
    // event matches the atom's basic event AND its mask holds.
    for (const EventExpr* atom : atoms) {
      SymbolSet set = alphabet.SymbolsFor(*atom).value();
      bool expect = event.Matches(atom->atom);
      if (expect && atom->atom_mask != nullptr) {
        MaskSlot slot{atom->atom_mask, atom->atom.params};
        expect = eval(slot, event).value();
      }
      EXPECT_EQ(set.Contains(sym), expect)
          << atom->atom.ToString() << " vs " << event.ToString();
    }
  }
}

}  // namespace
}  // namespace ode
