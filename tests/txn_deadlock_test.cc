// Engine-level concurrency tests: lock conflicts and deadlocks surfacing
// through the public Database API, and recovery by aborting a victim.
#include <gtest/gtest.h>

#include "ode/database.h"
#include "test_util.h"

namespace ode {
namespace {

ClassDef PairClass() {
  ClassDef def("cell");
  def.AddAttr("v", Value(0));
  def.AddMethod(MethodDef{"write", {}, MethodKind::kUpdate, nullptr});
  def.AddMethod(MethodDef{"read", {}, MethodKind::kReadOnly, nullptr});
  return def;
}

struct TwoObjects {
  Database db;
  Oid x;
  Oid y;

  TwoObjects() {
    EXPECT_TRUE(db.RegisterClass(PairClass()).status().ok());
    TxnId t = db.Begin().value();
    x = db.New(t, "cell").value();
    y = db.New(t, "cell").value();
    EXPECT_TRUE(db.Commit(t).ok());
  }
};

TEST(TxnDeadlockTest, CrossLockDeadlockDetected) {
  TwoObjects f;
  TxnId t1 = f.db.Begin().value();
  TxnId t2 = f.db.Begin().value();
  ODE_ASSERT_OK(f.db.Call(t1, f.x, "write").status());
  ODE_ASSERT_OK(f.db.Call(t2, f.y, "write").status());
  // t1 waits for y...
  EXPECT_EQ(f.db.Call(t1, f.y, "write").status().code(),
            StatusCode::kWouldBlock);
  // ...so t2 asking for x would close the cycle.
  EXPECT_EQ(f.db.Call(t2, f.x, "write").status().code(),
            StatusCode::kDeadlock);
  // Victim aborts; the survivor proceeds.
  ODE_ASSERT_OK(f.db.Abort(t2));
  ODE_ASSERT_OK(f.db.Call(t1, f.y, "write").status());
  ODE_ASSERT_OK(f.db.Commit(t1));
  EXPECT_EQ(f.db.locks().deadlocks_detected(), 1u);
}

TEST(TxnDeadlockTest, ReadersDoNotDeadlockEachOther) {
  TwoObjects f;
  TxnId t1 = f.db.Begin().value();
  TxnId t2 = f.db.Begin().value();
  ODE_ASSERT_OK(f.db.Call(t1, f.x, "read").status());
  ODE_ASSERT_OK(f.db.Call(t2, f.x, "read").status());
  ODE_ASSERT_OK(f.db.Call(t1, f.y, "read").status());
  ODE_ASSERT_OK(f.db.Call(t2, f.y, "read").status());
  ODE_ASSERT_OK(f.db.Commit(t1));
  ODE_ASSERT_OK(f.db.Commit(t2));
  EXPECT_EQ(f.db.locks().deadlocks_detected(), 0u);
}

TEST(TxnDeadlockTest, AbortReleasesLocksForWaiter) {
  TwoObjects f;
  TxnId t1 = f.db.Begin().value();
  TxnId t2 = f.db.Begin().value();
  ODE_ASSERT_OK(f.db.Call(t1, f.x, "write").status());
  EXPECT_EQ(f.db.Call(t2, f.x, "write").status().code(),
            StatusCode::kWouldBlock);
  ODE_ASSERT_OK(f.db.Abort(t1));
  ODE_ASSERT_OK(f.db.Call(t2, f.x, "write").status());
  ODE_ASSERT_OK(f.db.Commit(t2));
}

TEST(TxnDeadlockTest, StrictTwoPhaseLocksHeldUntilCommit) {
  TwoObjects f;
  TxnId t1 = f.db.Begin().value();
  ODE_ASSERT_OK(f.db.Call(t1, f.x, "write").status());
  // Even after the call returns, the lock persists until commit.
  TxnId t2 = f.db.Begin().value();
  EXPECT_EQ(f.db.Call(t2, f.x, "read").status().code(),
            StatusCode::kWouldBlock);
  ODE_ASSERT_OK(f.db.Commit(t1));
  ODE_ASSERT_OK(f.db.Call(t2, f.x, "read").status());
  ODE_ASSERT_OK(f.db.Commit(t2));
}

TEST(TxnDeadlockTest, WouldBlockLeavesTransactionUsable) {
  TwoObjects f;
  TxnId t1 = f.db.Begin().value();
  TxnId t2 = f.db.Begin().value();
  ODE_ASSERT_OK(f.db.Call(t1, f.x, "write").status());
  EXPECT_EQ(f.db.Call(t2, f.x, "write").status().code(),
            StatusCode::kWouldBlock);
  // t2 can still work elsewhere.
  ODE_ASSERT_OK(f.db.Call(t2, f.y, "write").status());
  ODE_ASSERT_OK(f.db.Commit(t1));
  ODE_ASSERT_OK(f.db.Call(t2, f.x, "write").status());
  ODE_ASSERT_OK(f.db.Commit(t2));
}

}  // namespace
}  // namespace ode
