#include "lang/trigger_spec.h"

#include <gtest/gtest.h>

namespace ode {
namespace {

TEST(TriggerSpecTest, FullDeclaration) {
  Result<TriggerSpec> r = ParseTriggerSpec(
      "T1(): perpetual before withdraw && !authorized(user()) ==> tabort");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->name, "T1");
  EXPECT_TRUE(r->perpetual);
  EXPECT_EQ(r->action, "tabort");
  EXPECT_EQ(r->event->kind, EventExprKind::kAtom);
}

TEST(TriggerSpecTest, ParametersTypedAndUntyped) {
  Result<TriggerSpec> r = ParseTriggerSpec(
      "T2(Item i, int q): after withdraw(i, q) && q > 100 ==> order");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->params.size(), 2u);
  EXPECT_EQ(r->params[0].type_name, "Item");
  EXPECT_EQ(r->params[0].name, "i");
  EXPECT_FALSE(r->perpetual);
}

TEST(TriggerSpecTest, BareEventWithoutHeader) {
  Result<TriggerSpec> r = ParseTriggerSpec("perpetual after access");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->name.empty());
  EXPECT_TRUE(r->perpetual);
  EXPECT_TRUE(r->action.empty());
}

TEST(TriggerSpecTest, ToleratesActionCallSyntax) {
  // Paper listings write `==> summary();`.
  Result<TriggerSpec> r =
      ParseTriggerSpec("T3(): perpetual at time(HR=17) ==> summary();");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->action, "summary");
}

TEST(TriggerSpecTest, PaperT8SequenceTrigger) {
  Result<TriggerSpec> r = ParseTriggerSpec(
      "T8(): perpetual after deposit; before withdraw; after withdraw "
      "==> printLog");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->event->kind, EventExprKind::kSequence);
  EXPECT_EQ(r->event->children.size(), 3u);
}

TEST(TriggerSpecTest, HeaderLookaheadDoesNotEatMethodCalls) {
  // `deposit(i, q): ...` is a header; a bare event starting with a method
  // event is not.
  Result<TriggerSpec> r = ParseTriggerSpec("after withdraw(Item i, int q)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->name.empty());
  EXPECT_EQ(r->event->atom.method_name, "withdraw");
}

TEST(TriggerSpecTest, Errors) {
  EXPECT_FALSE(ParseTriggerSpec("T1(): ==> act").ok());
  EXPECT_FALSE(ParseTriggerSpec("T1(): after f ==>").ok());
  EXPECT_FALSE(ParseTriggerSpec("T1(): after f trailing").ok());
}

TEST(TriggerSpecTest, ToStringRoundTrips) {
  Result<TriggerSpec> r = ParseTriggerSpec(
      "T6(): perpetual after withdraw (i, q) && q > 100 ==> log");
  ASSERT_TRUE(r.ok());
  Result<TriggerSpec> r2 = ParseTriggerSpec(r->ToString());
  ASSERT_TRUE(r2.ok()) << r->ToString() << ": " << r2.status().ToString();
  EXPECT_EQ(r2->name, "T6");
  EXPECT_TRUE(r2->perpetual);
  EXPECT_EQ(r2->action, "log");
}

}  // namespace
}  // namespace ode
