#include "event/time_spec.h"

#include <gtest/gtest.h>

namespace ode {
namespace {

TEST(CivilTimeTest, EpochRoundTrip) {
  DateTime dt;
  dt.year = 1992;
  dt.month = 6;
  dt.day = 3;
  dt.hour = 9;
  dt.minute = 30;
  dt.second = 15;
  dt.ms = 250;
  TimeMs t = ToEpochMs(dt);
  EXPECT_EQ(FromEpochMs(t), dt);
}

TEST(CivilTimeTest, EpochZeroIs1970) {
  DateTime dt = FromEpochMs(0);
  EXPECT_EQ(dt.year, 1970);
  EXPECT_EQ(dt.month, 1);
  EXPECT_EQ(dt.day, 1);
  EXPECT_EQ(dt.hour, 0);
}

TEST(CivilTimeTest, KnownDayNumbers) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  EXPECT_EQ(DaysFromCivil(1970, 1, 2), 1);
  EXPECT_EQ(DaysFromCivil(1969, 12, 31), -1);
  EXPECT_EQ(DaysFromCivil(2000, 3, 1), 11017);  // Known leap-century date.
}

TEST(CivilTimeTest, LeapYears) {
  EXPECT_EQ(DaysInMonth(2000, 2), 29);  // Divisible by 400.
  EXPECT_EQ(DaysInMonth(1900, 2), 28);  // Divisible by 100, not 400.
  EXPECT_EQ(DaysInMonth(1992, 2), 29);
  EXPECT_EQ(DaysInMonth(1991, 2), 28);
}

TEST(TimeSpecTest, ValidationRanges) {
  TimeSpec ok;
  ok.hour = 9;
  EXPECT_TRUE(ok.ValidateAsPattern().ok());

  TimeSpec empty;
  EXPECT_FALSE(empty.ValidateAsPattern().ok());

  TimeSpec bad_month;
  bad_month.month = 13;
  EXPECT_FALSE(bad_month.ValidateAsPattern().ok());

  TimeSpec bad_hour;
  bad_hour.hour = 24;
  EXPECT_FALSE(bad_hour.ValidateAsPattern().ok());
}

TEST(TimeSpecTest, PeriodArithmetic) {
  TimeSpec p;
  p.hour = 2;
  p.minute = 30;
  EXPECT_EQ(p.AsPeriodMs().value(), (2 * 60 + 30) * 60 * 1000);

  TimeSpec days;
  days.day = 1;
  EXPECT_EQ(days.AsPeriodMs().value(), 24 * 3600 * 1000);

  TimeSpec zero;
  zero.ms = 0;
  EXPECT_FALSE(zero.AsPeriodMs().ok());  // Must be positive.
}

// `at time(HR=9)` means every day at 09:00:00.000 — finer fields zero,
// coarser wildcards (§3.1 and header contract).
TEST(TimeSpecTest, MatchesZeroFillsFinerFields) {
  TimeSpec nine_am;
  nine_am.hour = 9;
  DateTime dt = FromEpochMs(0);
  dt.hour = 9;
  EXPECT_TRUE(nine_am.Matches(dt));
  dt.minute = 1;
  EXPECT_FALSE(nine_am.Matches(dt));  // Minute must be 0.
  dt.minute = 0;
  dt.day = 17;
  EXPECT_TRUE(nine_am.Matches(dt));  // Day is a wildcard.
}

TEST(TimeSpecTest, NextMatchDaily) {
  TimeSpec nine_am;
  nine_am.hour = 9;
  // From midnight, the next 9am is the same day.
  TimeMs t0 = 0;
  TimeMs t1 = nine_am.NextMatchAfter(t0).value();
  DateTime dt = FromEpochMs(t1);
  EXPECT_EQ(dt.hour, 9);
  EXPECT_EQ(dt.day, 1);
  // From 9am exactly, the next match is tomorrow (strictly greater).
  TimeMs t2 = nine_am.NextMatchAfter(t1).value();
  EXPECT_EQ(FromEpochMs(t2).day, 2);
  EXPECT_EQ(t2 - t1, 24 * 3600 * 1000);
}

TEST(TimeSpecTest, NextMatchHourlyMinute) {
  TimeSpec half_past;
  half_past.minute = 30;
  TimeMs t = half_past.NextMatchAfter(0).value();
  DateTime dt = FromEpochMs(t);
  EXPECT_EQ(dt.hour, 0);
  EXPECT_EQ(dt.minute, 30);
  TimeMs t2 = half_past.NextMatchAfter(t).value();
  EXPECT_EQ(t2 - t, 3600 * 1000);
}

TEST(TimeSpecTest, NextMatchMonthlyDay) {
  TimeSpec first;
  first.day = 1;
  // From Jan 15 1970, next DAY=1 is Feb 1.
  DateTime mid;
  mid.year = 1970;
  mid.month = 1;
  mid.day = 15;
  TimeMs t = first.NextMatchAfter(ToEpochMs(mid)).value();
  DateTime dt = FromEpochMs(t);
  EXPECT_EQ(dt.month, 2);
  EXPECT_EQ(dt.day, 1);
  EXPECT_EQ(dt.hour, 0);
}

TEST(TimeSpecTest, NextMatchHandlesShortMonths) {
  TimeSpec day31;
  day31.day = 31;
  // From Feb 1, the next DAY=31 is Mar 31 (February is skipped).
  DateTime feb;
  feb.year = 1970;
  feb.month = 2;
  feb.day = 1;
  TimeMs t = day31.NextMatchAfter(ToEpochMs(feb)).value();
  DateTime dt = FromEpochMs(t);
  EXPECT_EQ(dt.month, 3);
  EXPECT_EQ(dt.day, 31);
}

TEST(TimeSpecTest, ImpossiblePatternErrors) {
  TimeSpec feb30;
  feb30.month = 2;
  feb30.day = 30;
  EXPECT_FALSE(feb30.NextMatchAfter(0).ok());
}

TEST(TimeSpecTest, FullySpecifiedFiresOnce) {
  TimeSpec once;
  once.year = 1992;
  once.month = 6;
  once.day = 3;
  once.hour = 12;
  TimeMs t = once.NextMatchAfter(0, /*horizon_days=*/20000).value();
  DateTime dt = FromEpochMs(t);
  EXPECT_EQ(dt.year, 1992);
  EXPECT_EQ(dt.month, 6);
  EXPECT_EQ(dt.day, 3);
  EXPECT_EQ(dt.hour, 12);
  // No later occurrence exists.
  EXPECT_FALSE(once.NextMatchAfter(t, /*horizon_days=*/20000).ok());
}

TEST(TimeSpecTest, ToStringListsFields) {
  TimeSpec s;
  s.hour = 9;
  s.minute = 30;
  EXPECT_EQ(s.ToString(), "time(HR=9, M=30)");
}

}  // namespace
}  // namespace ode
