// IngestRuntime integration tests: oracle parity (concurrent sharded
// ingest must produce exactly the single-threaded outcome), strict
// per-object ordering, backpressure policies, the Drain barrier,
// retry/dead-letter handling, lifecycle errors, and a multi-producer
// stress that doubles as the TSan workload.
#include "runtime/ingest_runtime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "ode/database.h"
#include "test_util.h"

namespace ode {
namespace {

using runtime::BackpressurePolicy;
using runtime::IngestEvent;
using runtime::IngestOptions;
using runtime::IngestRuntime;
using runtime::RuntimeMetricsSnapshot;

// `count` bumps `touches` — the standard observable action.
Status CountAction(const ActionContext& ctx) {
  Result<Value> t = ctx.db->PeekAttr(ctx.self, "touches");
  if (!t.ok()) return t.status();
  Result<Value> next = t->Add(Value(1));
  if (!next.ok()) return next.status();
  return ctx.db->SetAttr(ctx.txn, ctx.self, "touches", *next);
}

// Parity class: an accumulator with three full-view triggers. All three
// are insensitive to interleaved foreign symbols (counting, masks,
// relative), so batching events into fewer transactions — which only
// changes how many tcomplete/tcommit postings land between the method
// events — cannot change their firings.
ClassDef ParityClass() {
  ClassDef def("cell");
  def.AddAttr("v", Value(0));
  def.AddAttr("touches", Value(0));
  def.AddMethod(MethodDef{
      "add",
      {{"int", "d"}},
      MethodKind::kUpdate,
      [](MethodContext* ctx) -> Status {
        ODE_ASSIGN_OR_RETURN(Value v, ctx->Get("v"));
        ODE_ASSIGN_OR_RETURN(Value d, ctx->Arg("d"));
        ODE_ASSIGN_OR_RETURN(Value next, v.Add(d));
        return ctx->Set("v", next);
      }});
  def.AddMethod(MethodDef{"peek", {}, MethodKind::kReadOnly, nullptr});
  def.AddTrigger("T1(): perpetual every 3 (after add) ==> count");
  def.AddTrigger("T2(): perpetual after add (d) && d > 50 ==> count");
  def.AddTrigger("T3(): perpetual relative(after add, after peek) ==> count");
  return def;
}

struct WorkItem {
  size_t obj;    ///< Index into the object vector.
  bool is_add;   ///< add(delta) or peek().
  int delta;
};

std::vector<WorkItem> MakeWorkload(size_t num_objects, size_t num_events,
                                   uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<WorkItem> work;
  work.reserve(num_events);
  for (size_t i = 0; i < num_events; ++i) {
    WorkItem w;
    w.obj = rng() % num_objects;
    w.is_add = rng() % 4 != 0;
    w.delta = static_cast<int>(rng() % 100);
    work.push_back(w);
  }
  return work;
}

std::vector<Oid> SetupParityDb(Database* db, size_t num_objects) {
  EXPECT_TRUE(db->RegisterAction("count", CountAction).ok());
  EXPECT_TRUE(db->RegisterClass(ParityClass()).status().ok());
  std::vector<Oid> oids;
  TxnId t = db->Begin().value();
  for (size_t i = 0; i < num_objects; ++i) {
    Result<Oid> oid = db->New(t, "cell");
    EXPECT_TRUE(oid.ok()) << oid.status().ToString();
    oids.push_back(*oid);
    for (const char* trig : {"T1", "T2", "T3"}) {
      ODE_EXPECT_OK(db->ActivateTrigger(t, *oid, trig));
    }
  }
  ODE_EXPECT_OK(db->Commit(t));
  return oids;
}

TEST(IngestRuntimeTest, MatchesSingleThreadedOracleExactly) {
  constexpr size_t kObjects = 12;
  constexpr size_t kEvents = 2000;
  constexpr int kProducers = 3;
  const std::vector<WorkItem> work = MakeWorkload(kObjects, kEvents, 42);

  // Oracle: one transaction per event, fully single-threaded.
  Database oracle;
  std::vector<Oid> oracle_oids = SetupParityDb(&oracle, kObjects);
  for (const WorkItem& w : work) {
    TxnId t = oracle.Begin().value();
    Oid oid = oracle_oids[w.obj];
    Result<Value> r = w.is_add
                          ? oracle.Call(t, oid, "add", {Value(w.delta)})
                          : oracle.Call(t, oid, "peek");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ODE_ASSERT_OK(oracle.Commit(t));
  }

  // Runtime: same workload through 4 shards, posted by 3 producer
  // threads. Each producer owns a disjoint subset of objects and posts
  // its events in workload order, so every object's event sequence
  // matches the oracle's even though the global interleaving differs.
  Database db;
  std::vector<Oid> oids = SetupParityDb(&db, kObjects);
  IngestOptions opts;
  opts.num_shards = 4;
  opts.max_batch = 16;
  opts.queue_capacity = 128;
  IngestRuntime rt(&db, opts);
  ODE_ASSERT_OK(rt.Start());
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (const WorkItem& w : work) {
        if (static_cast<int>(w.obj % kProducers) != p) continue;
        Status s = w.is_add
                       ? rt.Post(oids[w.obj], "add", {Value(w.delta)})
                       : rt.Post(oids[w.obj], "peek");
        ASSERT_TRUE(s.ok()) << s.ToString();
      }
    });
  }
  for (auto& t : producers) t.join();
  ODE_ASSERT_OK(rt.Drain());
  ODE_ASSERT_OK(rt.Stop());

  RuntimeMetricsSnapshot m = rt.Metrics();
  EXPECT_EQ(m.total.enqueued, kEvents);
  EXPECT_EQ(m.total.processed, kEvents);
  EXPECT_EQ(m.total.dead_lettered, 0u);
  EXPECT_EQ(m.total.dropped, 0u);

  uint64_t fired_total = 0;
  for (size_t i = 0; i < kObjects; ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(db.PeekAttr(oids[i], "v").value().AsInt().value(),
              oracle.PeekAttr(oracle_oids[i], "v").value().AsInt().value());
    EXPECT_EQ(
        db.PeekAttr(oids[i], "touches").value().AsInt().value(),
        oracle.PeekAttr(oracle_oids[i], "touches").value().AsInt().value());
    for (const char* trig : {"T1", "T2", "T3"}) {
      EXPECT_EQ(db.FireCount(oids[i], trig),
                oracle.FireCount(oracle_oids[i], trig))
          << trig;
      fired_total += db.FireCount(oids[i], trig);
    }
  }
  // Every firing happened inside a worker's Call → the metric saw it.
  EXPECT_EQ(m.total.fired, fired_total);
}

// A class whose method body *asserts* in-order delivery: each call must
// carry exactly v+1.
ClassDef SequenceClass() {
  ClassDef def("seqcell");
  def.AddAttr("v", Value(0));
  def.AddMethod(MethodDef{
      "seq",
      {{"int", "d"}},
      MethodKind::kUpdate,
      [](MethodContext* ctx) -> Status {
        ODE_ASSIGN_OR_RETURN(Value v, ctx->Get("v"));
        ODE_ASSIGN_OR_RETURN(Value d, ctx->Arg("d"));
        if (d.AsInt().value() != v.AsInt().value() + 1) {
          return Status::Internal("out-of-order delivery");
        }
        return ctx->Set("v", d);
      }});
  return def;
}

TEST(IngestRuntimeTest, PreservesPerObjectOrder) {
  constexpr size_t kObjects = 8;
  constexpr int kPerObject = 150;
  Database db;
  ODE_ASSERT_OK(db.RegisterClass(SequenceClass()).status());
  std::vector<Oid> oids;
  {
    TxnId t = db.Begin().value();
    for (size_t i = 0; i < kObjects; ++i) {
      oids.push_back(db.New(t, "seqcell").value());
    }
    ODE_ASSERT_OK(db.Commit(t));
  }
  IngestOptions opts;
  opts.num_shards = 3;
  opts.max_batch = 8;
  opts.queue_capacity = 32;
  IngestRuntime rt(&db, opts);
  ODE_ASSERT_OK(rt.Start());
  // Two producers, each the sole poster for its objects (even/odd split):
  // per-object posting order is well defined, shard FIFO must keep it.
  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 1; i <= kPerObject; ++i) {
        for (size_t o = static_cast<size_t>(p); o < kObjects; o += 2) {
          ASSERT_TRUE(rt.Post(oids[o], "seq", {Value(i)}).ok());
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  ODE_ASSERT_OK(rt.Drain());

  RuntimeMetricsSnapshot m = rt.Metrics();
  EXPECT_EQ(m.total.dead_lettered, 0u);  // No out-of-order rejections.
  EXPECT_EQ(m.total.processed, kObjects * kPerObject);
  for (size_t i = 0; i < kObjects; ++i) {
    EXPECT_EQ(db.PeekAttr(oids[i], "v").value().AsInt().value(), kPerObject);
  }
}

// Shared gate the blocker method parks on, to hold a shard's worker
// mid-batch while the test fills the queue behind it.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool release = false;

  void Enter() {
    std::unique_lock<std::mutex> lock(mu);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  }
  void AwaitEntered() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
};

ClassDef BlockerClass(Gate* gate) {
  ClassDef def("blocker");
  def.AddAttr("v", Value(0));
  def.AddMethod(MethodDef{
      "add",
      {{"int", "d"}},
      MethodKind::kUpdate,
      [](MethodContext* ctx) -> Status {
        ODE_ASSIGN_OR_RETURN(Value v, ctx->Get("v"));
        ODE_ASSIGN_OR_RETURN(Value d, ctx->Arg("d"));
        ODE_ASSIGN_OR_RETURN(Value next, v.Add(d));
        return ctx->Set("v", next);
      }});
  def.AddMethod(MethodDef{
      "block",
      {},
      MethodKind::kUpdate,
      [gate](MethodContext*) -> Status {
        gate->Enter();
        return Status::OK();
      }});
  return def;
}

struct BackpressureRig {
  Gate gate;
  Database db;
  Oid oid;
  std::unique_ptr<IngestRuntime> rt;

  explicit BackpressureRig(BackpressurePolicy policy) {
    EXPECT_TRUE(db.RegisterClass(BlockerClass(&gate)).status().ok());
    TxnId t = db.Begin().value();
    oid = db.New(t, "blocker").value();
    EXPECT_TRUE(db.Commit(t).ok());
    IngestOptions opts;
    opts.num_shards = 1;       // One queue, so we can fill it exactly.
    opts.max_batch = 1;        // The blocker occupies a batch alone.
    opts.queue_capacity = 2;
    opts.backpressure = policy;
    rt = std::make_unique<IngestRuntime>(&db, opts);
    EXPECT_TRUE(rt->Start().ok());
    // Park the worker inside the blocker's method body; from here on the
    // queue only fills.
    EXPECT_TRUE(rt->Post(oid, "block").ok());
    gate.AwaitEntered();
  }
};

TEST(IngestRuntimeTest, RejectPolicyBouncesWhenFull) {
  BackpressureRig rig(BackpressurePolicy::kReject);
  ODE_ASSERT_OK(rig.rt->Post(rig.oid, "add", {Value(1)}));
  ODE_ASSERT_OK(rig.rt->Post(rig.oid, "add", {Value(1)}));
  Status s = rig.rt->Post(rig.oid, "add", {Value(1)});
  EXPECT_EQ(s.code(), StatusCode::kWouldBlock) << s.ToString();
  rig.gate.Release();
  ODE_ASSERT_OK(rig.rt->Drain());
  RuntimeMetricsSnapshot m = rig.rt->Metrics();
  EXPECT_EQ(m.total.rejected, 1u);
  EXPECT_EQ(m.total.processed, 3u);  // block + the two accepted adds.
  EXPECT_EQ(rig.db.PeekAttr(rig.oid, "v").value().AsInt().value(), 2);
}

TEST(IngestRuntimeTest, DropNewestPolicyDiscardsWhenFull) {
  BackpressureRig rig(BackpressurePolicy::kDropNewest);
  ODE_ASSERT_OK(rig.rt->Post(rig.oid, "add", {Value(1)}));
  ODE_ASSERT_OK(rig.rt->Post(rig.oid, "add", {Value(1)}));
  // Still OK — drop-newest is lossy, not failing.
  ODE_ASSERT_OK(rig.rt->Post(rig.oid, "add", {Value(1)}));
  rig.gate.Release();
  ODE_ASSERT_OK(rig.rt->Drain());
  RuntimeMetricsSnapshot m = rig.rt->Metrics();
  EXPECT_EQ(m.total.dropped, 1u);
  EXPECT_EQ(m.total.rejected, 0u);
  EXPECT_EQ(rig.db.PeekAttr(rig.oid, "v").value().AsInt().value(), 2);
}

// TryPost on a kBlock runtime: a full queue bounces with kWouldBlock,
// hands the event back intact, and records NOTHING — no producer
// counters, no applied-seq — so the caller can retry the same event later
// without double counting. This is the network front end's non-blocking
// handoff.
TEST(IngestRuntimeTest, TryPostBouncesIntactWhenBlockPolicyFull) {
  BackpressureRig rig(BackpressurePolicy::kBlock);
  ODE_ASSERT_OK(rig.rt->Post(rig.oid, "add", {Value(1)}));
  ODE_ASSERT_OK(rig.rt->Post(rig.oid, "add", {Value(1)}));

  IngestEvent event;
  event.oid = rig.oid;
  event.method = "add";
  event.args = {Value(5)};
  Status s = rig.rt->TryPost(&event);
  EXPECT_EQ(s.code(), StatusCode::kWouldBlock) << s.ToString();
  // The bounce left the event intact...
  EXPECT_EQ(event.method, "add");
  ASSERT_EQ(event.args.size(), 1u);
  EXPECT_EQ(event.args[0].AsInt().value(), 5);
  // ...and recorded nothing: kBlock never rejects, it defers to the caller.
  RuntimeMetricsSnapshot m = rig.rt->Metrics();
  EXPECT_EQ(m.total.rejected, 0u);
  EXPECT_EQ(m.total.enqueued, 3u);  // block + the two accepted adds.

  // Retrying the same event object after the wedge clears succeeds and
  // counts exactly once.
  rig.gate.Release();
  Status retry = Status::WouldBlock("never retried");
  for (int spin = 0; spin < 2000; ++spin) {
    retry = rig.rt->TryPost(&event);
    if (retry.code() != StatusCode::kWouldBlock) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ODE_ASSERT_OK(retry);
  ODE_ASSERT_OK(rig.rt->Drain());
  EXPECT_EQ(rig.db.PeekAttr(rig.oid, "v").value().AsInt().value(), 7);
  m = rig.rt->Metrics();
  EXPECT_EQ(m.total.enqueued, 4u);
  EXPECT_EQ(m.total.processed, 4u);
  EXPECT_EQ(m.total.rejected, 0u);
}

// TryPost under kReject keeps the old contract: a bounce IS a rejection
// and is recorded as one (the wire layer surfaces it to the client as
// ERR_WOULD_BLOCK rather than deferring).
TEST(IngestRuntimeTest, TryPostUnderRejectPolicyRecordsTheBounce) {
  BackpressureRig rig(BackpressurePolicy::kReject);
  ODE_ASSERT_OK(rig.rt->Post(rig.oid, "add", {Value(1)}));
  ODE_ASSERT_OK(rig.rt->Post(rig.oid, "add", {Value(1)}));

  IngestEvent event;
  event.oid = rig.oid;
  event.method = "add";
  event.args = {Value(5)};
  Status s = rig.rt->TryPost(&event);
  EXPECT_EQ(s.code(), StatusCode::kWouldBlock) << s.ToString();
  EXPECT_EQ(rig.rt->Metrics().total.rejected, 1u);

  rig.gate.Release();
  ODE_ASSERT_OK(rig.rt->Drain());
  EXPECT_EQ(rig.db.PeekAttr(rig.oid, "v").value().AsInt().value(), 2);
}

TEST(IngestRuntimeTest, TryPostAfterStopIsShutdown) {
  Database db;
  std::vector<Oid> oids = SetupParityDb(&db, 1);
  IngestRuntime rt(&db, {});
  ODE_ASSERT_OK(rt.Start());
  ODE_ASSERT_OK(rt.Stop());
  IngestEvent event;
  event.oid = oids[0];
  event.method = "add";
  event.args = {Value(1)};
  EXPECT_EQ(rt.TryPost(&event).code(), StatusCode::kShutdown);
}

TEST(IngestRuntimeTest, DrainIsACompletionBarrier) {
  Database db;
  std::vector<Oid> oids = SetupParityDb(&db, 4);
  IngestOptions opts;
  opts.num_shards = 2;
  opts.max_batch = 4;
  IngestRuntime rt(&db, opts);
  ODE_ASSERT_OK(rt.Start());
  constexpr int kPosts = 500;
  for (int i = 0; i < kPosts; ++i) {
    ODE_ASSERT_OK(rt.Post(oids[i % oids.size()], "add", {Value(1)}));
  }
  ODE_ASSERT_OK(rt.Drain());
  // The barrier means: at this instant, every post is fully applied.
  int64_t total = 0;
  for (Oid oid : oids) {
    total += db.PeekAttr(oid, "v").value().AsInt().value();
  }
  EXPECT_EQ(total, kPosts);
  EXPECT_EQ(rt.Metrics().total.processed, static_cast<uint64_t>(kPosts));
}

TEST(IngestRuntimeTest, RetriesThenDeadLettersAbortingEvent) {
  // `after add ==> tabort` aborts every transaction that calls add: the
  // batch attempt fails, then each per-event retry fails the same way.
  ClassDef def("poison");
  def.AddAttr("v", Value(0));
  def.AddMethod(MethodDef{
      "add",
      {{"int", "d"}},
      MethodKind::kUpdate,
      [](MethodContext* ctx) -> Status {
        ODE_ASSIGN_OR_RETURN(Value d, ctx->Arg("d"));
        return ctx->Set("v", d);
      }});
  def.AddTrigger("P(): perpetual after add ==> tabort");
  Database db;
  ODE_ASSERT_OK(db.RegisterClass(std::move(def)).status());
  Oid oid;
  {
    TxnId t = db.Begin().value();
    oid = db.New(t, "poison").value();
    ODE_ASSERT_OK(db.ActivateTrigger(t, oid, "P"));
    ODE_ASSERT_OK(db.Commit(t));
  }

  std::mutex dl_mu;
  std::vector<std::pair<IngestEvent, Status>> dead;
  IngestOptions opts;
  opts.num_shards = 1;
  opts.error_policy.max_retries = 2;
  opts.error_policy.initial_backoff = std::chrono::microseconds(50);
  opts.dead_letter = [&](const IngestEvent& e, const Status& s) {
    std::lock_guard<std::mutex> lock(dl_mu);
    dead.emplace_back(e, s);
  };
  IngestRuntime rt(&db, opts);
  ODE_ASSERT_OK(rt.Start());
  ODE_ASSERT_OK(rt.Post(oid, "add", {Value(7)}));
  ODE_ASSERT_OK(rt.Drain());

  RuntimeMetricsSnapshot m = rt.Metrics();
  EXPECT_EQ(m.total.dead_lettered, 1u);
  EXPECT_EQ(m.total.retried, 2u);          // max_retries extra attempts.
  EXPECT_EQ(m.total.aborted, 4u);          // batch + initial + 2 retries.
  EXPECT_EQ(m.total.processed, 1u);
  EXPECT_EQ(m.total.fired, 0u);            // No attempt ever committed.
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0].first.oid.id, oid.id);
  EXPECT_EQ(dead[0].first.method, "add");
  EXPECT_EQ(dead[0].second.code(), StatusCode::kAborted);
  // The write never survived any attempt.
  EXPECT_EQ(db.PeekAttr(oid, "v").value().AsInt().value(), 0);
}

TEST(IngestRuntimeTest, NonRetryableFailureDeadLettersImmediately) {
  Database db;
  std::vector<Oid> oids = SetupParityDb(&db, 1);
  std::mutex dl_mu;
  std::vector<Status> dead;
  IngestOptions opts;
  opts.num_shards = 1;
  opts.dead_letter = [&](const IngestEvent&, const Status& s) {
    std::lock_guard<std::mutex> lock(dl_mu);
    dead.push_back(s);
  };
  IngestRuntime rt(&db, opts);
  ODE_ASSERT_OK(rt.Start());
  ODE_ASSERT_OK(rt.Post(oids[0], "no_such_method"));
  ODE_ASSERT_OK(rt.Drain());
  RuntimeMetricsSnapshot m = rt.Metrics();
  EXPECT_EQ(m.total.dead_lettered, 1u);
  EXPECT_EQ(m.total.retried, 0u);  // Not retryable: no second attempt.
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_FALSE(dead[0].ok());
  EXPECT_NE(dead[0].code(), StatusCode::kAborted);
}

TEST(IngestRuntimeTest, LifecycleErrors) {
  Database db;
  IngestRuntime rt(&db, {});
  // Before Start: a caller bug, not a shutdown.
  EXPECT_EQ(rt.Post(Oid{1}, "m").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(rt.Drain().code(), StatusCode::kFailedPrecondition);
  ODE_ASSERT_OK(rt.Start());
  EXPECT_TRUE(rt.running());
  EXPECT_EQ(rt.Start().code(), StatusCode::kFailedPrecondition);
  ODE_ASSERT_OK(rt.Stop());
  ODE_ASSERT_OK(rt.Stop());  // Idempotent.
  EXPECT_FALSE(rt.running());
  // After Stop: the distinct kShutdown lets front ends reply
  // "shutting down" instead of a generic error.
  EXPECT_EQ(rt.Post(Oid{1}, "m").code(), StatusCode::kShutdown);
  EXPECT_EQ(rt.Start().code(), StatusCode::kFailedPrecondition);
}

TEST(IngestRuntimeTest, ProducerAccountingAttributesOutcomes) {
  BackpressureRig rig(BackpressurePolicy::kReject);
  runtime::ProducerMetrics* alice = rig.rt->RegisterProducer("alice");
  runtime::ProducerMetrics* bob = rig.rt->RegisterProducer("bob");
  // Queue capacity is 2 and the worker is parked: alice fills it, bob
  // bounces off it.
  ODE_ASSERT_OK(rig.rt->Post(rig.oid, "add", {Value(1)}, alice));
  ODE_ASSERT_OK(rig.rt->Post(rig.oid, "add", {Value(1)}, alice));
  EXPECT_EQ(rig.rt->Post(rig.oid, "add", {Value(1)}, bob).code(),
            StatusCode::kWouldBlock);
  rig.gate.Release();
  ODE_ASSERT_OK(rig.rt->Drain());
  ODE_ASSERT_OK(rig.rt->Stop());
  // Post after Stop is a failure attributed to the producer that tried.
  EXPECT_EQ(rig.rt->Post(rig.oid, "add", {Value(1)}, bob).code(),
            StatusCode::kShutdown);

  RuntimeMetricsSnapshot m = rig.rt->Metrics();
  ASSERT_EQ(m.producers.size(), 2u);
  EXPECT_EQ(m.producers[0].name, "alice");
  EXPECT_EQ(m.producers[0].posted, 2u);
  EXPECT_EQ(m.producers[0].accepted, 2u);
  EXPECT_EQ(m.producers[0].rejected, 0u);
  EXPECT_EQ(m.producers[1].name, "bob");
  EXPECT_EQ(m.producers[1].posted, 2u);
  EXPECT_EQ(m.producers[1].rejected, 1u);
  EXPECT_EQ(m.producers[1].failed, 1u);
  EXPECT_NE(m.ToString().find("producer bob"), std::string::npos);
}

TEST(IngestRuntimeTest, RetiredProducersFoldIntoAggregate) {
  BackpressureRig rig(BackpressurePolicy::kReject);
  runtime::ProducerMetrics* conn0 = rig.rt->RegisterProducer("conn0");
  runtime::ProducerMetrics* conn1 = rig.rt->RegisterProducer("conn1");
  ODE_ASSERT_OK(rig.rt->Post(rig.oid, "add", {Value(1)}, conn0));
  ODE_ASSERT_OK(rig.rt->Post(rig.oid, "add", {Value(1)}, conn1));
  EXPECT_EQ(rig.rt->Post(rig.oid, "add", {Value(1)}, conn1).code(),
            StatusCode::kWouldBlock);
  rig.gate.Release();
  ODE_ASSERT_OK(rig.rt->Drain());

  // Retiring removes the named entries but folds their counters into one
  // aggregate entry, so Metrics() totals survive connection churn without
  // the producer list growing.
  rig.rt->RetireProducer(conn0);
  rig.rt->RetireProducer(conn1);
  rig.rt->RetireProducer(nullptr);  // Ignored.
  RuntimeMetricsSnapshot m = rig.rt->Metrics();
  ASSERT_EQ(m.producers.size(), 1u);
  EXPECT_EQ(m.producers[0].name, "retired[2]");
  EXPECT_EQ(m.producers[0].posted, 3u);
  EXPECT_EQ(m.producers[0].accepted, 2u);
  EXPECT_EQ(m.producers[0].rejected, 1u);
  EXPECT_EQ(m.producers[0].failed, 0u);

  // New registrations coexist with the aggregate.
  runtime::ProducerMetrics* conn2 = rig.rt->RegisterProducer("conn2");
  ODE_ASSERT_OK(rig.rt->Post(rig.oid, "add", {Value(1)}, conn2));
  ODE_ASSERT_OK(rig.rt->Drain());
  m = rig.rt->Metrics();
  ASSERT_EQ(m.producers.size(), 2u);
  EXPECT_EQ(m.producers[0].name, "conn2");
  EXPECT_EQ(m.producers[0].posted, 1u);
  EXPECT_EQ(m.producers[1].name, "retired[2]");
}

TEST(IngestRuntimeTest, ShardRoutingIsStableAndCoversAllShards) {
  Database db;
  IngestOptions opts;
  opts.num_shards = 4;
  IngestRuntime rt(&db, opts);
  std::vector<bool> hit(4, false);
  for (uint64_t id = 1; id <= 64; ++id) {
    size_t s = rt.ShardOf(Oid{id});
    ASSERT_LT(s, 4u);
    EXPECT_EQ(s, rt.ShardOf(Oid{id}));  // Deterministic.
    hit[s] = true;
  }
  for (int s = 0; s < 4; ++s) EXPECT_TRUE(hit[s]) << "shard " << s;
}

// Many producers hammering shared objects: correctness of totals and of
// the exact trigger fire counts, and the workload the TSan CI job runs.
TEST(IngestRuntimeTest, MpscStressSharedObjects) {
  constexpr size_t kObjects = 8;
  constexpr int kProducers = 4;
  constexpr int kPerProducerPerObject = 100;
  Database db;
  std::vector<Oid> oids = SetupParityDb(&db, kObjects);
  IngestOptions opts;
  opts.num_shards = 4;
  opts.max_batch = 32;
  opts.queue_capacity = 256;
  IngestRuntime rt(&db, opts);
  ODE_ASSERT_OK(rt.Start());
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducerPerObject; ++i) {
        for (Oid oid : oids) {
          ASSERT_TRUE(rt.Post(oid, "add", {Value(1)}).ok());
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  ODE_ASSERT_OK(rt.Drain());
  ODE_ASSERT_OK(rt.Stop());

  constexpr int kAddsPerObject = kProducers * kPerProducerPerObject;
  RuntimeMetricsSnapshot m = rt.Metrics();
  EXPECT_EQ(m.total.enqueued,
            static_cast<uint64_t>(kAddsPerObject) * kObjects);
  EXPECT_EQ(m.total.processed, m.total.enqueued);
  EXPECT_EQ(m.total.dead_lettered, 0u);
  for (Oid oid : oids) {
    EXPECT_EQ(db.PeekAttr(oid, "v").value().AsInt().value(), kAddsPerObject);
    // add-count triggers are order-insensitive: exact counts survive the
    // arbitrary cross-producer interleaving.
    EXPECT_EQ(db.FireCount(oid, "T1"),
              static_cast<uint64_t>(kAddsPerObject / 3));
  }

  std::string dump = m.ToString();
  EXPECT_NE(dump.find("ingest runtime"), std::string::npos);
  EXPECT_NE(dump.find("shard 0"), std::string::npos);
}

// A class-scope trigger (§9 extension) runs ONE automaton over the merged
// event stream of every instance, so its slot is shared mutable state
// across shards: every worker that posts to any instance advances the same
// automaton. This drives one active class trigger from 4 shards at once —
// the TSan CI job turns any unsynchronized slot advancement into a hard
// failure — and checks the merged-stream fire count is exact (`every 3` is
// insensitive to the cross-shard interleaving of `add` symbols).
TEST(IngestRuntimeTest, ClassTriggerUnderMpscLoad) {
  constexpr size_t kObjects = 8;
  constexpr int kProducers = 4;
  constexpr int kPerProducerPerObject = 75;
  ClassDef def("ccell");
  def.AddAttr("v", Value(0));
  def.AddAttr("touches", Value(0));
  def.AddMethod(MethodDef{
      "add",
      {{"int", "d"}},
      MethodKind::kUpdate,
      [](MethodContext* ctx) -> Status {
        ODE_ASSIGN_OR_RETURN(Value v, ctx->Get("v"));
        ODE_ASSIGN_OR_RETURN(Value d, ctx->Arg("d"));
        ODE_ASSIGN_OR_RETURN(Value next, v.Add(d));
        return ctx->Set("v", next);
      }});
  def.AddTrigger("CT(): perpetual every 3 (after add) ==> count");
  Database db;
  ODE_ASSERT_OK(db.RegisterAction("count", CountAction));
  ODE_ASSERT_OK(db.RegisterClass(std::move(def)).status());
  std::vector<Oid> oids;
  {
    TxnId t = db.Begin().value();
    for (size_t i = 0; i < kObjects; ++i) {
      oids.push_back(db.New(t, "ccell").value());
    }
    ODE_ASSERT_OK(db.Commit(t));
  }
  ODE_ASSERT_OK(db.ActivateClassTrigger("ccell", "CT"));

  IngestOptions opts;
  opts.num_shards = 4;
  opts.max_batch = 16;
  opts.queue_capacity = 256;
  // Every worker contends on the shared class slot, so a slow box (TSan on
  // few cores) can make one event lose the deadlock-abort lottery four
  // times in a row; the default budget of 3 retries then dead-letters it
  // and the exact-count assertions below go off by one. The exactness is
  // what this test is about — buy enough retries that a loser always
  // eventually wins (backoff doubles, so 8 retries ≈ 12ms of yielding).
  opts.error_policy.max_retries = 8;
  IngestRuntime rt(&db, opts);
  ODE_ASSERT_OK(rt.Start());
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducerPerObject; ++i) {
        for (Oid oid : oids) {
          ASSERT_TRUE(rt.Post(oid, "add", {Value(1)}).ok());
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  ODE_ASSERT_OK(rt.Drain());
  ODE_ASSERT_OK(rt.Stop());

  constexpr uint64_t kTotalAdds =
      static_cast<uint64_t>(kObjects) * kProducers * kPerProducerPerObject;
  RuntimeMetricsSnapshot m = rt.Metrics();
  EXPECT_EQ(m.total.processed, kTotalAdds);
  EXPECT_EQ(m.total.dead_lettered, 0u);
  // The merged stream saw kTotalAdds `add` symbols; exactly every third
  // one fires, no matter how the shards interleaved.
  EXPECT_EQ(db.ClassFireCount("ccell", "CT"), kTotalAdds / 3);
  EXPECT_TRUE(db.ClassTriggerActive("ccell", "CT").value());
  // Each firing bumped `touches` on the instance whose event completed the
  // pattern, so the per-object counts sum to the fire count.
  int64_t touches = 0;
  int64_t total_v = 0;
  for (Oid oid : oids) {
    touches += db.PeekAttr(oid, "touches").value().AsInt().value();
    total_v += db.PeekAttr(oid, "v").value().AsInt().value();
  }
  EXPECT_EQ(touches, static_cast<int64_t>(kTotalAdds / 3));
  EXPECT_EQ(total_v, static_cast<int64_t>(kTotalAdds));
}

// A commit whose after-tcommit epilogue fails must NOT be replayed: the
// user transaction committed, only the system transaction's postings were
// lost. The worker must count an epilogue failure and move on — replaying
// or retrying would apply the batch twice.
TEST(IngestRuntimeTest, CommitEpilogueFailureDoesNotReplay) {
  // `boom` starts disarmed so the setup commit (which also posts tcommit)
  // succeeds; armed before Start, every worker commit's epilogue fails.
  auto armed = std::make_shared<std::atomic<bool>>(false);
  ClassDef def("fragile");
  def.AddAttr("v", Value(0));
  def.AddMethod(MethodDef{
      "add",
      {{"int", "d"}},
      MethodKind::kUpdate,
      [](MethodContext* ctx) -> Status {
        ODE_ASSIGN_OR_RETURN(Value v, ctx->Get("v"));
        ODE_ASSIGN_OR_RETURN(Value d, ctx->Arg("d"));
        ODE_ASSIGN_OR_RETURN(Value next, v.Add(d));
        return ctx->Set("v", next);
      }});
  def.AddTrigger("E(): perpetual after tcommit ==> boom");
  Database db;
  ODE_ASSERT_OK(db.RegisterAction(
      "boom", [armed](const ActionContext&) -> Status {
        return armed->load() ? Status::Internal("epilogue action failure")
                             : Status::OK();
      }));
  ODE_ASSERT_OK(db.RegisterClass(std::move(def)).status());
  Oid oid;
  {
    TxnId t = db.Begin().value();
    oid = db.New(t, "fragile").value();
    ODE_ASSERT_OK(db.ActivateTrigger(t, oid, "E"));
    ODE_ASSERT_OK(db.Commit(t));
  }
  armed->store(true);

  IngestOptions opts;
  opts.num_shards = 1;
  opts.max_batch = 8;
  opts.error_policy.max_retries = 2;
  IngestRuntime rt(&db, opts);
  ODE_ASSERT_OK(rt.Start());
  constexpr int kPosts = 40;
  for (int i = 0; i < kPosts; ++i) {
    ODE_ASSERT_OK(rt.Post(oid, "add", {Value(1)}));
  }
  ODE_ASSERT_OK(rt.Drain());

  RuntimeMetricsSnapshot m = rt.Metrics();
  EXPECT_EQ(m.total.processed, static_cast<uint64_t>(kPosts));
  // Committed-with-failed-epilogue is not an abort: nothing was retried,
  // replayed, or dead-lettered...
  EXPECT_EQ(m.total.aborted, 0u);
  EXPECT_EQ(m.total.retried, 0u);
  EXPECT_EQ(m.total.dead_lettered, 0u);
  EXPECT_GE(m.total.epilogue_failures, 1u);
  // ...so every add applied exactly once.
  EXPECT_EQ(db.PeekAttr(oid, "v").value().AsInt().value(), kPosts);
}

// A WAL append failure must degrade the shard to in-memory operation, not
// bounce producers or lose the already-queued event: the first failure
// fires on_wal_failure exactly once, latches wal_degraded(), disables
// further append attempts, and every post before and after the failure is
// still processed. The writer is opened on /dev/full, whose writes always
// fail with ENOSPC — the canonical disk-full injection.
TEST(IngestRuntimeTest, WalAppendFailureDegradesToInMemory) {
  Database db;
  ODE_ASSERT_OK(db.RegisterAction("count", CountAction));
  ODE_ASSERT_OK(db.RegisterClass(ParityClass()).status());
  Oid oid;
  {
    TxnId t = db.Begin().value();
    oid = db.New(t, "cell").value();
    ODE_ASSERT_OK(db.Commit(t));
  }

  wal::LogWriter writer;
  wal::WalOptions wal_options;
  wal_options.fsync = wal::FsyncPolicy::kNever;  // Write-through, no flusher.
  Status opened = writer.Open("/dev/full", /*start_lsn=*/0, wal_options);
  if (!opened.ok()) {
    GTEST_SKIP() << "/dev/full unavailable: " << opened.ToString();
  }

  std::atomic<int> failures{0};
  Status first_failure = Status::OK();
  runtime::Shard::Options options;
  options.wal = &writer;
  options.on_wal_failure = [&](const Status& status) {
    if (failures.fetch_add(1) == 0) first_failure = status;
  };
  runtime::Shard shard(0, &db, options);
  shard.Start();
  EXPECT_FALSE(shard.wal_degraded());

  constexpr int kPosts = 10;
  for (int i = 0; i < kPosts; ++i) {
    IngestEvent event;
    event.oid = oid;
    event.method = "add";
    event.args = {Value(1)};
    bool enqueued = false;
    // The append failure is swallowed: the event entered the queue, so the
    // producer sees OK and the shard carries on without a log.
    ODE_ASSERT_OK(shard.Enqueue(std::move(event), &enqueued));
    EXPECT_TRUE(enqueued);
  }
  shard.WaitDrained();
  shard.Stop();

  // Exactly one escalation, carrying the real I/O error.
  EXPECT_EQ(failures.load(), 1);
  EXPECT_TRUE(shard.wal_degraded());
  EXPECT_FALSE(first_failure.ok());
  // Only the first append was attempted; the writer's sticky failure was
  // never poked again (appends counts successful appends only).
  EXPECT_EQ(writer.appends(), 0u);
  // Every event — including the one whose append failed — was processed.
  EXPECT_EQ(db.PeekAttr(oid, "v").value().AsInt().value(), kPosts);
}

}  // namespace
}  // namespace ode
