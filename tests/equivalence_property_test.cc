// Experiment E2: the paper's central formal claim — event expressions
// compile to finite automata that detect exactly the §4 denotational
// occurrences. Three independent implementations are cross-checked on
// random expressions and random histories:
//   1. the compiled minimal DFA (compile/compiler.h, §5),
//   2. the denotational oracle (semantics/oracle.h, §4),
//   3. the Snoop-style incremental tree detector (baseline/tree_detector.h).
#include <gtest/gtest.h>

#include <random>

#include "baseline/tree_detector.h"
#include "compile/compiler.h"
#include "semantics/oracle.h"
#include "test_util.h"

namespace ode {
namespace {

using testing_util::RandomExpr;
using testing_util::RandomHistory;

struct SweepParam {
  int depth;
  size_t history_len;
  uint32_t seed;
};

class EquivalenceSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(EquivalenceSweep, DfaMatchesOracleAndTree) {
  const SweepParam param = GetParam();
  std::mt19937 rng(param.seed);
  int checked = 0;
  for (int trial = 0; trial < 40; ++trial) {
    EventExprPtr expr = RandomExpr(&rng, param.depth);
    Result<CompiledEvent> compiled = CompileEvent(expr, CompileOptions());
    if (!compiled.ok()) {
      // Resource-guard rejections are acceptable for adversarial trees.
      ASSERT_EQ(compiled.status().code(), StatusCode::kResourceExhausted)
          << expr->ToString() << ": " << compiled.status().ToString();
      continue;
    }
    Oracle oracle(expr, &compiled->alphabet);
    Result<std::unique_ptr<TreeDetector>> tree =
        TreeDetector::Create(expr, &compiled->alphabet);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();

    for (int h = 0; h < 5; ++h) {
      std::vector<SymbolId> history =
          RandomHistory(&rng, compiled->alphabet.size(), param.history_len);
      std::vector<bool> dfa_marks = compiled->dfa.OccurrencePoints(history);
      Result<std::vector<bool>> oracle_marks =
          oracle.OccurrencePoints(history);
      ASSERT_TRUE(oracle_marks.ok()) << oracle_marks.status().ToString();
      ASSERT_EQ(dfa_marks, *oracle_marks)
          << "expr: " << expr->ToString() << "\nhistory length "
          << history.size();

      (*tree)->Reset();
      for (size_t i = 0; i < history.size(); ++i) {
        Result<bool> occurs = (*tree)->Advance(history[i]);
        if (!occurs.ok()) {
          // Nested suffix operators make the instance-based baseline blow
          // up combinatorially — the very behavior bench_detection
          // measures. The cap firing is acceptable; DFA vs. oracle above
          // already covered this history.
          ASSERT_EQ(occurs.status().code(), StatusCode::kResourceExhausted)
              << occurs.status().ToString();
          break;
        }
        ASSERT_EQ(*occurs, dfa_marks[i])
            << "expr: " << expr->ToString() << "\nposition " << i;
      }
      ++checked;
    }
  }
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EquivalenceSweep,
    ::testing::Values(SweepParam{1, 12, 11}, SweepParam{2, 16, 22},
                      SweepParam{3, 20, 33}, SweepParam{3, 40, 44},
                      SweepParam{4, 24, 55}, SweepParam{2, 64, 66}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "depth" + std::to_string(info.param.depth) + "_len" +
             std::to_string(info.param.history_len) + "_seed" +
             std::to_string(info.param.seed);
    });

// Masked atoms: the DFA and oracle must agree when the alphabet carries
// mask micro-symbols (the §5 rewrite).
TEST(EquivalenceMaskedTest, MaskMicroSymbols) {
  std::mt19937 rng(77);
  EventExprPtr expr = testing_util::ParseOrDie(
      "relative(after w(i, q) && q > 100, after w(i, q) && q <= 100)"
      " | sequence(before log(a) && a > 0, before log(a) && a > 0)");
  Result<CompiledEvent> compiled = CompileEvent(expr, CompileOptions());
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  Oracle oracle(expr, &compiled->alphabet);
  for (int h = 0; h < 40; ++h) {
    std::vector<SymbolId> history =
        RandomHistory(&rng, compiled->alphabet.size(), 24);
    EXPECT_EQ(compiled->dfa.OccurrencePoints(history),
              oracle.OccurrencePoints(history).value());
  }
}

// The NFA (pre-determinization) must agree with the DFA — exercised on the
// raw compile path.
TEST(EquivalenceNfaTest, NfaAgreesWithDfa) {
  std::mt19937 rng(88);
  for (int trial = 0; trial < 20; ++trial) {
    EventExprPtr expr = RandomExpr(&rng, 2);
    Result<CompiledEvent> compiled = CompileEvent(expr, CompileOptions());
    if (!compiled.ok()) continue;
    Result<Nfa> nfa = CompileToNfa(*expr, compiled->alphabet);
    ASSERT_TRUE(nfa.ok()) << nfa.status().ToString();
    for (int h = 0; h < 5; ++h) {
      std::vector<SymbolId> history =
          RandomHistory(&rng, compiled->alphabet.size(), 10);
      EXPECT_EQ(nfa->Accepts(history), compiled->dfa.Accepts(history))
          << expr->ToString();
    }
  }
}

}  // namespace
}  // namespace ode
