// The semantics-verified --fix rewriter (analyze/fix.h): targeted-code
// cleanup, comment preservation, verification gates, and the property
// suite — every rewrite re-lints clean, stays DFA-equivalent, and agrees
// with the §4 oracle on 500+ random histories.

#include "analyze/fix.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "analyze/analyzer.h"
#include "analyze/automaton_check.h"
#include "lang/event_parser.h"
#include "semantics/oracle.h"

namespace ode {
namespace {

bool HasCode(const AnalysisReport& report, std::string_view id) {
  for (const Diagnostic& d : report.AllDiagnostics()) {
    if (d.id == id) return true;
  }
  return false;
}

TEST(FixTest, DropsAlwaysTrueMask) {
  FixResult fixed = FixSpecSource(
      "t(): (after a | after b) && (q > 0 || q <= 0) ==> log\n");
  ASSERT_EQ(fixed.applied.size(), 1u);
  EXPECT_EQ(fixed.applied[0].code, "L002");
  EXPECT_EQ(fixed.applied[0].trigger, "t");
  EXPECT_EQ(fixed.suppressed, 0u);
  EXPECT_EQ(fixed.fixed_source.find("q > 0"), std::string::npos);

  AnalysisReport relint = AnalyzeSpecSource(fixed.fixed_source);
  EXPECT_FALSE(HasCode(relint, "L002"));
  EXPECT_FALSE(relint.has_errors());
}

TEST(FixTest, CollapsesDegenerateCount) {
  FixResult fixed = FixSpecSource("t(): every 1 (after a) ==> log\n");
  ASSERT_EQ(fixed.applied.size(), 1u);
  EXPECT_EQ(fixed.applied[0].code, "L007");
  AnalysisReport relint = AnalyzeSpecSource(fixed.fixed_source);
  EXPECT_FALSE(HasCode(relint, "L007"));
}

TEST(FixTest, PrunesEmptyOrOperand) {
  FixResult fixed = FixSpecSource("t(): after a | empty ==> log\n");
  ASSERT_EQ(fixed.applied.size(), 1u);
  EXPECT_EQ(fixed.applied[0].code, "L008");
  AnalysisReport relint = AnalyzeSpecSource(fixed.fixed_source);
  EXPECT_FALSE(HasCode(relint, "L008"));
}

TEST(FixTest, EmptyInSequenceIsNotTouched) {
  // `empty` anywhere but under `|` collapses the surrounding event; the
  // rewriter must leave it for the user.
  FixResult fixed = FixSpecSource("t(): after a ; empty ==> log\n");
  EXPECT_TRUE(fixed.applied.empty());
  EXPECT_EQ(fixed.fixed_source,
            "t(): after a ; empty ==> log\n");
}

TEST(FixTest, UnsatisfiableMaskIsNotTouched) {
  // A never-true mask is an L001 error to surface, not a rewrite target.
  std::string source = "t(): after w(q) && q > 9 && q < 1 ==> log\n";
  FixResult fixed = FixSpecSource(source);
  EXPECT_TRUE(fixed.applied.empty());
  EXPECT_EQ(fixed.fixed_source, source);
}

TEST(FixTest, SimplifiesSolverProvenConstantAtom) {
  // The tautological disjunct inside the mask folds away; the undecidable
  // `flag` part stays.
  FixResult fixed = FixSpecSource(
      "t(): (after a | after b) && (flag && (q * 2 > 10 || q <= 5)) "
      "==> log\n");
  ASSERT_EQ(fixed.applied.size(), 1u);
  EXPECT_EQ(fixed.applied[0].code, "L002");
  EXPECT_NE(fixed.fixed_source.find("flag"), std::string::npos);
  EXPECT_EQ(fixed.fixed_source.find("q * 2"), std::string::npos);
}

TEST(FixTest, MaskNestedUnderCountIsStillFixed) {
  // The always-true mask sits *under* `every 1`: a nested mask node is a
  // gate the pairwise comparison and the oracle both refuse, so the
  // verifier must normalize proven-true masks away before gating the
  // structural rewrites (the count collapse) on DFA+oracle equivalence.
  FixResult fixed = FixSpecSource(
      "t(): every 1 ((after a | after b) && (p > 0 || p <= 0)) ==> log\n");
  ASSERT_EQ(fixed.applied.size(), 2u);
  EXPECT_EQ(fixed.suppressed, 0u);
  EXPECT_EQ(fixed.fixed_source.find("p > 0"), std::string::npos);
  EXPECT_EQ(fixed.fixed_source.find("every"), std::string::npos);

  AnalysisReport relint = AnalyzeSpecSource(fixed.fixed_source);
  EXPECT_FALSE(HasCode(relint, "L002"));
  EXPECT_FALSE(HasCode(relint, "L007"));
  EXPECT_FALSE(relint.has_errors());

  Result<TriggerSpec> orig = ParseTriggerSpec(
      "t(): every 1 ((after a | after b) && (p > 0 || p <= 0)) ==> log\n");
  Result<TriggerSpec> after = ParseTriggerSpec(fixed.fixed_source);
  ASSERT_TRUE(orig.ok() && after.ok());
  EXPECT_TRUE(VerifyRewrite(orig->event, after->event));
}

TEST(FixTest, CommentsOutsideDeclarationsSurvive) {
  FixResult fixed = FixSpecSource(
      "// watches account activity\n"
      "t(): every 1 (after a) ==> log\n"
      "\n"
      "// untouched neighbor\n"
      "u(): after b ==> log\n");
  EXPECT_EQ(fixed.applied.size(), 1u);
  EXPECT_NE(fixed.fixed_source.find("// watches account activity"),
            std::string::npos);
  EXPECT_NE(fixed.fixed_source.find("// untouched neighbor"),
            std::string::npos);
  EXPECT_NE(fixed.fixed_source.find("u(): after b ==> log"),
            std::string::npos);
}

TEST(FixTest, VerifierRejectsInequivalentRewrite) {
  // Sound rewrites never fail verification, so exercise the gate
  // directly: `after a` vs `after b` must be refused.
  Result<EventExprPtr> a = ParseEvent("after a");
  Result<EventExprPtr> b = ParseEvent("after b");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(VerifyRewrite(*a, *b));
  EXPECT_TRUE(VerifyRewrite(*a, *a));
}

TEST(FixTest, VerifierAcceptsMaskDrop) {
  Result<EventExprPtr> orig =
      ParseEvent("(after a | after b) && (q > 0 || q <= 0)");
  Result<EventExprPtr> fixed = ParseEvent("after a | after b");
  ASSERT_TRUE(orig.ok() && fixed.ok());
  EXPECT_TRUE(VerifyRewrite(*orig, *fixed));
}

// --- Property suite -----------------------------------------------------
//
// Over a corpus of fixable specs: (a) the fixed source re-lints clean of
// the targeted codes, (b) each rewritten expression is DFA-equivalent to
// its original, (c) original and fixed agree with the §4 oracle on >= 500
// random histories total.

TEST(FixPropertyTest, FixedSpecsStayEquivalent) {
  const std::vector<std::string> corpus = {
      "t(): (after a | after b) && (q > 0 || q <= 0) ==> log\n",
      "t(): every 1 (after a) ==> log\n",
      "t(): sequence 1 (after a) ==> log\n",
      "t(): relative 1 (after a) ==> log\n",
      "t(): after a | empty ==> log\n",
      "t(): empty | after a ; after b ==> log\n",
      "t(): (after a ; after b) && (q < 10 || q * 2 >= 20) ==> log\n",
      "t(): every 1 (after a | empty) ==> log\n",
      "t(): (after w(q) && (p > 0 || p <= 0)) | after d ==> log\n",
  };

  size_t total_histories = 0;
  for (const std::string& source : corpus) {
    SCOPED_TRACE(source);
    FixResult fixed = FixSpecSource(source);
    ASSERT_FALSE(fixed.applied.empty());
    EXPECT_EQ(fixed.suppressed, 0u);

    // (a) Clean of the targeted codes.
    AnalysisReport relint = AnalyzeSpecSource(fixed.fixed_source);
    for (const char* code : {"L002", "L007", "L008"}) {
      EXPECT_FALSE(HasCode(relint, code)) << "residual " << code;
    }
    EXPECT_FALSE(relint.has_errors());

    Result<TriggerSpec> orig_spec = ParseTriggerSpec(source);
    Result<TriggerSpec> fixed_spec = ParseTriggerSpec(fixed.fixed_source);
    ASSERT_TRUE(orig_spec.ok() && fixed_spec.ok());

    // (b) DFA equivalence over the realizable joint alphabet.
    Result<PairComparison> cmp = CompareEventExprsDetailed(
        orig_spec->event, fixed_spec->event, {});
    ASSERT_TRUE(cmp.ok());
    EXPECT_EQ(cmp->relation, PairRelation::kEquivalent);

    // (c) Oracle agreement on random realizable histories.
    EventExprPtr core_a = orig_spec->event;
    EventExprPtr core_b = fixed_spec->event;
    while (core_a->kind == EventExprKind::kMasked) {
      core_a = core_a->children[0];
    }
    while (core_b->kind == EventExprKind::kMasked) {
      core_b = core_b->children[0];
    }
    Result<Alphabet> joint =
        Alphabet::Build(*EventExpr::Or(core_a, core_b), {});
    ASSERT_TRUE(joint.ok());
    std::vector<bool> possible = ComputeAlphabetPossibleSymbols(*joint);
    std::vector<SymbolId> realizable;
    for (size_t s = 0; s < possible.size(); ++s) {
      if (possible[s]) realizable.push_back(static_cast<SymbolId>(s));
    }
    ASSERT_FALSE(realizable.empty());

    Oracle oracle_a(core_a, &*joint);
    Oracle oracle_b(core_b, &*joint);
    std::mt19937_64 rng(0xf1c5 + total_histories);
    std::uniform_int_distribution<size_t> pick(0, realizable.size() - 1);
    for (size_t h = 0; h < 64; ++h) {
      std::vector<SymbolId> history(12);
      for (SymbolId& sym : history) sym = realizable[pick(rng)];
      Result<std::vector<bool>> pa = oracle_a.OccurrencePoints(history);
      Result<std::vector<bool>> pb = oracle_b.OccurrencePoints(history);
      ASSERT_TRUE(pa.ok() && pb.ok());
      EXPECT_EQ(*pa, *pb);
      ++total_histories;
    }
  }
  EXPECT_GE(total_histories, 500u);
}

}  // namespace
}  // namespace ode
