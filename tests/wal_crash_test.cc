// Crash-recovery tests: a forked child ingests through a durable
// IngestRuntime and is SIGKILLed at randomized points (mid-post,
// mid-checkpoint, mid-fsync); the parent recovers from the surviving
// directory and proves the §4 oracle property — recovered object state
// and trigger firings equal a single-threaded run of exactly the events
// that were made durable, each applied exactly once. Corruption variants
// (torn tail, bit flip) must be detected by the CRC and cleanly cut, not
// replayed.
//
// The parent is single-threaded at every fork() (each recovery runtime is
// stopped before the next child), which keeps the test sanitizer-clean.
#include <gtest/gtest.h>
#include <signal.h>
#include <stdlib.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "ode/database.h"
#include "runtime/ingest_runtime.h"
#include "test_util.h"
#include "wal/log_reader.h"
#include "wal/log_writer.h"

namespace ode {
namespace {

using runtime::IngestOptions;
using runtime::IngestRuntime;

constexpr char kIdentity[] = "crash-client";
constexpr size_t kObjects = 3;
constexpr int kCheckpointEvery = 300;
constexpr int kMaxChildEvents = 200000;

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/ode-crash-test-XXXXXX";
    char* got = mkdtemp(tmpl);
    EXPECT_NE(got, nullptr);
    path_ = got != nullptr ? got : "";
  }
  ~TempDir() {
    if (!path_.empty()) {
      std::string cmd = "rm -rf '" + path_ + "'";
      (void)!system(cmd.c_str());
    }
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Status CountAction(const ActionContext& ctx) {
  Result<Value> t = ctx.db->PeekAttr(ctx.self, "touches");
  if (!t.ok()) return t.status();
  Result<Value> next = t->Add(Value(1));
  if (!next.ok()) return next.status();
  return ctx.db->SetAttr(ctx.txn, ctx.self, "touches", next.value());
}

ClassDef CellClass() {
  ClassDef def("cell");
  def.AddAttr("v", Value(0));
  def.AddAttr("touches", Value(0));
  def.AddMethod(MethodDef{
      "add",
      {{"int", "d"}},
      MethodKind::kUpdate,
      [](MethodContext* ctx) -> Status {
        ODE_ASSIGN_OR_RETURN(Value v, ctx->Get("v"));
        ODE_ASSIGN_OR_RETURN(Value d, ctx->Arg("d"));
        ODE_ASSIGN_OR_RETURN(Value next, v.Add(d));
        return ctx->Set("v", next);
      }});
  def.AddTrigger("T1(): perpetual every 3 (after add) ==> count");
  return def;
}

std::vector<Oid> SetupCells(Database* db) {
  EXPECT_TRUE(db->RegisterAction("count", CountAction).ok());
  EXPECT_TRUE(db->RegisterClass(CellClass()).status().ok());
  std::vector<Oid> oids;
  TxnId t = db->Begin().value();
  for (size_t i = 0; i < kObjects; ++i) {
    Result<Oid> oid = db->New(t, "cell");
    EXPECT_TRUE(oid.ok());
    oids.push_back(*oid);
    ODE_EXPECT_OK(db->ActivateTrigger(t, *oid, "T1"));
  }
  ODE_EXPECT_OK(db->Commit(t));
  return oids;
}

IngestOptions DurableOptions(const std::string& dir, size_t shards) {
  IngestOptions o;
  o.num_shards = shards;
  o.queue_capacity = 64;  // Small queue: checkpoints catch in-flight events.
  o.max_batch = 8;
  o.durability.dir = dir;
  // ACK-implies-durable: every accepted post survives the kill, so the
  // recovered set is exactly the prefix the child finished posting.
  o.durability.fsync = wal::FsyncPolicy::kAlways;
  return o;
}

/// Child body: ingest add(1) round-robin with a durable identity,
/// checkpointing periodically, until killed (or the event cap, whichever
/// first). Never returns into gtest — exits the process.
[[noreturn]] void ChildIngestLoop(const std::string& dir, size_t shards) {
  Database db;
  std::vector<Oid> oids = SetupCells(&db);
  IngestRuntime rt(&db, DurableOptions(dir, shards));
  if (!rt.Start().ok()) _exit(3);
  for (int i = 1; i <= kMaxChildEvents; ++i) {
    Status s = rt.Post(oids[(i - 1) % kObjects], "add", {Value(1)}, nullptr,
                       kIdentity, static_cast<uint64_t>(i));
    if (!s.ok()) _exit(3);
    if (i % kCheckpointEvery == 0) {
      if (!rt.Checkpoint().ok()) _exit(3);
    }
  }
  _exit(0);  // Outlived the parent's patience; still a valid crash point.
}

/// Forks the child, kills it after `delay_us`, and reaps it.
void RunChildAndKill(const std::string& dir, size_t shards, int delay_us) {
  pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) ChildIngestLoop(dir, shards);
  if (delay_us > 0) usleep(static_cast<useconds_t>(delay_us));
  kill(pid, SIGKILL);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  // Either we killed it mid-flight or it finished cleanly first; an
  // error exit means the child's ingest path itself failed.
  if (WIFEXITED(status)) {
    ASSERT_EQ(WEXITSTATUS(status), 0);
  }
}

/// Recovers the directory, derives how many events survived (every add
/// contributes exactly 1 to Σv), and checks full §4 oracle parity plus
/// the exactly-once bookkeeping. Then keeps ingesting a few more events
/// through the recovered runtime: the T1 counting automaton must resume
/// exactly where the pre-crash run left it (mid-cycle), which only holds
/// if recovery restored the trigger states, not just the attributes.
void RecoverAndVerify(const std::string& dir, size_t shards) {
  constexpr int64_t kContinue = 9;
  Database db;
  std::vector<Oid> oids = SetupCells(&db);
  IngestRuntime rt(&db, DurableOptions(dir, shards));
  ODE_ASSERT_OK(rt.Start());
  ODE_ASSERT_OK(rt.Drain());

  int64_t k = 0;
  for (const Oid& oid : oids) {
    k += db.PeekAttr(oid, "v").value().AsInt().value();
  }
  ASSERT_GE(k, 0);
  ASSERT_LE(k, kMaxChildEvents + kContinue * 4);

  // Exactly-once: the durable set is the exact prefix 1..k — every event
  // ever posted was add(1) under contiguous seqs, so nothing can be
  // missing from the middle, and a duplicate application would inflate
  // Σv past the applied count.
  wal::SeqSet applied = rt.AppliedSeqs(kIdentity);
  EXPECT_EQ(applied.count(), static_cast<uint64_t>(k));
  EXPECT_EQ(applied.max_seq(), static_cast<uint64_t>(k));

  // Continue the stream post-recovery (same global numbering: event i
  // targets object (i-1) mod kObjects).
  for (int64_t i = k + 1; i <= k + kContinue; ++i) {
    ODE_ASSERT_OK(rt.Post(oids[(i - 1) % kObjects], "add", {Value(1)},
                          nullptr, kIdentity, static_cast<uint64_t>(i)));
  }
  ODE_ASSERT_OK(rt.Drain());

  // Oracle: the same k + kContinue events, single-threaded, one
  // transaction each, against a fresh database.
  Database oracle;
  std::vector<Oid> oracle_oids = SetupCells(&oracle);
  for (int64_t i = 1; i <= k + kContinue; ++i) {
    TxnId t = oracle.Begin().value();
    Result<Value> r = oracle.Call(t, oracle_oids[(i - 1) % kObjects], "add",
                                  {Value(1)});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ODE_ASSERT_OK(oracle.Commit(t));
  }
  for (size_t i = 0; i < kObjects; ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(db.PeekAttr(oids[i], "v").value().AsInt().value(),
              oracle.PeekAttr(oracle_oids[i], "v").value().AsInt().value());
    EXPECT_EQ(
        db.PeekAttr(oids[i], "touches").value().AsInt().value(),
        oracle.PeekAttr(oracle_oids[i], "touches").value().AsInt().value());
  }
  ODE_ASSERT_OK(rt.Stop());
}

// --- Class-scope (§9) crash recovery ------------------------------------
//
// Same forked-child scheme, but the trigger is class-scope: ONE counting
// automaton over the merged stream of every instance's `add`s, advanced by
// the sequencer and made durable through seqorder.log. Recovery must
// reproduce the automaton's exact mid-cycle state, which the parent proves
// at the firing boundary: after A recovered adds, the next fire must land
// exactly on add number 3 * (floor(A/3) + 1) — one early or one late means
// the recovered cycle position is wrong.

ClassDef ClassCellClass() {
  ClassDef def("ccell");
  def.AddAttr("v", Value(0));
  def.AddAttr("touches", Value(0));
  def.AddMethod(MethodDef{
      "add",
      {{"int", "d"}},
      MethodKind::kUpdate,
      [](MethodContext* ctx) -> Status {
        ODE_ASSIGN_OR_RETURN(Value v, ctx->Get("v"));
        ODE_ASSIGN_OR_RETURN(Value d, ctx->Arg("d"));
        ODE_ASSIGN_OR_RETURN(Value next, v.Add(d));
        return ctx->Set("v", next);
      }});
  def.AddTrigger("CT(): perpetual every 3 (after add) ==> count");
  return def;
}

std::vector<Oid> SetupClassCells(Database* db) {
  EXPECT_TRUE(db->RegisterAction("count", CountAction).ok());
  EXPECT_TRUE(db->RegisterClass(ClassCellClass()).status().ok());
  std::vector<Oid> oids;
  TxnId t = db->Begin().value();
  for (size_t i = 0; i < kObjects; ++i) {
    Result<Oid> oid = db->New(t, "ccell");
    EXPECT_TRUE(oid.ok());
    oids.push_back(*oid);
  }
  EXPECT_TRUE(db->Commit(t).ok());
  // Class-scope activation precedes runtime start: recovery replays
  // seqorder.log into the already-activated slots.
  EXPECT_TRUE(db->ActivateClassTrigger("ccell", "CT").ok());
  return oids;
}

[[noreturn]] void ChildClassIngestLoop(const std::string& dir,
                                       size_t shards) {
  Database db;
  std::vector<Oid> oids = SetupClassCells(&db);
  IngestRuntime rt(&db, DurableOptions(dir, shards));
  if (!rt.Start().ok()) _exit(3);
  for (int i = 1; i <= kMaxChildEvents; ++i) {
    Status s = rt.Post(oids[(i - 1) % kObjects], "add", {Value(1)}, nullptr,
                       kIdentity, static_cast<uint64_t>(i));
    if (!s.ok()) _exit(3);
    if (i % kCheckpointEvery == 0) {
      if (!rt.Checkpoint().ok()) _exit(3);
    }
  }
  _exit(0);
}

int64_t SumAttr(Database* db, const std::vector<Oid>& oids,
                const char* attr) {
  int64_t sum = 0;
  for (const Oid& oid : oids) {
    sum += db->PeekAttr(oid, attr).value().AsInt().value();
  }
  return sum;
}

void RecoverAndVerifyClassScope(const std::string& dir, size_t shards) {
  Database db;
  std::vector<Oid> oids = SetupClassCells(&db);
  IngestRuntime rt(&db, DurableOptions(dir, shards));
  ODE_ASSERT_OK(rt.Start());
  ODE_ASSERT_OK(rt.Drain());

  // A = adds made durable before the kill (each contributes exactly 1 to
  // Σv); the exactly-once bookkeeping must agree.
  const int64_t a = SumAttr(&db, oids, "v");
  wal::SeqSet applied = rt.AppliedSeqs(kIdentity);
  EXPECT_EQ(applied.count(), static_cast<uint64_t>(a));
  EXPECT_EQ(applied.max_seq(), static_cast<uint64_t>(a));

  // Every 3rd add in the merged class stream fired `count` on the posting
  // object — checkpoint snapshot plus exactly-once replay (order log, then
  // deduped shard replay) must land the total on the oracle value.
  EXPECT_EQ(SumAttr(&db, oids, "touches"), a / 3);

  // Boundary probe: the automaton sits (a mod 3) symbols into its cycle,
  // so the next fire comes after exactly r = 3 - (a mod 3) more adds.
  const int64_t r = 3 - (a % 3);
  for (int64_t j = 1; j < r; ++j) {
    ODE_ASSERT_OK(rt.Post(oids[(a + j - 1) % kObjects], "add", {Value(1)},
                          nullptr, kIdentity, static_cast<uint64_t>(a + j)));
  }
  ODE_ASSERT_OK(rt.Drain());
  EXPECT_EQ(SumAttr(&db, oids, "touches"), a / 3) << "fired one add early";
  ODE_ASSERT_OK(rt.Post(oids[(a + r - 1) % kObjects], "add", {Value(1)},
                        nullptr, kIdentity, static_cast<uint64_t>(a + r)));
  ODE_ASSERT_OK(rt.Drain());
  EXPECT_EQ(SumAttr(&db, oids, "touches"), a / 3 + 1)
      << "recovered cycle position lost the fire boundary";
  EXPECT_EQ(SumAttr(&db, oids, "v"), a + r);
  ODE_ASSERT_OK(rt.Stop());
}

TEST(WalCrashTest, ClassScopeAutomatonSurvivesKill) {
  for (int delay_us : {1000, 8000, 30000}) {
    SCOPED_TRACE(delay_us);
    TempDir dir;
    pid_t pid = fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) ChildClassIngestLoop(dir.path(), /*shards=*/2);
    usleep(static_cast<useconds_t>(delay_us));
    kill(pid, SIGKILL);
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    if (WIFEXITED(status)) {
      ASSERT_EQ(WEXITSTATUS(status), 0);
    }
    RecoverAndVerifyClassScope(dir.path(), /*shards=*/2);
  }
}

TEST(WalCrashTest, ClassScopeRecoveryIsRepeatable) {
  // The boundary probe itself posts r more adds and checkpoints nothing;
  // a second recovery must replay those too and land on the next boundary.
  TempDir dir;
  pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) ChildClassIngestLoop(dir.path(), /*shards=*/2);
  usleep(20000);
  kill(pid, SIGKILL);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  if (WIFEXITED(status)) {
    ASSERT_EQ(WEXITSTATUS(status), 0);
  }
  RecoverAndVerifyClassScope(dir.path(), /*shards=*/2);
  RecoverAndVerifyClassScope(dir.path(), /*shards=*/2);
}

TEST(WalCrashTest, KillAtRandomizedPointsRecoversToOracleState) {
  // Sweep kill delays from "before the runtime even starts" to "well into
  // steady-state ingest with several checkpoints behind it".
  for (int delay_us : {0, 200, 1000, 5000, 20000, 60000}) {
    SCOPED_TRACE(delay_us);
    TempDir dir;
    RunChildAndKill(dir.path(), /*shards=*/2, delay_us);
    RecoverAndVerify(dir.path(), /*shards=*/2);
  }
}

TEST(WalCrashTest, RecoveryAfterKillIsRepeatable) {
  // Recover the same directory twice: the post-recovery checkpoint must
  // leave a state that recovers to itself (recovery is idempotent).
  TempDir dir;
  RunChildAndKill(dir.path(), /*shards=*/2, 15000);
  RecoverAndVerify(dir.path(), /*shards=*/2);
  RecoverAndVerify(dir.path(), /*shards=*/2);
}

TEST(WalCrashTest, TornTailBytesAreDetectedAndCut) {
  TempDir dir;
  RunChildAndKill(dir.path(), /*shards=*/1, 20000);
  // Simulate a write torn mid-record by the crash: garbage after the
  // valid prefix. The CRC framing must cut it, not interpret it.
  const std::string path = wal::ShardLogPath(dir.path(), 0);
  FILE* f = fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  const char garbage[] = {0x20, 0x00, 0x00, 0x00, 0x5a, 0x5a, 0x5a};
  fwrite(garbage, 1, sizeof(garbage), f);
  fclose(f);
  {
    Database probe_db;
    std::vector<Oid> probe_oids = SetupCells(&probe_db);
    IngestRuntime probe(&probe_db, DurableOptions(dir.path(), 1));
    ODE_ASSERT_OK(probe.Start());
    EXPECT_EQ(probe.recovery().torn_files, 1u);
    EXPECT_GT(probe.recovery().torn_bytes, 0u);
    ODE_ASSERT_OK(probe.Stop());
  }
  // The probe's recovery checkpoint absorbed the cut; state stays
  // oracle-consistent through yet another recovery.
  RecoverAndVerify(dir.path(), /*shards=*/1);
}

TEST(WalCrashTest, BitFlippedRecordIsDetectedAndCut) {
  TempDir dir;
  RunChildAndKill(dir.path(), /*shards=*/1, 20000);
  // Flip one bit near the end of the log: the flipped record and
  // anything after it must be discarded (single shard keeps the
  // surviving set a clean prefix), never applied as garbage.
  const std::string path = wal::ShardLogPath(dir.path(), 0);
  Result<wal::LogReadResult> log = wal::ReadLogFile(path);
  ODE_ASSERT_OK(log.status());
  if (!log->records.empty()) {
    FILE* f = fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(fseek(f, static_cast<long>(log->valid_bytes) - 5, SEEK_SET), 0);
    int c = fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(fseek(f, -1, SEEK_CUR), 0);
    fputc(c ^ 0x10, f);
    fclose(f);
  }
  RecoverAndVerify(dir.path(), /*shards=*/1);
}

}  // namespace
}  // namespace ode
