#include "compile/alphabet.h"

#include <gtest/gtest.h>

#include "mask/mask_eval.h"
#include "test_util.h"

namespace ode {
namespace {

using testing_util::ParseOrDie;

/// Mask evaluator binding the slot's positional parameter names to the
/// posted event's arguments (no object state involved).
Alphabet::MaskEvalFn ArgEval() {
  return [](const MaskSlot& slot, const PostedEvent& event) -> Result<bool> {
    SimpleMaskEnv env;
    for (size_t i = 0; i < slot.params.size() && i < event.args.size(); ++i) {
      env.Bind(slot.params[i].name, event.args[i].value);
    }
    for (const EventArg& a : event.args) env.Bind(a.name, a.value);
    return EvalMaskBool(*slot.mask, env);
  };
}

TEST(AlphabetTest, MaskFreeAtomsGetOneSymbolEach) {
  EventExprPtr e = ParseOrDie("after f | before g");
  Alphabet a = Alphabet::Build(*e).value();
  // f-group, g-group, OTHER.
  EXPECT_EQ(a.size(), 3u);
}

TEST(AlphabetTest, SameAtomTwiceSharesGroup) {
  EventExprPtr e = ParseOrDie("relative(after f, after f)");
  Alphabet a = Alphabet::Build(*e).value();
  EXPECT_EQ(a.size(), 2u);  // f + OTHER.
}

TEST(AlphabetTest, MaskedAtomSplitsGroupInTwo) {
  // One mask on one basic event → micro-symbols {mask-true, mask-false}.
  EventExprPtr e = ParseOrDie("after w(i, q) && q > 100");
  Alphabet a = Alphabet::Build(*e).value();
  EXPECT_EQ(a.size(), 3u);  // 2 micro-symbols + OTHER.
}

// The §5 example: two masks a>0 and b>0 on the same basic event expand into
// 2^2 disjoint Boolean combinations.
TEST(AlphabetTest, Section5DisjointnessRewrite) {
  EventExprPtr e = ParseOrDie(
      "sequence(before log(a, b) && a > 0, before log(a, b) && b > 0)");
  Alphabet a = Alphabet::Build(*e).value();
  EXPECT_EQ(a.size(), 5u);  // 4 combinations + OTHER.

  // Classification picks the combination matching the actual arguments.
  PostedEvent both = MakePostedMethod(EventQualifier::kBefore, "log",
                                      {{"a", Value(1)}, {"b", Value(1)}});
  PostedEvent only_a = MakePostedMethod(EventQualifier::kBefore, "log",
                                        {{"a", Value(1)}, {"b", Value(0)}});
  PostedEvent only_b = MakePostedMethod(EventQualifier::kBefore, "log",
                                        {{"a", Value(0)}, {"b", Value(1)}});
  PostedEvent neither = MakePostedMethod(EventQualifier::kBefore, "log",
                                         {{"a", Value(0)}, {"b", Value(0)}});
  SymbolId s_both = a.Classify(both, ArgEval()).value();
  SymbolId s_a = a.Classify(only_a, ArgEval()).value();
  SymbolId s_b = a.Classify(only_b, ArgEval()).value();
  SymbolId s_n = a.Classify(neither, ArgEval()).value();
  // All four distinct — the §5 disjointness property.
  EXPECT_NE(s_both, s_a);
  EXPECT_NE(s_both, s_b);
  EXPECT_NE(s_both, s_n);
  EXPECT_NE(s_a, s_b);
  EXPECT_NE(s_a, s_n);
  EXPECT_NE(s_b, s_n);

  // The atom masked with a>0 denotes exactly the combinations with bit
  // a>0 set.
  std::vector<const EventExpr*> atoms;
  e->CollectAtoms(&atoms);
  SymbolSet a_set = a.SymbolsFor(*atoms[0]).value();
  EXPECT_TRUE(a_set.Contains(s_both));
  EXPECT_TRUE(a_set.Contains(s_a));
  EXPECT_FALSE(a_set.Contains(s_b));
  EXPECT_FALSE(a_set.Contains(s_n));
}

TEST(AlphabetTest, UnreferencedEventsClassifyAsOther) {
  EventExprPtr e = ParseOrDie("after f");
  Alphabet a = Alphabet::Build(*e).value();
  PostedEvent g = MakePostedMethod(EventQualifier::kAfter, "g");
  EXPECT_EQ(a.Classify(g, ArgEval()).value(), a.other_symbol());
  PostedEvent before_f = MakePostedMethod(EventQualifier::kBefore, "f");
  EXPECT_EQ(a.Classify(before_f, ArgEval()).value(), a.other_symbol());
}

TEST(AlphabetTest, MixedSignatureOverlapRejected) {
  // `after w` and `after w(Item i, int q)` overlap: a 2-arg posting would
  // match both groups.
  EventExprPtr e = ParseOrDie("after w | after w(Item i, int q)");
  EXPECT_EQ(Alphabet::Build(*e).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(AlphabetTest, DistinctAritiesCoexist) {
  EventExprPtr e =
      ParseOrDie("after w(Item i) | after w(Item i, int q)");
  Alphabet a = Alphabet::Build(*e).value();
  EXPECT_EQ(a.size(), 3u);
  PostedEvent one = MakePostedMethod(EventQualifier::kAfter, "w",
                                     {{"i", Value(1)}});
  PostedEvent two = MakePostedMethod(EventQualifier::kAfter, "w",
                                     {{"i", Value(1)}, {"q", Value(2)}});
  EXPECT_NE(a.Classify(one, ArgEval()).value(),
            a.Classify(two, ArgEval()).value());
}

TEST(AlphabetTest, MaskCapEnforced) {
  // 3 masks with a cap of 2.
  EventExprPtr e = ParseOrDie(
      "after f(a) && a > 1 | after f(a) && a > 2 | after f(a) && a > 3");
  Alphabet::Options opts;
  opts.max_masks_per_group = 2;
  EXPECT_EQ(Alphabet::Build(*e, opts).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(AlphabetTest, PositionalParamRenaming) {
  // The same mask text under different formal names is a different slot.
  EventExprPtr e = ParseOrDie(
      "after f(x, y) && x > 0 | after f(a, b) && a > 0");
  Alphabet a = Alphabet::Build(*e).value();
  // Same predicate on the same positional argument... but keyed by
  // (mask text, param names): two slots → 4 combos + OTHER.
  EXPECT_EQ(a.size(), 5u);
}

TEST(AlphabetTest, TxnMarkersIncludedOnRequest) {
  EventExprPtr e = ParseOrDie("after f");
  Alphabet::Options opts;
  opts.include_txn_markers = true;
  Alphabet a = Alphabet::Build(*e, opts).value();
  EXPECT_EQ(a.size(), 5u);  // f, tbegin, tcommit, tabort, OTHER.
  TxnMarkerSymbols markers = a.txn_markers();
  EXPECT_EQ(markers.tbegin.Count(), 1u);
  EXPECT_EQ(markers.tcommit.Count(), 1u);
  EXPECT_EQ(markers.tabort.Count(), 1u);
  EXPECT_TRUE(markers.tbegin.Intersect(markers.tcommit).Empty());
}

TEST(AlphabetTest, TimeEventsListed) {
  EventExprPtr e = ParseOrDie("relative(at time(HR=9), at time(HR=17))");
  Alphabet a = Alphabet::Build(*e).value();
  EXPECT_EQ(a.TimeEvents().size(), 2u);
}

TEST(AlphabetTest, SymbolNamesHumanReadable) {
  EventExprPtr e = ParseOrDie("after w(i, q) && q > 100");
  Alphabet a = Alphabet::Build(*e).value();
  std::vector<std::string> names = a.SymbolNames();
  ASSERT_EQ(names.size(), a.size());
  EXPECT_EQ(names.back(), "<other>");
  bool found_masked = false;
  for (const std::string& n : names) {
    if (n.find("q > 100") != std::string::npos) found_masked = true;
  }
  EXPECT_TRUE(found_masked);
}

}  // namespace
}  // namespace ode
