// Experiment E10: the §3.5 process-control example — class vessel with
//   #define pDrop (pressure < low_limit)
//   #define valveOpen relative(after motorStart, after motorStop)
//   T(): relative(pDrop, valveOpen) ==> checkPressure
#include <gtest/gtest.h>

#include "ode/database.h"
#include "test_util.h"

namespace ode {
namespace {

ClassDef VesselClass() {
  ClassDef def("vessel");
  def.AddAttr("pressure", Value(100.0));
  def.AddAttr("low_limit", Value(50.0));
  def.AddAttr("checks", Value(0));
  def.AddMethod(MethodDef{
      "setPressure",
      {{"float", "p"}},
      MethodKind::kUpdate,
      [](MethodContext* ctx) -> Status {
        ODE_ASSIGN_OR_RETURN(Value p, ctx->Arg("p"));
        return ctx->Set("pressure", p);
      }});
  def.AddMethod(MethodDef{"motorStart", {}, MethodKind::kUpdate, nullptr});
  def.AddMethod(MethodDef{"motorStop", {}, MethodKind::kUpdate, nullptr});
  def.AddTrigger(
      "T(): relative((pressure < low_limit), "
      "relative(after motorStart, after motorStop)) ==> checkPressure",
      HistoryView::kFull, /*auto_activate=*/true);
  return def;
}

struct Vessel {
  Database db;
  Oid vessel;

  Vessel() {
    EXPECT_TRUE(db.RegisterAction("checkPressure",
                                  [](const ActionContext& ctx) -> Status {
                                    Result<Value> v =
                                        ctx.db->PeekAttr(ctx.self, "checks");
                                    if (!v.ok()) return v.status();
                                    Result<Value> next = v->Add(Value(1));
                                    if (!next.ok()) return next.status();
                                    return ctx.db->SetAttr(ctx.txn, ctx.self,
                                                           "checks", *next);
                                  })
                    .ok());
    EXPECT_TRUE(db.RegisterClass(VesselClass()).status().ok());
    TxnId t = db.Begin().value();
    vessel = db.New(t, "vessel").value();
    EXPECT_TRUE(db.Commit(t).ok());
  }

  void Call(const char* method, std::vector<Value> args = {}) {
    TxnId t = db.Begin().value();
    EXPECT_TRUE(db.Call(t, vessel, method, std::move(args)).status().ok());
    EXPECT_TRUE(db.Commit(t).ok());
  }
  int64_t Checks() {
    return db.PeekAttr(vessel, "checks").value().AsInt().value();
  }
};

TEST(VesselTest, PressureDropThenValveOpenFires) {
  Vessel v;
  v.Call("setPressure", {Value(30.0)});  // pDrop occurs.
  EXPECT_EQ(v.Checks(), 0);
  v.Call("motorStart");
  EXPECT_EQ(v.Checks(), 0);  // Valve not fully open yet.
  v.Call("motorStop");       // valveOpen completes → composite fires.
  EXPECT_EQ(v.Checks(), 1);
}

TEST(VesselTest, ValveOpenWithoutDropDoesNotFire) {
  Vessel v;
  v.Call("motorStart");
  v.Call("motorStop");
  EXPECT_EQ(v.Checks(), 0);
}

TEST(VesselTest, OrderingMatters) {
  // motorStart before the pressure drop: the valveOpen sequence must occur
  // *relative to* (i.e. entirely after) the drop.
  Vessel v;
  v.Call("motorStart");
  v.Call("setPressure", {Value(30.0)});
  v.Call("motorStop");
  EXPECT_EQ(v.Checks(), 0);
  // A full start/stop after the drop fires.
  v.Call("motorStart");
  v.Call("motorStop");
  EXPECT_EQ(v.Checks(), 1);
}

TEST(VesselTest, OrdinaryTriggerFiresOnce) {
  Vessel v;
  v.Call("setPressure", {Value(30.0)});
  v.Call("motorStart");
  v.Call("motorStop");
  EXPECT_EQ(v.Checks(), 1);
  // T is not perpetual: a second episode does not fire until reactivation.
  v.Call("motorStart");
  v.Call("motorStop");
  EXPECT_EQ(v.Checks(), 1);
  TxnId t = v.db.Begin().value();
  ODE_ASSERT_OK(v.db.ActivateTrigger(t, v.vessel, "T"));
  ODE_ASSERT_OK(v.db.Commit(t));
  v.Call("motorStart");  // Drop already happened (pressure still low).
  v.Call("motorStop");
  EXPECT_EQ(v.Checks(), 2);
}

TEST(VesselTest, PressureRecoveryStillCountsPastDrop) {
  // relative(pDrop, valveOpen) anchors at the drop *event*; the predicate
  // is not re-checked later (it is a state event, not a guard).
  Vessel v;
  v.Call("setPressure", {Value(30.0)});   // Drop.
  v.Call("setPressure", {Value(90.0)});   // Recovers.
  v.Call("motorStart");
  v.Call("motorStop");
  EXPECT_EQ(v.Checks(), 1);
}

}  // namespace
}  // namespace ode
