// ode-waldump: inspect (and repair) a durable event log directory.
//
// Prints the checkpoint summary and every WAL record in a directory
// written by IngestRuntime's durability subsystem (docs/DURABILITY.md).
// The dump is the operator's view of exactly what recovery would do:
// which records a checkpoint already covers, which would replay, and
// where a torn tail or corrupt record cuts a log short.
//
// Exit codes: 0 = directory is clean; 1 = damage found (torn tail, a
// corrupt/unreadable checkpoint, or a per-lane seqorder watermark gap) —
// everything readable is still printed; 2 = usage or I/O error.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "ode/database.h"
#include "ode/snapshot_codec.h"
#include "runtime/ingest_runtime.h"
#include "seq/order_log.h"
#include "wal/checkpoint.h"
#include "wal/log_reader.h"
#include "wal/log_writer.h"

namespace {

constexpr char kUsage[] =
    "usage: ode-waldump [options] <wal-dir>\n"
    "\n"
    "Dumps the checkpoint, per-shard WAL records, and sequencer order\n"
    "log (seqorder.log) of a durable event log directory\n"
    "(docs/DURABILITY.md, docs/SEQUENCER.md), distinguishing records a\n"
    "checkpoint already covers from records recovery would replay. The\n"
    "order log is also checked for per-lane watermark gaps (lane_seq must\n"
    "be contiguous within a lane after its first record): a gap means\n"
    "sequenced events were lost and counts as damage.\n"
    "\n"
    "options:\n"
    "  --summary       per-file totals only, no per-record lines\n"
    "  --repair        truncate torn tails in place (fsynced), the same\n"
    "                  cut recovery would make in memory\n"
    "  --gen-fixture   populate <wal-dir> with a small demo log +\n"
    "                  checkpoint (for smoke tests), then dump it\n"
    "  -h, --help      show this help\n"
    "\n"
    "exit status: 0 clean, 1 damage found, 2 usage/IO error\n";

void PrintRecord(const ode::wal::WalRecord& r, bool covered) {
  std::printf("    lsn=%" PRIu64 " oid=%" PRIu64 " method=%s argc=%zu", r.lsn,
              r.oid.id, r.method.c_str(), r.args.size());
  for (const ode::Value& v : r.args) {
    std::printf(" %s", ode::EncodeSnapshotValue(v).c_str());
  }
  if (!r.producer_id.empty()) {
    std::printf(" producer=%s seq=%" PRIu64, r.producer_id.c_str(),
                r.producer_seq);
  }
  std::printf("%s\n", covered ? " [covered]" : "");
}

/// Writes a small but representative fixture: a demo runtime posts through
/// the durable path, checkpoints mid-stream (so the checkpoint carries
/// state and covered lsns), then posts more (so live records remain for
/// replay), including identified posts (so watermarks are present).
int GenFixture(const std::string& dir) {
  ode::Database db;
  ode::ClassDef def("cell");
  def.AddAttr("v", ode::Value(0));
  def.AddMethod(ode::MethodDef{
      "add",
      {{"int", "d"}},
      ode::MethodKind::kUpdate,
      [](ode::MethodContext* ctx) -> ode::Status {
        ODE_ASSIGN_OR_RETURN(ode::Value v, ctx->Get("v"));
        ODE_ASSIGN_OR_RETURN(ode::Value d, ctx->Arg("d"));
        ODE_ASSIGN_OR_RETURN(ode::Value next, v.Add(d));
        return ctx->Set("v", next);
      }});
  // One class-scope trigger so the fixture also exercises the sequencer
  // order log (the posts after the checkpoint leave seqorder records).
  def.AddTrigger("CT(): perpetual every 2 (after add) ==> count");
  ode::Status reg = db.RegisterAction(
      "count", [](const ode::ActionContext&) { return ode::Status::OK(); });
  if (!reg.ok()) {
    std::fprintf(stderr, "ode-waldump: %s\n", reg.ToString().c_str());
    return 2;
  }
  ode::Result<ode::ClassId> cls = db.RegisterClass(std::move(def));
  if (!cls.ok()) {
    std::fprintf(stderr, "ode-waldump: %s\n", cls.status().ToString().c_str());
    return 2;
  }
  ode::Result<ode::TxnId> txn = db.Begin();
  if (!txn.ok()) {
    std::fprintf(stderr, "ode-waldump: %s\n", txn.status().ToString().c_str());
    return 2;
  }
  ode::Oid oid;
  ode::Result<ode::Oid> created = db.New(*txn, "cell");
  if (!created.ok() || !db.Commit(*txn).ok()) {
    std::fprintf(stderr, "ode-waldump: fixture schema setup failed\n");
    return 2;
  }
  oid = *created;
  ode::Status act = db.ActivateClassTrigger("cell", "CT");
  if (!act.ok()) {
    std::fprintf(stderr, "ode-waldump: %s\n", act.ToString().c_str());
    return 2;
  }

  ode::runtime::IngestOptions options;
  options.num_shards = 2;
  options.durability.dir = dir;
  options.durability.fsync = ode::wal::FsyncPolicy::kAlways;
  ode::runtime::IngestRuntime rt(&db, options);
  ode::Status s = rt.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "ode-waldump: %s\n", s.ToString().c_str());
    return 2;
  }
  for (int i = 1; i <= 4; ++i) {
    s = rt.Post(oid, "add", {ode::Value(1)}, nullptr, "fixture-client",
                static_cast<uint64_t>(i));
    if (!s.ok()) break;
  }
  if (s.ok()) s = rt.Drain();
  if (s.ok()) s = rt.Checkpoint();
  for (int i = 5; s.ok() && i <= 8; ++i) {
    s = rt.Post(oid, "add", {ode::Value(1)}, nullptr, "fixture-client",
                static_cast<uint64_t>(i));
  }
  if (s.ok()) s = rt.Drain();
  ode::Status stop = rt.Stop();
  if (s.ok()) s = stop;
  if (!s.ok()) {
    std::fprintf(stderr, "ode-waldump: fixture: %s\n", s.ToString().c_str());
    return 2;
  }
  std::printf("ode-waldump: wrote fixture under %s\n\n", dir.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool summary_only = false;
  bool repair = false;
  bool gen_fixture = false;
  std::string dir;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "-h") == 0 || std::strcmp(arg, "--help") == 0) {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (std::strcmp(arg, "--summary") == 0) {
      summary_only = true;
    } else if (std::strcmp(arg, "--repair") == 0) {
      repair = true;
    } else if (std::strcmp(arg, "--gen-fixture") == 0) {
      gen_fixture = true;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "ode-waldump: unknown option '%s'\n%s", arg,
                   kUsage);
      return 2;
    } else if (dir.empty()) {
      dir = arg;
    } else {
      std::fprintf(stderr, "ode-waldump: more than one directory given\n%s",
                   kUsage);
      return 2;
    }
  }
  if (dir.empty()) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  if (gen_fixture) {
    int rc = GenFixture(dir);
    if (rc != 0) return rc;
  }

  bool damage = false;

  // Checkpoint first: its covered lsns decide how records are labeled.
  std::map<size_t, uint64_t> covered;
  ode::Result<ode::wal::CheckpointData> ckpt =
      ode::wal::ReadCheckpointFile(dir);
  if (ckpt.ok()) {
    covered = ckpt->covered_lsn;
    size_t inflight = 0;
    for (const auto& q : ckpt->inflight) inflight += q.size();
    std::printf("checkpoint: shards=%zu snapshot_bytes=%zu inflight=%zu\n",
                ckpt->num_shards, ckpt->snapshot_body.size(), inflight);
    for (const auto& entry : ckpt->covered_lsn) {
      std::printf("  covered: shard-%zu.wal through lsn %" PRIu64 "\n",
                  entry.first, entry.second);
    }
    for (const auto& entry : ckpt->applied) {
      std::printf("  watermark: %s applied %" PRIu64 " seq(s): %s\n",
                  entry.first.c_str(), entry.second.count(),
                  entry.second.ToString().c_str());
    }
    if (!summary_only) {
      for (size_t i = 0; i < ckpt->inflight.size(); ++i) {
        for (const ode::wal::WalRecord& r : ckpt->inflight[i]) {
          std::printf("  inflight shard %zu:\n", i);
          PrintRecord(r, /*covered=*/false);
        }
      }
    }
  } else if (ckpt.status().code() == ode::StatusCode::kNotFound) {
    std::printf("checkpoint: none\n");
  } else {
    std::printf("checkpoint: CORRUPT — %s\n",
                ckpt.status().message().c_str());
    damage = true;
  }

  std::vector<size_t> indices = ode::wal::ListShardLogs(dir);
  if (indices.empty() && !ckpt.ok() &&
      ckpt.status().code() == ode::StatusCode::kNotFound) {
    std::fprintf(stderr, "ode-waldump: no checkpoint or logs under %s\n",
                 dir.c_str());
    return 2;
  }
  for (size_t index : indices) {
    const std::string path = ode::wal::ShardLogPath(dir, index);
    ode::Result<ode::wal::LogReadResult> log = ode::wal::ReadLogFile(path);
    if (!log.ok()) {
      std::fprintf(stderr, "ode-waldump: %s: %s\n", path.c_str(),
                   log.status().ToString().c_str());
      return 2;
    }
    const uint64_t cover =
        covered.count(index) != 0 ? covered.at(index) : 0;
    size_t replay = 0;
    for (const ode::wal::WalRecord& r : log->records) {
      if (r.lsn > cover) ++replay;
    }
    std::printf(
        "shard-%zu.wal: records=%zu replay=%zu bytes=%" PRIu64
        " last_lsn=%" PRIu64 "%s\n",
        index, log->records.size(), replay, log->total_bytes,
        log->last_lsn(), log->torn ? " TORN" : "");
    if (!summary_only) {
      for (const ode::wal::WalRecord& r : log->records) {
        PrintRecord(r, r.lsn <= cover);
      }
    }
    if (log->torn) {
      damage = true;
      std::printf("  torn tail: %" PRIu64 " byte(s) after lsn %" PRIu64
                  " — %s\n",
                  log->torn_bytes(), log->last_lsn(),
                  log->torn_error.c_str());
      if (repair) {
        ode::Status ts =
            ode::wal::TruncateLogFile(path, log->valid_bytes);
        if (!ts.ok()) {
          std::fprintf(stderr, "ode-waldump: repair %s: %s\n", path.c_str(),
                       ts.ToString().c_str());
          return 2;
        }
        std::printf("  repaired: truncated to %" PRIu64 " byte(s)\n",
                    log->valid_bytes);
      }
    }
  }

  // Sequencer order log: the merged class-scope order the sequencer
  // already applied (docs/SEQUENCER.md). Absent when the run had no
  // class-scope activity (the file is created lazily) or predates the
  // sequencer.
  const std::string seqpath = ode::seq::OrderLogPath(dir);
  ode::Result<ode::seq::OrderLogReadResult> seqlog =
      ode::seq::ReadOrderLog(seqpath);
  if (!seqlog.ok()) {
    std::fprintf(stderr, "ode-waldump: %s: %s\n", seqpath.c_str(),
                 seqlog.status().ToString().c_str());
    return 2;
  }
  if (!seqlog->records.empty() || seqlog->torn || seqlog->valid_bytes > 0) {
    std::map<ode::ClassId, uint64_t> per_class;
    uint64_t max_lane = 0;
    // Per-lane watermark check: within one lane the sequencer assigns
    // lane_seq contiguously, so after the first record seen for a lane
    // (the starting watermark is arbitrary — a checkpoint may have
    // truncated the prefix) every record must follow its predecessor by
    // exactly one. A gap means order records were lost or reordered:
    // replaying this log would silently skip sequenced events.
    struct LaneGap {
      uint32_t lane;
      uint64_t prev, got;
    };
    std::map<uint32_t, uint64_t> lane_watermark;
    std::vector<LaneGap> gaps;
    for (const ode::seq::SeqEvent& r : seqlog->records) {
      ++per_class[r.class_id];
      if (r.lane > max_lane) max_lane = r.lane;
      auto it = lane_watermark.find(r.lane);
      if (it == lane_watermark.end()) {
        lane_watermark.emplace(r.lane, r.lane_seq);
      } else {
        if (r.lane_seq != it->second + 1) {
          gaps.push_back(LaneGap{r.lane, it->second, r.lane_seq});
        }
        it->second = r.lane_seq;
      }
    }
    std::printf("seqorder.log: records=%zu lanes<=%" PRIu64
                " bytes=%" PRIu64 "%s\n",
                seqlog->records.size(), max_lane + 1, seqlog->valid_bytes,
                seqlog->torn ? " TORN" : "");
    for (const auto& entry : per_class) {
      std::printf("  class %u: sequenced=%" PRIu64 "\n", entry.first,
                  entry.second);
    }
    for (const LaneGap& gap : gaps) {
      damage = true;
      std::printf("  lane %u: WATERMARK GAP — lane_seq %" PRIu64
                  " follows %" PRIu64 " (expected %" PRIu64
                  "); sequenced events were lost or reordered\n",
                  gap.lane, gap.got, gap.prev, gap.prev + 1);
    }
    if (!summary_only) {
      for (const ode::seq::SeqEvent& r : seqlog->records) {
        std::printf("    lane=%u seq=%" PRIu64 " class=%u oid=%" PRIu64
                    " method=%s syms=%zu\n",
                    r.lane, r.lane_seq, r.class_id, r.oid.id,
                    r.event.method_name.c_str(), r.syms.size());
      }
    }
    if (seqlog->torn) {
      damage = true;
      std::printf("  torn tail after %zu record(s) — %s\n",
                  seqlog->records.size(), seqlog->torn_error.c_str());
      if (repair) {
        ode::Status ts =
            ode::wal::TruncateLogFile(seqpath, seqlog->valid_bytes);
        if (!ts.ok()) {
          std::fprintf(stderr, "ode-waldump: repair %s: %s\n",
                       seqpath.c_str(), ts.ToString().c_str());
          return 2;
        }
        std::printf("  repaired: truncated to %" PRIu64 " byte(s)\n",
                    seqlog->valid_bytes);
      }
    }
  }
  return damage ? 1 : 0;
}
