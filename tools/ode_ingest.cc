// ode-ingest: command-line client for the ingest wire protocol.
//
// Talks to an ode-ingestd (or any IngestServer) over TCP:
//
//   ode-ingest ping                          round-trip liveness probe
//   ode-ingest metrics                       print the server's snapshot
//   ode-ingest post <oid> <method> [arg...]  one invocation + drain
//   ode-ingest replay <file>                 replay an event file + drain
//
// Event files are one event per line: `<oid> <method> [arg...]`, with
// blank lines and '#' comments ignored. Arguments parse as int, then
// float, then `true`/`false`, then string.
//
// Exit status: 0 on success, 1 on a server-reported failure, 2 on
// usage / I/O / connection failure.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "net/client.h"

namespace {

constexpr char kUsage[] =
    "usage: ode-ingest [options] <command> [args]\n"
    "\n"
    "commands:\n"
    "  ping                          round-trip liveness probe\n"
    "  metrics                       print the server metrics snapshot\n"
    "  drain                         barrier: wait until all posted events\n"
    "                                are processed\n"
    "  post <oid> <method> [arg...]  post one invocation, then drain\n"
    "  replay <file>                 post every event in the file, then\n"
    "                                drain and print client stats\n"
    "\n"
    "options:\n"
    "  --host=ADDR       server address (default 127.0.0.1)\n"
    "  --port=N          server port (default 7311)\n"
    "  --timeout-ms=N    receive timeout for replies (default 30000)\n"
    "  -h, --help        show this help\n";

ode::Value ParseArg(const std::string& text) {
  if (text == "true") return ode::Value(true);
  if (text == "false") return ode::Value(false);
  char* end = nullptr;
  long long i = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() && *end == '\0') {
    return ode::Value(static_cast<int64_t>(i));
  }
  double d = std::strtod(text.c_str(), &end);
  if (end != text.c_str() && *end == '\0') return ode::Value(d);
  return ode::Value(text);
}

bool ParseOid(const std::string& text, ode::Oid* out) {
  char* end = nullptr;
  unsigned long long id = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || id == 0) return false;
  out->id = id;
  return true;
}

int Fail(const ode::Status& s) {
  std::fprintf(stderr, "ode-ingest: %s\n", s.ToString().c_str());
  return s.code() == ode::StatusCode::kUnavailable ? 2 : 1;
}

int DoReplay(ode::net::IngestClient* client, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "ode-ingest: cannot open '%s'\n", path.c_str());
    return 2;
  }
  std::string line;
  size_t lineno = 0;
  uint64_t posted = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream fields(line);
    std::string oid_text;
    if (!(fields >> oid_text) || oid_text[0] == '#') continue;
    ode::Oid oid;
    std::string method;
    if (!ParseOid(oid_text, &oid) || !(fields >> method)) {
      std::fprintf(stderr, "ode-ingest: %s:%zu: expected '<oid> <method> "
                   "[arg...]'\n", path.c_str(), lineno);
      return 2;
    }
    std::vector<ode::Value> args;
    std::string arg;
    while (fields >> arg) args.push_back(ParseArg(arg));
    ode::Status s = client->Post(oid, method, args);
    if (!s.ok()) return Fail(s);
    ++posted;
  }
  ode::Status s = client->Drain();
  if (!s.ok()) return Fail(s);
  const ode::net::IngestClient::Stats& st = client->stats();
  std::printf(
      "ode-ingest: replayed %llu events (acked %llu, rejected %llu, "
      "resent %llu, errors %llu)\n",
      static_cast<unsigned long long>(posted),
      static_cast<unsigned long long>(st.acked),
      static_cast<unsigned long long>(st.rejected),
      static_cast<unsigned long long>(st.resent),
      static_cast<unsigned long long>(st.errors));
  return st.errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  ode::net::ClientOptions options;
  options.port = 7311;
  options.recv_timeout_ms = 30000;
  std::vector<std::string> args;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "-h") == 0 || std::strcmp(arg, "--help") == 0) {
      std::fputs(kUsage, stdout);
      return 0;
    }
    if (std::strncmp(arg, "--host=", 7) == 0) {
      options.host = arg + 7;
    } else if (std::strncmp(arg, "--port=", 7) == 0) {
      options.port = static_cast<uint16_t>(std::atoi(arg + 7));
    } else if (std::strncmp(arg, "--timeout-ms=", 13) == 0) {
      options.recv_timeout_ms = std::atoi(arg + 13);
    } else if (arg[0] == '-' && arg[1] != '\0') {
      std::fprintf(stderr, "ode-ingest: unknown option '%s'\n%s", arg,
                   kUsage);
      return 2;
    } else {
      args.push_back(arg);
    }
  }
  if (args.empty()) {
    std::fputs(kUsage, stderr);
    return 2;
  }

  ode::net::IngestClient client(options);
  ode::Status s = client.Connect();
  if (!s.ok()) return Fail(s);

  const std::string& cmd = args[0];
  if (cmd == "ping") {
    s = client.Ping();
    if (!s.ok()) return Fail(s);
    std::printf("ode-ingest: pong from %s:%u\n", options.host.c_str(),
                static_cast<unsigned>(options.port));
    return 0;
  }
  if (cmd == "metrics") {
    ode::Result<ode::net::RemoteMetrics> m = client.Metrics();
    if (!m.ok()) return Fail(m.status());
    std::printf("%s", m->ToString().c_str());
    return 0;
  }
  if (cmd == "drain") {
    s = client.Drain();
    if (!s.ok()) return Fail(s);
    std::printf("ode-ingest: drained\n");
    return 0;
  }
  if (cmd == "post") {
    ode::Oid oid;
    if (args.size() < 3 || !ParseOid(args[1], &oid)) {
      std::fputs(kUsage, stderr);
      return 2;
    }
    std::vector<ode::Value> call_args;
    for (size_t i = 3; i < args.size(); ++i) {
      call_args.push_back(ParseArg(args[i]));
    }
    s = client.Post(oid, args[2], call_args);
    if (!s.ok()) return Fail(s);
    s = client.Drain();
    if (!s.ok()) return Fail(s);
    std::printf("ode-ingest: posted %s to oid %s\n", args[2].c_str(),
                args[1].c_str());
    return 0;
  }
  if (cmd == "replay") {
    if (args.size() != 2) {
      std::fputs(kUsage, stderr);
      return 2;
    }
    return DoReplay(&client, args[1]);
  }
  std::fprintf(stderr, "ode-ingest: unknown command '%s'\n%s", cmd.c_str(),
               kUsage);
  return 2;
}
