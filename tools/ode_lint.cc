// ode-lint: static analyzer for trigger specification files.
//
// Reads one or more specification files (blank-line-separated trigger
// declarations in the repo's DSL), runs the three analysis layers
// (AST/mask checks, automaton checks on the compiled DFA, cost
// estimation), and renders every finding caret-style against the source.
//
// Exit status: 0 when no file produced an error-severity diagnostic,
// 1 when at least one did, 2 on usage / I/O failure.
//
// See docs/ANALYSIS.md for the diagnostic catalogue.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyzer.h"
#include "common/strutil.h"

namespace {

constexpr char kUsage[] =
    "usage: ode-lint [options] <spec-file>...\n"
    "\n"
    "Statically analyzes trigger specification files: mask\n"
    "satisfiability, automaton emptiness/universality/liveness,\n"
    "pairwise duplicate and subsumption detection, and cost reports.\n"
    "\n"
    "options:\n"
    "  --no-automaton        skip layer-2 automaton checks\n"
    "  --no-pairwise         skip pairwise equivalence/subsumption\n"
    "  --cost                print a per-trigger cost report\n"
    "  --budget-states=N     warn (C001) when a DFA exceeds N states\n"
    "  --budget-bytes=N      warn (C001) when tables exceed N bytes\n"
    "  -h, --help            show this help\n";

bool ParseSizeFlag(const char* arg, const char* prefix, size_t* out) {
  size_t len = std::strlen(prefix);
  if (std::strncmp(arg, prefix, len) != 0) return false;
  char* end = nullptr;
  unsigned long long v = std::strtoull(arg + len, &end, 10);
  if (end == arg + len || *end != '\0') {
    std::fprintf(stderr, "ode-lint: bad value in '%s'\n", arg);
    std::exit(2);
  }
  *out = static_cast<size_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ode::AnalyzeOptions options;
  bool print_cost = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "-h") == 0 || std::strcmp(arg, "--help") == 0) {
      std::fputs(kUsage, stdout);
      return 0;
    }
    if (std::strcmp(arg, "--no-automaton") == 0) {
      options.automaton_checks = false;
    } else if (std::strcmp(arg, "--no-pairwise") == 0) {
      options.pairwise_checks = false;
    } else if (std::strcmp(arg, "--cost") == 0) {
      print_cost = true;
    } else if (ParseSizeFlag(arg, "--budget-states=",
                             &options.budget_dfa_states) ||
               ParseSizeFlag(arg, "--budget-bytes=",
                             &options.budget_table_bytes)) {
      // Parsed into options.
    } else if (arg[0] == '-' && arg[1] != '\0') {
      std::fprintf(stderr, "ode-lint: unknown option '%s'\n%s", arg, kUsage);
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fputs(kUsage, stderr);
    return 2;
  }

  size_t errors = 0;
  size_t warnings = 0;
  size_t notes = 0;
  bool io_failure = false;
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "ode-lint: cannot open '%s'\n", file.c_str());
      io_failure = true;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string source = buf.str();

    ode::AnalysisReport report = ode::AnalyzeSpecSource(source, options);
    std::vector<ode::Diagnostic> diags = report.AllDiagnostics();
    for (const ode::Diagnostic& d : diags) {
      switch (d.severity) {
        case ode::Severity::kError: ++errors; break;
        case ode::Severity::kWarning: ++warnings; break;
        case ode::Severity::kNote: ++notes; break;
      }
    }
    std::string rendered = ode::RenderDiagnostics(diags, source, file);
    if (!rendered.empty()) std::fputs(rendered.c_str(), stdout);

    if (print_cost) {
      for (const ode::TriggerAnalysis& t : report.triggers) {
        if (!t.compiled) continue;
        std::printf("%s: cost: trigger '%s': %s\n", file.c_str(),
                    t.name.c_str(), t.cost.ToString().c_str());
      }
    }
  }

  std::printf("ode-lint: %zu file%s, %zu error%s, %zu warning%s, %zu note%s\n",
              files.size(), files.size() == 1 ? "" : "s", errors,
              errors == 1 ? "" : "s", warnings, warnings == 1 ? "" : "s",
              notes, notes == 1 ? "" : "s");
  if (io_failure) return 2;
  return errors > 0 ? 1 : 0;
}
