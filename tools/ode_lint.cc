// ode-lint: static analyzer for trigger specification files.
//
// Reads one or more specification files (blank-line-separated trigger
// declarations in the repo's DSL), runs the three analysis layers
// (AST/mask checks, automaton checks on the compiled DFA, cost
// estimation), the cross-trigger group planner, and renders every finding
// caret-style against the source. With --fix, mechanical rewrites that
// pass semantics verification (DFA equivalence + oracle agreement) are
// applied to the files in place.
//
// Exit status: 0 when no file produced an error-severity diagnostic,
// 1 when at least one did, 2 on usage / I/O failure.
//
// See docs/ANALYSIS.md for the diagnostic catalogue.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyzer.h"
#include "analyze/fix.h"
#include "common/strutil.h"
#include "lang/token.h"

namespace {

constexpr char kUsage[] =
    "usage: ode-lint [options] <spec-file>...\n"
    "\n"
    "Statically analyzes trigger specification files: mask\n"
    "satisfiability, automaton emptiness/universality/liveness,\n"
    "pairwise duplicate and subsumption detection, trigger-group\n"
    "suggestions, and cost reports.\n"
    "\n"
    "options:\n"
    "  --no-automaton        skip layer-2 automaton checks\n"
    "  --no-pairwise         skip pairwise equivalence/subsumption\n"
    "  --no-groups           skip trigger-group (G001) suggestions\n"
    "  --fix                 apply verified mechanical rewrites in place\n"
    "                        (drop always-true masks, collapse degenerate\n"
    "                        counts, prune 'empty' | operands); a rewrite\n"
    "                        failing semantics verification is suppressed\n"
    "  --fix=check           dry run: print a unified diff of the rewrites\n"
    "                        --fix would apply, write nothing, and exit 1\n"
    "                        when any fix is pending (CI gate); text\n"
    "                        format only\n"
    "  --cost                print a per-trigger cost report\n"
    "  --budget-states=N     warn (C001) when a DFA exceeds N states\n"
    "  --budget-bytes=N      warn (C001) when tables exceed N bytes\n"
    "  --witness=on|off      attach a concrete counterexample history to\n"
    "                        every automaton verdict (A001/A002/A003,\n"
    "                        A004/A005/A007, G001), validated against the\n"
    "                        §4 oracle before display (default on)\n"
    "  --effects=<file>      declared action effect signatures (one per\n"
    "                        line: `action: posts NAME[/arity] [on self|\n"
    "                        same-class|class NAME] | aborts | none |\n"
    "                        opaque`); enables whole-rulebase cascade /\n"
    "                        termination analysis over the triggering\n"
    "                        graph (T001-T004)\n"
    "  --max-chain=N         cap on effect-chain length per cascade edge\n"
    "                        (default 8)\n"
    "  --depth-limit=N       the runtime posting-depth limit to validate\n"
    "                        against the longest acyclic cascade (T004);\n"
    "                        0 (default) skips the check\n"
    "  --format=text|json    output format (default text); json emits one\n"
    "                        machine-readable document on stdout\n"
    "  -h, --help            show this help\n";

/// Escapes a string for inclusion in a JSON string literal.
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          out += ode::StrFormat("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

/// One analyzed file, retained until all inputs are processed so the JSON
/// document can be emitted in one piece.
struct FileResult {
  std::string path;
  std::string source;
  ode::AnalysisReport report;
  std::vector<ode::AppliedFix> fixes;
};

/// Emits the machine-readable report. Schema v5 (see docs/ANALYSIS.md):
///
/// {
///   "tool": "ode-lint", "schema_version": 5,
///   "solver": {"integer_aware": true, "gap_cuts": true,
///              "elimination": "fourier-motzkin"},
///   "files": [{
///     "path": ..., "diagnostics": [{
///       "id": ..., "severity": "error|warning|note", "message": ...,
///       "trigger": ..., "line": N, "column": N,      // 0,0 = no position
///       "end_line": N, "end_column": N,              // one past the span
///       "fix_hints": [...],                          // verified rewrites
///       "witness": [{                                // validated histories
///         "claim": ..., "columns": [...],
///         "steps": [{"event": ..., "note": ..., "fires": [bool, ...]}]
///       }]
///     }],
///     "triggers": [{"name": ..., "compiled": bool[, "cost": ...]}],
///     "groups": [{"members": [...], "separate": {...}, "combined": {...},
///                 "oracle_histories": N}],
///     "fixes": [{"trigger": ..., "code": ..., "description": ...,
///                "edits": [{"byte_start": N, "byte_end": N,   // disjoint,
///                           "replacement": ...}]}],           // sorted
///     "cascade": {                       // only when --effects was given
///       "nodes": [{"name": ..., "action": ..., "perpetual": bool,
///                  "immediate": bool, "opaque_action": bool}],
///       "edges": [{"from": N, "to": N, "via": ...,
///                  "kind": "posts|assumed", "fires": bool}],
///       "has_cycle": bool, "truncated": bool, "max_chain": N}
///   }],
///   "summary": {"files": N, "errors": N, "warnings": N, "notes": N,
///               "fixes_applied": N, "fixes_suppressed": N,
///               "witnesses": N, "witness_failures": N}
/// }
///
/// v5: per-fix flat byte_start/byte_end/replacement keys became the
/// "edits" array (one entry per disjoint span), and the optional per-file
/// "cascade" graph object was added.
void PrintJson(const std::vector<FileResult>& results, bool print_cost,
               size_t errors, size_t warnings, size_t notes,
               size_t fixes_applied, size_t fixes_suppressed,
               size_t witnesses, size_t witness_failures) {
  std::printf("{\n  \"tool\": \"ode-lint\",\n  \"schema_version\": 5,\n");
  std::printf(
      "  \"solver\": {\"integer_aware\": true, \"gap_cuts\": true, "
      "\"elimination\": \"fourier-motzkin\"},\n");
  std::printf("  \"files\": [");
  for (size_t fi = 0; fi < results.size(); ++fi) {
    const FileResult& fr = results[fi];
    std::printf("%s\n    {\n      \"path\": \"%s\",\n", fi == 0 ? "" : ",",
                JsonEscape(fr.path).c_str());
    std::printf("      \"diagnostics\": [");
    std::vector<ode::Diagnostic> diags = fr.report.AllDiagnostics();
    for (size_t di = 0; di < diags.size(); ++di) {
      const ode::Diagnostic& d = diags[di];
      int line = 0;
      int column = 0;
      int end_line = 0;
      int end_column = 0;
      if (!d.span.empty()) {
        ode::LineCol lc = ode::LineColAt(fr.source, d.span.begin);
        line = lc.line;
        column = lc.col;
        ode::LineCol end = ode::LineColAt(fr.source, d.span.end);
        end_line = end.line;
        end_column = end.col;
      }
      std::printf(
          "%s\n        {\"id\": \"%s\", \"severity\": \"%s\", "
          "\"message\": \"%s\", \"trigger\": \"%s\", "
          "\"line\": %d, \"column\": %d, "
          "\"end_line\": %d, \"end_column\": %d, \"fix_hints\": [",
          di == 0 ? "" : ",", JsonEscape(d.id).c_str(),
          std::string(ode::SeverityName(d.severity)).c_str(),
          JsonEscape(d.message).c_str(), JsonEscape(d.trigger).c_str(), line,
          column, end_line, end_column);
      for (size_t hi = 0; hi < d.fix_hints.size(); ++hi) {
        std::printf("%s\"%s\"", hi == 0 ? "" : ", ",
                    JsonEscape(d.fix_hints[hi]).c_str());
      }
      std::printf("], \"witness\": [");
      for (size_t wi = 0; wi < d.witness.size(); ++wi) {
        const ode::WitnessHistory& w = d.witness[wi];
        std::printf("%s\n          {\"claim\": \"%s\", \"columns\": [",
                    wi == 0 ? "" : ",", JsonEscape(w.claim).c_str());
        for (size_t ci = 0; ci < w.columns.size(); ++ci) {
          std::printf("%s\"%s\"", ci == 0 ? "" : ", ",
                      JsonEscape(w.columns[ci]).c_str());
        }
        std::printf("], \"steps\": [");
        for (size_t si = 0; si < w.steps.size(); ++si) {
          const ode::WitnessStep& step = w.steps[si];
          std::printf("%s\n            {\"event\": \"%s\", \"note\": \"%s\", "
                      "\"fires\": [",
                      si == 0 ? "" : ",", JsonEscape(step.event).c_str(),
                      JsonEscape(step.note).c_str());
          for (size_t ci = 0; ci < step.fires.size(); ++ci) {
            std::printf("%s%s", ci == 0 ? "" : ", ",
                        step.fires[ci] ? "true" : "false");
          }
          std::printf("]}");
        }
        std::printf("%s]}", w.steps.empty() ? "" : "\n          ");
      }
      std::printf("%s]}", d.witness.empty() ? "" : "\n        ");
    }
    std::printf("%s],\n", diags.empty() ? "" : "\n      ");
    std::printf("      \"triggers\": [");
    for (size_t ti = 0; ti < fr.report.triggers.size(); ++ti) {
      const ode::TriggerAnalysis& t = fr.report.triggers[ti];
      std::printf("%s\n        {\"name\": \"%s\", \"compiled\": %s",
                  ti == 0 ? "" : ",", JsonEscape(t.name).c_str(),
                  t.compiled ? "true" : "false");
      if (print_cost && t.compiled) {
        std::printf(", \"cost\": \"%s\"",
                    JsonEscape(t.cost.ToString()).c_str());
      }
      std::printf("}");
    }
    std::printf("%s],\n", fr.report.triggers.empty() ? "" : "\n      ");
    std::printf("      \"groups\": [");
    for (size_t gi = 0; gi < fr.report.groups.size(); ++gi) {
      const ode::TriggerGroupPlan& g = fr.report.groups[gi];
      std::printf("%s\n        {\"members\": [", gi == 0 ? "" : ",");
      for (size_t mi = 0; mi < g.member_names.size(); ++mi) {
        std::printf("%s\"%s\"", mi == 0 ? "" : ", ",
                    JsonEscape(g.member_names[mi]).c_str());
      }
      std::printf(
          "], \"separate\": {\"states\": %zu, \"table_bytes\": %zu, "
          "\"steps_per_event\": %zu}, \"combined\": {\"states\": %zu, "
          "\"table_bytes\": %zu, \"steps_per_event\": %zu}, "
          "\"oracle_histories\": %zu}",
          g.separate.dfa_states, g.separate.table_bytes,
          g.separate.steps_per_event, g.combined.dfa_states,
          g.combined.table_bytes, g.combined.steps_per_event,
          g.oracle_histories);
    }
    std::printf("%s],\n", fr.report.groups.empty() ? "" : "\n      ");
    std::printf("      \"fixes\": [");
    for (size_t xi = 0; xi < fr.fixes.size(); ++xi) {
      const ode::AppliedFix& x = fr.fixes[xi];
      std::printf(
          "%s\n        {\"trigger\": \"%s\", \"code\": \"%s\", "
          "\"description\": \"%s\"",
          xi == 0 ? "" : ",", JsonEscape(x.trigger).c_str(),
          JsonEscape(x.code).c_str(), JsonEscape(x.description).c_str());
      if (x.has_span) {
        // Schema v5: machine-applicable edits — replace each byte range
        // [byte_start, byte_end) of the original file with its
        // `replacement` (sorted, disjoint; apply back-to-front). Fixes of
        // one declaration share the edit list; appliers deduplicate.
        std::printf(", \"edits\": [");
        for (size_t ei = 0; ei < x.edits.size(); ++ei) {
          const ode::FixEdit& e = x.edits[ei];
          std::printf(
              "%s\n          {\"byte_start\": %zu, \"byte_end\": %zu, "
              "\"replacement\": \"%s\"}",
              ei == 0 ? "" : ",", e.byte_start, e.byte_end,
              JsonEscape(e.replacement).c_str());
        }
        std::printf("%s]", x.edits.empty() ? "" : "\n        ");
      }
      std::printf("}");
    }
    std::printf("%s]", fr.fixes.empty() ? "" : "\n      ");
    if (fr.report.cascade.has_value()) {
      const ode::CascadeGraph& g = *fr.report.cascade;
      std::printf(",\n      \"cascade\": {\"nodes\": [");
      for (size_t ni = 0; ni < g.nodes.size(); ++ni) {
        const ode::CascadeNode& node = g.nodes[ni];
        std::printf(
            "%s\n        {\"name\": \"%s\", \"action\": \"%s\", "
            "\"perpetual\": %s, \"immediate\": %s, \"opaque_action\": %s}",
            ni == 0 ? "" : ",", JsonEscape(node.name).c_str(),
            JsonEscape(node.action).c_str(),
            node.perpetual ? "true" : "false",
            node.immediate ? "true" : "false",
            node.opaque_action ? "true" : "false");
      }
      std::printf("%s], \"edges\": [", g.nodes.empty() ? "" : "\n      ");
      for (size_t ei = 0; ei < g.edges.size(); ++ei) {
        const ode::CascadeEdge& e = g.edges[ei];
        std::printf(
            "%s\n        {\"from\": %zu, \"to\": %zu, \"via\": \"%s\", "
            "\"kind\": \"%s\", \"fires\": %s}",
            ei == 0 ? "" : ",", e.from, e.to, JsonEscape(e.via).c_str(),
            e.opaque ? "assumed" : "posts", e.fires ? "true" : "false");
      }
      std::printf(
          "%s], \"has_cycle\": %s, \"truncated\": %s, \"max_chain\": %zu}",
          g.edges.empty() ? "" : "\n      ", g.has_cycle ? "true" : "false",
          g.truncated ? "true" : "false", g.max_chain);
    }
    std::printf("\n    }");
  }
  std::printf("%s],\n", results.empty() ? "" : "\n  ");
  std::printf(
      "  \"summary\": {\"files\": %zu, \"errors\": %zu, "
      "\"warnings\": %zu, \"notes\": %zu, \"fixes_applied\": %zu, "
      "\"fixes_suppressed\": %zu, \"witnesses\": %zu, "
      "\"witness_failures\": %zu}\n}\n",
      results.size(), errors, warnings, notes, fixes_applied,
      fixes_suppressed, witnesses, witness_failures);
}

std::vector<std::string> SplitLines(const std::string& s) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start <= s.size()) {
    size_t nl = s.find('\n', start);
    if (nl == std::string::npos) {
      if (start < s.size()) lines.push_back(s.substr(start));
      break;
    }
    lines.push_back(s.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

/// Minimal line-based unified diff (3 context lines) for --fix=check
/// previews. Spec files are small, so the quadratic LCS is fine.
std::string UnifiedDiff(const std::string& file, const std::string& a_src,
                        const std::string& b_src) {
  std::vector<std::string> a = SplitLines(a_src);
  std::vector<std::string> b = SplitLines(b_src);
  size_t n = a.size();
  size_t m = b.size();
  std::vector<std::vector<size_t>> lcs(n + 1, std::vector<size_t>(m + 1, 0));
  for (size_t i = n; i-- > 0;) {
    for (size_t j = m; j-- > 0;) {
      lcs[i][j] = a[i] == b[j] ? lcs[i + 1][j + 1] + 1
                               : std::max(lcs[i + 1][j], lcs[i][j + 1]);
    }
  }
  // Edit script: ' ' keep, '-' delete (index into a), '+' add (into b).
  struct Op {
    char tag;
    size_t ai;
    size_t bi;
  };
  std::vector<Op> ops;
  size_t i = 0;
  size_t j = 0;
  while (i < n && j < m) {
    if (a[i] == b[j]) {
      ops.push_back({' ', i++, j++});
    } else if (lcs[i + 1][j] >= lcs[i][j + 1]) {
      ops.push_back({'-', i++, 0});
    } else {
      ops.push_back({'+', 0, j++});
    }
  }
  while (i < n) ops.push_back({'-', i++, 0});
  while (j < m) ops.push_back({'+', 0, j++});

  constexpr size_t kContext = 3;
  std::string out;
  out += "--- " + file + "\n+++ " + file + " (fixed)\n";
  size_t k = 0;
  while (k < ops.size()) {
    if (ops[k].tag == ' ') {
      ++k;
      continue;
    }
    // Hunk: from kContext before this change through kContext after the
    // last change that stays within 2*kContext of its predecessor.
    size_t start = k;
    while (start > 0 && ops[start - 1].tag == ' ' &&
           k - start < kContext) {
      --start;
    }
    size_t end = k;
    size_t last_change = k;
    while (end < ops.size()) {
      if (ops[end].tag != ' ') {
        last_change = end;
      } else if (end - last_change >= 2 * kContext) {
        break;
      }
      ++end;
    }
    size_t stop = std::min(ops.size(), last_change + 1 + kContext);
    size_t a_start = n;
    size_t b_start = m;
    size_t a_len = 0;
    size_t b_len = 0;
    for (size_t x = start; x < stop; ++x) {
      if (ops[x].tag != '+') {
        a_start = std::min(a_start, ops[x].ai);
        ++a_len;
      }
      if (ops[x].tag != '-') {
        b_start = std::min(b_start, ops[x].bi);
        ++b_len;
      }
    }
    if (a_len == 0) a_start = b_start;  // Pure insertion: anchor on b.
    if (b_len == 0) b_start = a_start;
    out += "@@ -" + std::to_string(a_len == 0 ? a_start : a_start + 1) + "," +
           std::to_string(a_len) + " +" +
           std::to_string(b_len == 0 ? b_start : b_start + 1) + "," +
           std::to_string(b_len) + " @@\n";
    for (size_t x = start; x < stop; ++x) {
      out += ops[x].tag;
      out += ops[x].tag == '+' ? b[ops[x].bi] : a[ops[x].ai];
      out += '\n';
    }
    k = stop;
  }
  return out;
}

bool ParseSizeFlag(const char* arg, const char* prefix, size_t* out) {
  size_t len = std::strlen(prefix);
  if (std::strncmp(arg, prefix, len) != 0) return false;
  char* end = nullptr;
  unsigned long long v = std::strtoull(arg + len, &end, 10);
  if (end == arg + len || *end != '\0') {
    std::fprintf(stderr, "ode-lint: bad value in '%s'\n", arg);
    std::exit(2);
  }
  *out = static_cast<size_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ode::AnalyzeOptions options;
  ode::EffectMap effects;  // Keeps options.effects alive when --effects set.
  bool print_cost = false;
  bool json = false;
  bool apply_fixes = false;
  bool check_fixes = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "-h") == 0 || std::strcmp(arg, "--help") == 0) {
      std::fputs(kUsage, stdout);
      return 0;
    }
    if (std::strcmp(arg, "--no-automaton") == 0) {
      options.automaton_checks = false;
    } else if (std::strcmp(arg, "--no-pairwise") == 0) {
      options.pairwise_checks = false;
    } else if (std::strcmp(arg, "--no-groups") == 0) {
      options.group_suggestions = false;
    } else if (std::strcmp(arg, "--fix") == 0) {
      apply_fixes = true;
    } else if (std::strcmp(arg, "--fix=check") == 0) {
      check_fixes = true;
    } else if (std::strcmp(arg, "--cost") == 0) {
      print_cost = true;
    } else if (std::strcmp(arg, "--witness=on") == 0) {
      options.witnesses = true;
    } else if (std::strcmp(arg, "--witness=off") == 0) {
      options.witnesses = false;
    } else if (std::strcmp(arg, "--format=text") == 0) {
      json = false;
    } else if (std::strcmp(arg, "--format=json") == 0) {
      json = true;
    } else if (std::strncmp(arg, "--effects=", 10) == 0) {
      const char* path = arg + 10;
      std::ifstream in(path, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "ode-lint: cannot open effects file '%s'\n",
                     path);
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      ode::Result<ode::EffectMap> parsed =
          ode::ParseEffectsSource(buf.str());
      if (!parsed.ok()) {
        std::fprintf(stderr, "ode-lint: %s: %s\n", path,
                     parsed.status().ToString().c_str());
        return 2;
      }
      effects = std::move(*parsed);
      options.effects = &effects;
    } else if (ParseSizeFlag(arg, "--budget-states=",
                             &options.budget_dfa_states) ||
               ParseSizeFlag(arg, "--budget-bytes=",
                             &options.budget_table_bytes) ||
               ParseSizeFlag(arg, "--max-chain=",
                             &options.cascade_max_chain_steps)) {
      // Parsed into options.
    } else if (size_t depth = 0;
               ParseSizeFlag(arg, "--depth-limit=", &depth)) {
      options.cascade_depth_limit = static_cast<int>(depth);
    } else if (arg[0] == '-' && arg[1] != '\0') {
      std::fprintf(stderr, "ode-lint: unknown option '%s'\n%s", arg, kUsage);
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  if (check_fixes && apply_fixes) {
    std::fprintf(stderr,
                 "ode-lint: --fix and --fix=check are mutually exclusive\n");
    return 2;
  }
  if (check_fixes && json) {
    std::fprintf(stderr,
                 "ode-lint: --fix=check emits a diff; --format=json is not "
                 "supported with it\n");
    return 2;
  }

  size_t errors = 0;
  size_t warnings = 0;
  size_t notes = 0;
  size_t fixes_applied = 0;
  size_t fixes_pending = 0;
  size_t fixes_suppressed = 0;
  size_t witnesses_total = 0;
  size_t witness_failures_total = 0;
  bool io_failure = false;
  std::vector<FileResult> results;
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "ode-lint: cannot open '%s'\n", file.c_str());
      io_failure = true;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string source = buf.str();
    in.close();

    std::vector<ode::AppliedFix> fixes;
    std::vector<ode::AppliedFix> pending;
    if (!apply_fixes) {
      // Dry run: compute what --fix would do without writing anything. The
      // verified rewrites become `fix:` hints under the matching
      // diagnostics; with --fix=check they are also shown as a unified
      // diff and gate the exit status. The report below still describes
      // the file AS IS.
      ode::FixOptions fix_options;
      fix_options.compile = options.compile;
      ode::FixResult fixed = ode::FixSpecSource(source, fix_options);
      pending = std::move(fixed.applied);
      if (check_fixes) {
        fixes_suppressed += fixed.suppressed;
        if (!pending.empty()) {
          fixes_pending += pending.size();
          for (const ode::AppliedFix& x : pending) {
            std::printf("%s: would fix: trigger '%s': [%s] %s\n",
                        file.c_str(), x.trigger.c_str(), x.code.c_str(),
                        x.description.c_str());
          }
          std::string diff = UnifiedDiff(file, source, fixed.fixed_source);
          std::fputs(diff.c_str(), stdout);
        }
      }
    }
    if (apply_fixes) {
      ode::FixOptions fix_options;
      fix_options.compile = options.compile;
      ode::FixResult fixed = ode::FixSpecSource(source, fix_options);
      fixes_suppressed += fixed.suppressed;
      if (!fixed.applied.empty()) {
        std::ofstream out(file, std::ios::binary | std::ios::trunc);
        if (!out) {
          std::fprintf(stderr, "ode-lint: cannot write '%s'\n", file.c_str());
          io_failure = true;
        } else {
          out << fixed.fixed_source;
          source = std::move(fixed.fixed_source);
          fixes = std::move(fixed.applied);
          fixes_applied += fixes.size();
        }
      }
    }

    // The report reflects the file as it now stands (post-fix when --fix
    // ran and wrote).
    ode::AnalysisReport report = ode::AnalyzeSpecSource(source, options);
    // Attach each pending verified rewrite as a fix-it hint on the first
    // matching diagnostic (same trigger, same code) that lacks it.
    for (const ode::AppliedFix& x : pending) {
      std::string hint =
          ode::StrFormat("%s (run --fix to apply)", x.description.c_str());
      ode::Diagnostic* target = nullptr;
      for (ode::TriggerAnalysis& t : report.triggers) {
        if (t.name != x.trigger) continue;
        for (ode::Diagnostic& d : t.diagnostics) {
          if (d.id != x.code) continue;
          if (target == nullptr) target = &d;
          if (std::find(d.fix_hints.begin(), d.fix_hints.end(), hint) ==
              d.fix_hints.end()) {
            target = &d;
            break;
          }
        }
        if (target != nullptr) break;
      }
      if (target != nullptr) target->fix_hints.push_back(hint);
    }
    witnesses_total += report.witnesses;
    witness_failures_total += report.witness_failures;
    std::vector<ode::Diagnostic> diags = report.AllDiagnostics();
    for (const ode::Diagnostic& d : diags) {
      switch (d.severity) {
        case ode::Severity::kError: ++errors; break;
        case ode::Severity::kWarning: ++warnings; break;
        case ode::Severity::kNote: ++notes; break;
      }
    }
    if (json) {
      results.push_back(FileResult{file, std::move(source), std::move(report),
                                   std::move(fixes)});
      continue;
    }
    for (const ode::AppliedFix& x : fixes) {
      std::printf("%s: fix: trigger '%s': [%s] %s\n", file.c_str(),
                  x.trigger.c_str(), x.code.c_str(), x.description.c_str());
    }
    std::string rendered = ode::RenderDiagnostics(diags, source, file);
    if (!rendered.empty()) std::fputs(rendered.c_str(), stdout);

    if (print_cost) {
      for (const ode::TriggerAnalysis& t : report.triggers) {
        if (!t.compiled) continue;
        std::printf("%s: cost: trigger '%s': %s\n", file.c_str(),
                    t.name.c_str(), t.cost.ToString().c_str());
      }
    }
  }

  if (json) {
    PrintJson(results, print_cost, errors, warnings, notes, fixes_applied,
              fixes_suppressed, witnesses_total, witness_failures_total);
  } else {
    std::printf(
        "ode-lint: %zu file%s, %zu error%s, %zu warning%s, %zu note%s",
        files.size(), files.size() == 1 ? "" : "s", errors,
        errors == 1 ? "" : "s", warnings, warnings == 1 ? "" : "s", notes,
        notes == 1 ? "" : "s");
    if (apply_fixes) {
      std::printf(", %zu fix%s applied", fixes_applied,
                  fixes_applied == 1 ? "" : "es");
      if (fixes_suppressed > 0) {
        std::printf(" (%zu suppressed by verification)", fixes_suppressed);
      }
    }
    if (check_fixes) {
      std::printf(", %zu fix%s pending", fixes_pending,
                  fixes_pending == 1 ? "" : "es");
      if (fixes_suppressed > 0) {
        std::printf(" (%zu suppressed by verification)", fixes_suppressed);
      }
    }
    std::printf("\n");
  }
  if (io_failure) return 2;
  if (errors > 0) return 1;
  // --fix=check is a CI gate: pending rewrites fail the run even when the
  // specification is otherwise diagnostics-clean.
  return check_fixes && fixes_pending > 0 ? 1 : 0;
}
