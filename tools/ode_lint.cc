// ode-lint: static analyzer for trigger specification files.
//
// Reads one or more specification files (blank-line-separated trigger
// declarations in the repo's DSL), runs the three analysis layers
// (AST/mask checks, automaton checks on the compiled DFA, cost
// estimation), and renders every finding caret-style against the source.
//
// Exit status: 0 when no file produced an error-severity diagnostic,
// 1 when at least one did, 2 on usage / I/O failure.
//
// See docs/ANALYSIS.md for the diagnostic catalogue.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyzer.h"
#include "common/strutil.h"
#include "lang/token.h"

namespace {

constexpr char kUsage[] =
    "usage: ode-lint [options] <spec-file>...\n"
    "\n"
    "Statically analyzes trigger specification files: mask\n"
    "satisfiability, automaton emptiness/universality/liveness,\n"
    "pairwise duplicate and subsumption detection, and cost reports.\n"
    "\n"
    "options:\n"
    "  --no-automaton        skip layer-2 automaton checks\n"
    "  --no-pairwise         skip pairwise equivalence/subsumption\n"
    "  --cost                print a per-trigger cost report\n"
    "  --budget-states=N     warn (C001) when a DFA exceeds N states\n"
    "  --budget-bytes=N      warn (C001) when tables exceed N bytes\n"
    "  --format=text|json    output format (default text); json emits one\n"
    "                        machine-readable document on stdout\n"
    "  -h, --help            show this help\n";

/// Escapes a string for inclusion in a JSON string literal.
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          out += ode::StrFormat("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

/// One analyzed file, retained until all inputs are processed so the JSON
/// document can be emitted in one piece.
struct FileResult {
  std::string path;
  std::string source;
  ode::AnalysisReport report;
};

/// Emits the machine-readable report. Schema (stable; see
/// docs/ANALYSIS.md):
///
/// {
///   "tool": "ode-lint", "schema_version": 1,
///   "files": [{
///     "path": ..., "diagnostics": [{
///       "id": ..., "severity": "error|warning|note", "message": ...,
///       "trigger": ..., "line": N, "column": N   // 0,0 = no position
///     }],
///     "triggers": [{"name": ..., "compiled": bool[, "cost": ...]}]
///   }],
///   "summary": {"files": N, "errors": N, "warnings": N, "notes": N}
/// }
void PrintJson(const std::vector<FileResult>& results, bool print_cost,
               size_t errors, size_t warnings, size_t notes) {
  std::printf("{\n  \"tool\": \"ode-lint\",\n  \"schema_version\": 1,\n");
  std::printf("  \"files\": [");
  for (size_t fi = 0; fi < results.size(); ++fi) {
    const FileResult& fr = results[fi];
    std::printf("%s\n    {\n      \"path\": \"%s\",\n", fi == 0 ? "" : ",",
                JsonEscape(fr.path).c_str());
    std::printf("      \"diagnostics\": [");
    std::vector<ode::Diagnostic> diags = fr.report.AllDiagnostics();
    for (size_t di = 0; di < diags.size(); ++di) {
      const ode::Diagnostic& d = diags[di];
      int line = 0;
      int column = 0;
      if (!d.span.empty()) {
        ode::LineCol lc = ode::LineColAt(fr.source, d.span.begin);
        line = lc.line;
        column = lc.col;
      }
      std::printf(
          "%s\n        {\"id\": \"%s\", \"severity\": \"%s\", "
          "\"message\": \"%s\", \"trigger\": \"%s\", "
          "\"line\": %d, \"column\": %d}",
          di == 0 ? "" : ",", JsonEscape(d.id).c_str(),
          std::string(ode::SeverityName(d.severity)).c_str(),
          JsonEscape(d.message).c_str(), JsonEscape(d.trigger).c_str(), line,
          column);
    }
    std::printf("%s],\n", diags.empty() ? "" : "\n      ");
    std::printf("      \"triggers\": [");
    for (size_t ti = 0; ti < fr.report.triggers.size(); ++ti) {
      const ode::TriggerAnalysis& t = fr.report.triggers[ti];
      std::printf("%s\n        {\"name\": \"%s\", \"compiled\": %s",
                  ti == 0 ? "" : ",", JsonEscape(t.name).c_str(),
                  t.compiled ? "true" : "false");
      if (print_cost && t.compiled) {
        std::printf(", \"cost\": \"%s\"",
                    JsonEscape(t.cost.ToString()).c_str());
      }
      std::printf("}");
    }
    std::printf("%s]\n    }", fr.report.triggers.empty() ? "" : "\n      ");
  }
  std::printf("%s],\n", results.empty() ? "" : "\n  ");
  std::printf(
      "  \"summary\": {\"files\": %zu, \"errors\": %zu, "
      "\"warnings\": %zu, \"notes\": %zu}\n}\n",
      results.size(), errors, warnings, notes);
}

bool ParseSizeFlag(const char* arg, const char* prefix, size_t* out) {
  size_t len = std::strlen(prefix);
  if (std::strncmp(arg, prefix, len) != 0) return false;
  char* end = nullptr;
  unsigned long long v = std::strtoull(arg + len, &end, 10);
  if (end == arg + len || *end != '\0') {
    std::fprintf(stderr, "ode-lint: bad value in '%s'\n", arg);
    std::exit(2);
  }
  *out = static_cast<size_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ode::AnalyzeOptions options;
  bool print_cost = false;
  bool json = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "-h") == 0 || std::strcmp(arg, "--help") == 0) {
      std::fputs(kUsage, stdout);
      return 0;
    }
    if (std::strcmp(arg, "--no-automaton") == 0) {
      options.automaton_checks = false;
    } else if (std::strcmp(arg, "--no-pairwise") == 0) {
      options.pairwise_checks = false;
    } else if (std::strcmp(arg, "--cost") == 0) {
      print_cost = true;
    } else if (std::strcmp(arg, "--format=text") == 0) {
      json = false;
    } else if (std::strcmp(arg, "--format=json") == 0) {
      json = true;
    } else if (ParseSizeFlag(arg, "--budget-states=",
                             &options.budget_dfa_states) ||
               ParseSizeFlag(arg, "--budget-bytes=",
                             &options.budget_table_bytes)) {
      // Parsed into options.
    } else if (arg[0] == '-' && arg[1] != '\0') {
      std::fprintf(stderr, "ode-lint: unknown option '%s'\n%s", arg, kUsage);
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fputs(kUsage, stderr);
    return 2;
  }

  size_t errors = 0;
  size_t warnings = 0;
  size_t notes = 0;
  bool io_failure = false;
  std::vector<FileResult> results;
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "ode-lint: cannot open '%s'\n", file.c_str());
      io_failure = true;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string source = buf.str();

    ode::AnalysisReport report = ode::AnalyzeSpecSource(source, options);
    std::vector<ode::Diagnostic> diags = report.AllDiagnostics();
    for (const ode::Diagnostic& d : diags) {
      switch (d.severity) {
        case ode::Severity::kError: ++errors; break;
        case ode::Severity::kWarning: ++warnings; break;
        case ode::Severity::kNote: ++notes; break;
      }
    }
    if (json) {
      results.push_back(FileResult{file, std::move(source), std::move(report)});
      continue;
    }
    std::string rendered = ode::RenderDiagnostics(diags, source, file);
    if (!rendered.empty()) std::fputs(rendered.c_str(), stdout);

    if (print_cost) {
      for (const ode::TriggerAnalysis& t : report.triggers) {
        if (!t.compiled) continue;
        std::printf("%s: cost: trigger '%s': %s\n", file.c_str(),
                    t.name.c_str(), t.cost.ToString().c_str());
      }
    }
  }

  if (json) {
    PrintJson(results, print_cost, errors, warnings, notes);
  } else {
    std::printf(
        "ode-lint: %zu file%s, %zu error%s, %zu warning%s, %zu note%s\n",
        files.size(), files.size() == 1 ? "" : "s", errors,
        errors == 1 ? "" : "s", warnings, warnings == 1 ? "" : "s", notes,
        notes == 1 ? "" : "s");
  }
  if (io_failure) return 2;
  return errors > 0 ? 1 : 0;
}
