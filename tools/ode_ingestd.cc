// ode-ingestd: network ingest daemon.
//
// Stands up a Database with a small demo schema (class `cell` with an
// `add` method and the T1 counting trigger from the runtime tests), an
// IngestRuntime over it, and an IngestServer speaking the framed wire
// protocol (docs/NETWORK.md). Clients post method invocations with
// ode-ingest or the IngestClient library.
//
// The daemon runs until SIGINT/SIGTERM, then shuts down gracefully
// (drains the runtime) and prints the final metrics snapshot.

#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/server.h"
#include "ode/database.h"
#include "runtime/ingest_runtime.h"

namespace {

constexpr char kUsage[] =
    "usage: ode-ingestd [options]\n"
    "\n"
    "Serves the framed ingest wire protocol (docs/NETWORK.md) over a\n"
    "demo database: class 'cell' {v, touches} with method add(d) and\n"
    "trigger T1 firing every 3 adds. Objects get oids 1..N.\n"
    "\n"
    "options:\n"
    "  --host=ADDR            bind address (default 127.0.0.1)\n"
    "  --port=N               TCP port; 0 = ephemeral (default 7311)\n"
    "  --shards=N             ingest worker shards (default 4)\n"
    "  --batch=N              max events per worker transaction (default 64)\n"
    "  --queue-capacity=N     per-shard queue capacity (default 1024)\n"
    "  --io-threads=N         network IO worker threads (default 4); the\n"
    "                         acceptor dispatches connections least-loaded\n"
    "  --backpressure=MODE    block | reject | drop (default block)\n"
    "  --objects=N            demo cells to create (default 16)\n"
    "  --wal-dir=PATH         durable event log directory; enables WAL,\n"
    "                         checkpointing, and crash recovery on restart\n"
    "                         (docs/DURABILITY.md)\n"
    "  --fsync=POLICY         always | never | every-n:N | interval:MS\n"
    "                         (default every-n:64)\n"
    "  --checkpoint-every-s=N background checkpoint cadence in seconds;\n"
    "                         0 disables (default 30; needs --wal-dir)\n"
    "  -h, --help             show this help\n";

bool ParseSizeFlag(const char* arg, const char* prefix, size_t* out) {
  size_t len = std::strlen(prefix);
  if (std::strncmp(arg, prefix, len) != 0) return false;
  char* end = nullptr;
  unsigned long long v = std::strtoull(arg + len, &end, 10);
  if (end == arg + len || *end != '\0') {
    std::fprintf(stderr, "ode-ingestd: bad value in '%s'\n", arg);
    std::exit(2);
  }
  *out = static_cast<size_t>(v);
  return true;
}

ode::Status CountAction(const ode::ActionContext& ctx) {
  ODE_ASSIGN_OR_RETURN(ode::Value t, ctx.db->PeekAttr(ctx.self, "touches"));
  ODE_ASSIGN_OR_RETURN(ode::Value next, t.Add(ode::Value(1)));
  return ctx.db->SetAttr(ctx.txn, ctx.self, "touches", next);
}

ode::ClassDef CellClass() {
  ode::ClassDef def("cell");
  def.AddAttr("v", ode::Value(0));
  def.AddAttr("touches", ode::Value(0));
  def.AddMethod(ode::MethodDef{
      "add",
      {{"int", "d"}},
      ode::MethodKind::kUpdate,
      [](ode::MethodContext* ctx) -> ode::Status {
        ODE_ASSIGN_OR_RETURN(ode::Value v, ctx->Get("v"));
        ODE_ASSIGN_OR_RETURN(ode::Value d, ctx->Arg("d"));
        ODE_ASSIGN_OR_RETURN(ode::Value next, v.Add(d));
        return ctx->Set("v", next);
      }});
  def.AddMethod(
      ode::MethodDef{"peek", {}, ode::MethodKind::kReadOnly, nullptr});
  def.AddTrigger("T1(): perpetual every 3 (after add) ==> count");
  return def;
}

}  // namespace

int main(int argc, char** argv) {
  ode::net::ServerOptions server_options;
  server_options.port = 7311;
  server_options.io_threads = 4;
  ode::runtime::IngestOptions ingest_options;
  size_t num_objects = 16;
  size_t checkpoint_every_s = 30;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "-h") == 0 || std::strcmp(arg, "--help") == 0) {
      std::fputs(kUsage, stdout);
      return 0;
    }
    size_t port = 0;
    if (ParseSizeFlag(arg, "--port=", &port)) {
      server_options.port = static_cast<uint16_t>(port);
    } else if (std::strncmp(arg, "--host=", 7) == 0) {
      server_options.host = arg + 7;
    } else if (ParseSizeFlag(arg, "--shards=", &ingest_options.num_shards) ||
               ParseSizeFlag(arg, "--batch=", &ingest_options.max_batch) ||
               ParseSizeFlag(arg, "--queue-capacity=",
                             &ingest_options.queue_capacity) ||
               ParseSizeFlag(arg, "--io-threads=",
                             &server_options.io_threads) ||
               ParseSizeFlag(arg, "--objects=", &num_objects) ||
               ParseSizeFlag(arg, "--checkpoint-every-s=",
                             &checkpoint_every_s)) {
      // Parsed.
    } else if (std::strncmp(arg, "--wal-dir=", 10) == 0) {
      ingest_options.durability.dir = arg + 10;
    } else if (std::strcmp(arg, "--fsync=always") == 0) {
      ingest_options.durability.fsync = ode::wal::FsyncPolicy::kAlways;
    } else if (std::strcmp(arg, "--fsync=never") == 0) {
      ingest_options.durability.fsync = ode::wal::FsyncPolicy::kNever;
    } else if (std::strncmp(arg, "--fsync=every-n:", 16) == 0) {
      size_t n = 0;
      ParseSizeFlag(arg, "--fsync=every-n:", &n);  // Exits on a bad value.
      if (n == 0) {
        std::fprintf(stderr, "ode-ingestd: --fsync=every-n needs N >= 1\n");
        return 2;
      }
      ingest_options.durability.fsync = ode::wal::FsyncPolicy::kEveryN;
      ingest_options.durability.fsync_every_n = n;
    } else if (std::strncmp(arg, "--fsync=interval:", 17) == 0) {
      size_t ms = 0;
      ParseSizeFlag(arg, "--fsync=interval:", &ms);  // Exits on a bad value.
      ingest_options.durability.fsync = ode::wal::FsyncPolicy::kEveryMs;
      ingest_options.durability.fsync_interval =
          std::chrono::milliseconds(ms);
    } else if (std::strcmp(arg, "--backpressure=block") == 0) {
      ingest_options.backpressure = ode::runtime::BackpressurePolicy::kBlock;
    } else if (std::strcmp(arg, "--backpressure=reject") == 0) {
      ingest_options.backpressure = ode::runtime::BackpressurePolicy::kReject;
    } else if (std::strcmp(arg, "--backpressure=drop") == 0) {
      ingest_options.backpressure =
          ode::runtime::BackpressurePolicy::kDropNewest;
    } else {
      std::fprintf(stderr, "ode-ingestd: unknown option '%s'\n%s", arg,
                   kUsage);
      return 2;
    }
  }

  // Block the shutdown signals before any thread exists, so the server
  // loop inherits the mask and sigwait below is the only receiver.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  ode::Database db;
  ode::Status s = db.RegisterAction("count", CountAction);
  if (!s.ok()) {
    std::fprintf(stderr, "ode-ingestd: %s\n", s.ToString().c_str());
    return 1;
  }
  ode::Result<ode::ClassId> cls = db.RegisterClass(CellClass());
  if (!cls.ok()) {
    std::fprintf(stderr, "ode-ingestd: %s\n",
                 cls.status().ToString().c_str());
    return 1;
  }
  ode::Result<ode::TxnId> txn = db.Begin();
  if (!txn.ok()) {
    std::fprintf(stderr, "ode-ingestd: %s\n",
                 txn.status().ToString().c_str());
    return 1;
  }
  uint64_t first_oid = 0;
  uint64_t last_oid = 0;
  for (size_t i = 0; i < num_objects; ++i) {
    ode::Result<ode::Oid> oid = db.New(*txn, "cell");
    if (!oid.ok()) {
      std::fprintf(stderr, "ode-ingestd: %s\n",
                   oid.status().ToString().c_str());
      return 1;
    }
    if (first_oid == 0) first_oid = oid->id;
    last_oid = oid->id;
    s = db.ActivateTrigger(*txn, *oid, "T1");
    if (!s.ok()) {
      std::fprintf(stderr, "ode-ingestd: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  s = db.Commit(*txn);
  if (!s.ok()) {
    std::fprintf(stderr, "ode-ingestd: %s\n", s.ToString().c_str());
    return 1;
  }

  ode::runtime::IngestRuntime rt(&db, ingest_options);
  s = rt.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "ode-ingestd: %s\n", s.ToString().c_str());
    return 1;
  }
  ode::net::IngestServer server(&rt, server_options);
  s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "ode-ingestd: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf(
      "ode-ingestd: listening on %s:%u (%zu shards, batch %zu, %zu io "
      "threads, %zu cells, oids %llu..%llu)\n",
      server_options.host.c_str(), static_cast<unsigned>(server.port()),
      rt.num_shards(), ingest_options.max_batch, server.io_threads(),
      num_objects,
      static_cast<unsigned long long>(first_oid),
      static_cast<unsigned long long>(last_oid));
  if (ingest_options.durability.enabled()) {
    const ode::runtime::RecoveryInfo& rec = rt.recovery();
    std::printf(
        "ode-ingestd: wal dir %s (fsync=%s), recovered: checkpoint=%s "
        "replayed=%llu skipped=%llu torn_files=%llu\n",
        ingest_options.durability.dir.c_str(),
        ode::wal::FsyncPolicyName(ingest_options.durability.fsync),
        rec.had_checkpoint ? "yes" : "no",
        static_cast<unsigned long long>(rec.replayed_events),
        static_cast<unsigned long long>(rec.skipped_covered),
        static_cast<unsigned long long>(rec.torn_files));
  }
  std::fflush(stdout);

  // Background checkpointing: bounds replay work after a crash by
  // persisting state and truncating the logs on a timer.
  std::mutex ckpt_mu;
  std::condition_variable ckpt_cv;
  bool ckpt_stop = false;
  std::thread checkpointer;
  if (ingest_options.durability.enabled() && checkpoint_every_s > 0) {
    checkpointer = std::thread([&] {
      std::unique_lock<std::mutex> lock(ckpt_mu);
      while (!ckpt_cv.wait_for(lock, std::chrono::seconds(checkpoint_every_s),
                               [&] { return ckpt_stop; })) {
        lock.unlock();
        ode::Status cs = rt.Checkpoint();
        if (!cs.ok()) {
          std::fprintf(stderr, "ode-ingestd: checkpoint: %s\n",
                       cs.ToString().c_str());
        }
        lock.lock();
      }
    });
  }

  int sig = 0;
  sigwait(&sigs, &sig);
  std::printf("ode-ingestd: caught %s, shutting down\n", strsignal(sig));

  if (checkpointer.joinable()) {
    {
      std::lock_guard<std::mutex> lock(ckpt_mu);
      ckpt_stop = true;
    }
    ckpt_cv.notify_all();
    checkpointer.join();
  }
  // Final checkpoint: restart replays nothing and starts from a clean log.
  if (ingest_options.durability.enabled()) {
    s = rt.Checkpoint();
    if (!s.ok()) {
      std::fprintf(stderr, "ode-ingestd: final checkpoint: %s\n",
                   s.ToString().c_str());
    }
  }
  server.Stop();
  s = rt.Stop();
  if (!s.ok()) {
    std::fprintf(stderr, "ode-ingestd: stop: %s\n", s.ToString().c_str());
  }
  std::printf("%s", rt.Metrics().ToString().c_str());
  std::printf("ode-ingestd: served %llu connections, %llu frames\n",
              static_cast<unsigned long long>(server.connections_accepted()),
              static_cast<unsigned long long>(server.frames_handled()));
  return 0;
}
