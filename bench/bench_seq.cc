// Class-scope sequencer throughput (§9, docs/SEQUENCER.md): events/sec
// through the sharded runtime with ONE active class-scope trigger, as a
// function of shard count (1/2/4/8). Every post flows through the merge
// stage, so this measures the sequencer as a pipeline stage: shards do
// the per-object work and mask classification in parallel, the dedicated
// merge thread advances the shared automaton. The A/B axis is the legacy
// inline path (class_sequencer=false), where every shard serializes on
// class_post_mu_ for the advancement itself.
//
// run_ingest_bench.sh records this as BENCH_seq.json and gates the
// 4-shard / 1-shard ratio (>= 2x on hosts with >= 4 CPUs).
#include <benchmark/benchmark.h>

#include <vector>

#include "ode/database.h"
#include "runtime/ingest_runtime.h"

namespace ode {
namespace {

using runtime::IngestOptions;
using runtime::IngestRuntime;

constexpr size_t kObjects = 16;
constexpr int kEventsPerIter = 4096;

// A counting class-scope trigger over the merged stream of every
// instance's `add`s. every-64 keeps the firing (which needs the posting
// object's lock) off the hot path so the steady-state cost measured is
// classification + publish + merge + DFA step.
ClassDef SeqBenchClass() {
  ClassDef def("seqcell");
  def.AddAttr("v", Value(0));
  def.AddAttr("touches", Value(0));
  def.AddMethod(MethodDef{
      "add",
      {{"int", "d"}},
      MethodKind::kUpdate,
      [](MethodContext* ctx) -> Status {
        ODE_ASSIGN_OR_RETURN(Value v, ctx->Get("v"));
        ODE_ASSIGN_OR_RETURN(Value d, ctx->Arg("d"));
        ODE_ASSIGN_OR_RETURN(Value next, v.Add(d));
        return ctx->Set("v", next);
      }});
  def.AddTrigger("CT(): perpetual every 64 (after add) ==> count");
  def.SetPostingPolicy(EventPostingPolicy{
      /*method_events=*/true, /*access_events=*/false,
      /*read_update_events=*/false});
  return def;
}

std::vector<Oid> SetupSeq(Database* db) {
  (void)db->RegisterAction("count", [](const ActionContext& ctx) -> Status {
    Result<Value> t = ctx.db->PeekAttr(ctx.self, "touches");
    if (!t.ok()) return t.status();
    Result<Value> next = t->Add(Value(1));
    if (!next.ok()) return next.status();
    return ctx.db->SetAttr(ctx.txn, ctx.self, "touches", *next);
  });
  (void)db->RegisterClass(SeqBenchClass());
  std::vector<Oid> oids;
  TxnId t = db->Begin().value();
  for (size_t i = 0; i < kObjects; ++i) {
    oids.push_back(db->New(t, "seqcell").value());
  }
  (void)db->Commit(t);
  (void)db->ActivateClassTrigger("seqcell", "CT");
  return oids;
}

void RunScenario(benchmark::State& state, bool use_sequencer) {
  const size_t shards = static_cast<size_t>(state.range(0));
  Database db;
  std::vector<Oid> oids = SetupSeq(&db);
  IngestOptions opts;
  opts.num_shards = shards;
  opts.max_batch = 128;
  opts.queue_capacity = 4096;
  opts.record_latency = false;
  opts.class_sequencer = use_sequencer;
  IngestRuntime rt(&db, opts);
  (void)rt.Start();
  size_t next = 0;
  for (auto _ : state) {
    for (int i = 0; i < kEventsPerIter; ++i) {
      (void)rt.Post(oids[next++ % kObjects], "add", {Value(1)});
    }
    (void)rt.Drain();  // Includes the sequencer's apply barrier.
  }
  state.SetItemsProcessed(state.iterations() * kEventsPerIter);
  state.counters["shards"] = static_cast<double>(shards);
  if (use_sequencer && rt.sequencer() != nullptr) {
    seq::SequencerMetricsSnapshot m = rt.sequencer()->Metrics();
    state.counters["seq_published"] = static_cast<double>(m.published);
    state.counters["seq_queue_hw"] =
        static_cast<double>(m.queue_high_water);
    state.counters["seq_lock_timeouts"] =
        static_cast<double>(m.lock_timeouts);
  }
  (void)rt.Stop();
}

/// The sequencer pipeline: shards classify + publish, one merge thread
/// advances the class automaton in deterministic order.
void BM_SeqClassScope(benchmark::State& state) {
  RunScenario(state, /*use_sequencer=*/true);
}
BENCHMARK(BM_SeqClassScope)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// A/B baseline: the pre-sequencer inline path — every shard advances the
/// shared automaton itself under the recursive class-posting mutex.
void BM_SeqLegacyInline(benchmark::State& state) {
  RunScenario(state, /*use_sequencer=*/false);
}
BENCHMARK(BM_SeqLegacyInline)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace ode
