// Experiment E12: compilation cost and automaton sizes. For each operator
// family, state counts (NFA → DFA → minimal DFA) and compile time as the
// expression grows; plus the minimize on/off ablation DESIGN.md calls out.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "compile/decompile.h"

namespace ode {
namespace {

using bench_util::ChainExpr;
using bench_util::CompileNamed;
using bench_util::ExpressionSuite;

void BM_CompileSuite(benchmark::State& state) {
  const int expr_idx = static_cast<int>(state.range(0));
  EventExprPtr expr =
      ParseEvent(ExpressionSuite()[expr_idx].text).value();
  CompileStats stats;
  for (auto _ : state) {
    CompiledEvent compiled = CompileEvent(expr, CompileOptions()).value();
    stats = compiled.stats;
    benchmark::DoNotOptimize(compiled.dfa);
  }
  state.SetLabel(ExpressionSuite()[expr_idx].name);
  state.counters["alphabet"] = static_cast<double>(stats.alphabet_size);
  state.counters["nfa"] = static_cast<double>(stats.nfa_states);
  state.counters["dfa"] = static_cast<double>(stats.dfa_states);
  state.counters["min"] = static_cast<double>(stats.min_dfa_states);
}
BENCHMARK(BM_CompileSuite)->DenseRange(0, 11);

void BM_CompileChain(benchmark::State& state) {
  // Growing relative/sequence/prior chains: how automaton size scales with
  // expression length.
  const int op = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const char* ops[] = {"relative", "sequence", "prior"};
  EventExprPtr expr = ParseEvent(ChainExpr(ops[op], n)).value();
  CompileStats stats;
  for (auto _ : state) {
    CompiledEvent compiled = CompileEvent(expr, CompileOptions()).value();
    stats = compiled.stats;
    benchmark::DoNotOptimize(compiled.dfa);
  }
  state.SetLabel(std::string(ops[op]) + "/" + std::to_string(n));
  state.counters["min"] = static_cast<double>(stats.min_dfa_states);
}
BENCHMARK(BM_CompileChain)
    ->ArgsProduct({{0, 1, 2}, {2, 4, 8, 16}});

void BM_CompileCounting(benchmark::State& state) {
  // choose N: the counter product grows linearly in N.
  const int n = static_cast<int>(state.range(0));
  EventExprPtr expr =
      ParseEvent("choose " + std::to_string(n) + " (after a)").value();
  CompileStats stats;
  for (auto _ : state) {
    CompiledEvent compiled = CompileEvent(expr, CompileOptions()).value();
    stats = compiled.stats;
    benchmark::DoNotOptimize(compiled.dfa);
  }
  state.counters["min"] = static_cast<double>(stats.min_dfa_states);
}
BENCHMARK(BM_CompileCounting)->RangeMultiplier(4)->Range(4, 256);

void BM_MinimizeAblation(benchmark::State& state) {
  // The same expression with and without minimization: table size impact.
  const bool minimize = state.range(0) != 0;
  EventExprPtr expr = ParseEvent(
      "fa(after a, prior(after b, after c), after a) | "
      "relative(after c, !after a, after b)")
                          .value();
  CompileOptions opts;
  opts.minimize = minimize;
  size_t states = 0, bytes = 0;
  for (auto _ : state) {
    CompiledEvent compiled = CompileEvent(expr, opts).value();
    states = compiled.dfa.num_states();
    bytes = compiled.dfa.TableBytes();
    benchmark::DoNotOptimize(compiled.dfa);
  }
  state.SetLabel(minimize ? "minimized" : "raw");
  state.counters["states"] = static_cast<double>(states);
  state.counters["table_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_MinimizeAblation)->Arg(0)->Arg(1);

void BM_Decompile(benchmark::State& state) {
  // The converse of the §4 equivalence: DFA → event expression by state
  // elimination. Expression size grows quickly with DFA states — the
  // direction the paper's compiler never needs to take at run time.
  const int expr_idx = static_cast<int>(state.range(0));
  EventExprPtr expr =
      ParseEvent(ExpressionSuite()[expr_idx].text).value();
  CompiledEvent compiled = CompileEvent(expr, CompileOptions()).value();
  size_t nodes = 0;
  for (auto _ : state) {
    Result<EventExprPtr> back =
        DecompileDfa(compiled.dfa, compiled.alphabet);
    if (!back.ok()) {
      state.SkipWithError("decompile failed");
      return;
    }
    nodes = (*back)->NodeCount();
    benchmark::DoNotOptimize(*back);
  }
  state.SetLabel(ExpressionSuite()[expr_idx].name);
  state.counters["dfa_states"] =
      static_cast<double>(compiled.dfa.num_states());
  state.counters["expr_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_Decompile)->Arg(0)->Arg(3)->Arg(6)->Arg(9);

}  // namespace
}  // namespace ode
