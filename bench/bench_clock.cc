// Experiment E13 (quantified): virtual-clock timer management — cost of
// advancing time across many armed timers, and of posting the resulting
// time events through the full trigger engine.
#include <benchmark/benchmark.h>

#include "clock/virtual_clock.h"
#include "ode/database.h"

namespace ode {
namespace {

void BM_ClockAdvanceRaw(benchmark::State& state) {
  const int num_timers = static_cast<int>(state.range(0));
  VirtualClock clock;
  TimeSpec spec;
  spec.minute = 5;  // Every-5-minute period timers.
  for (int i = 0; i < num_timers; ++i) {
    BasicEvent be = BasicEvent::Time(TimeEventMode::kEvery, spec);
    (void)clock.AddTimer(Oid{static_cast<uint64_t>(i + 1)}, be);
  }
  int64_t fired = 0;
  for (auto _ : state) {
    // One hour: each timer fires 12 times.
    Status s = clock.Advance(3600 * 1000,
                             [&](Oid, const std::string&, TimeMs) -> Status {
                               ++fired;
                               return Status::OK();
                             });
    if (!s.ok()) {
      state.SkipWithError("advance failed");
      return;
    }
  }
  state.SetItemsProcessed(fired);
  state.counters["timers"] = num_timers;
}
BENCHMARK(BM_ClockAdvanceRaw)->Arg(1)->Arg(16)->Arg(256);

void BM_ClockThroughEngine(benchmark::State& state) {
  const int num_objects = static_cast<int>(state.range(0));
  DatabaseOptions opts;
  opts.record_histories = false;
  Database db(opts);
  (void)db.RegisterAction("noop", [](const ActionContext&) -> Status {
    return Status::OK();
  });
  ClassDef def("obj");
  def.AddAttr("n", Value(0));
  def.AddTrigger("T(): perpetual every time(M=5) ==> noop",
                 HistoryView::kFull, /*auto_activate=*/true);
  if (!db.RegisterClass(def).ok()) {
    state.SkipWithError("register failed");
    return;
  }
  TxnId t = db.Begin().value();
  for (int i = 0; i < num_objects; ++i) {
    (void)db.New(t, "obj");
  }
  (void)db.Commit(t);

  int64_t fired_before = static_cast<int64_t>(db.clock().firings());
  for (auto _ : state) {
    if (!db.AdvanceClock(3600 * 1000).ok()) {
      state.SkipWithError("advance failed");
      return;
    }
    db.txns().GarbageCollect();
  }
  state.SetItemsProcessed(static_cast<int64_t>(db.clock().firings()) -
                          fired_before);
  state.counters["objects"] = num_objects;
}
BENCHMARK(BM_ClockThroughEngine)->Arg(1)->Arg(16)->Arg(128);

}  // namespace
}  // namespace ode
