// Ingest-runtime throughput: events/sec through the sharded runtime as a
// function of shard count (1/2/4/8) and max batch size (1/16/128), against
// two single-threaded baselines (one txn per event, and hand-batched
// transactions). The batch axis is the interesting one on small machines:
// draining K events into one worker transaction amortises Begin/Commit and
// the commit-time event postings over the batch. The shard axis needs
// multiple cores to pay off; on a single-core host it mostly measures that
// sharding does not cost anything.
#include <benchmark/benchmark.h>

#include <vector>

#include "ode/database.h"
#include "runtime/ingest_runtime.h"

namespace ode {
namespace {

using runtime::IngestOptions;
using runtime::IngestRuntime;

constexpr size_t kObjects = 16;
constexpr int kEventsPerIter = 4096;

// An accumulator with a live counting trigger, so every event exercises
// the §5 pipeline (posting, automaton step, occasional firing), not just
// the transaction machinery.
ClassDef BenchClass() {
  ClassDef def("cell");
  def.AddAttr("v", Value(0));
  def.AddAttr("touches", Value(0));
  def.AddMethod(MethodDef{
      "add",
      {{"int", "d"}},
      MethodKind::kUpdate,
      [](MethodContext* ctx) -> Status {
        ODE_ASSIGN_OR_RETURN(Value v, ctx->Get("v"));
        ODE_ASSIGN_OR_RETURN(Value d, ctx->Arg("d"));
        ODE_ASSIGN_OR_RETURN(Value next, v.Add(d));
        return ctx->Set("v", next);
      }});
  def.AddTrigger("T1(): perpetual every 3 (after add) ==> count");
  // The trigger listens to method events only; skip the object-state
  // event categories (§3.1 lets classes turn them off) so the bench
  // measures ingest machinery, not postings nothing consumes.
  def.SetPostingPolicy(EventPostingPolicy{
      /*method_events=*/true, /*access_events=*/false,
      /*read_update_events=*/false});
  return def;
}

std::vector<Oid> Setup(Database* db) {
  (void)db->RegisterAction("count", [](const ActionContext& ctx) -> Status {
    Result<Value> t = ctx.db->PeekAttr(ctx.self, "touches");
    if (!t.ok()) return t.status();
    Result<Value> next = t->Add(Value(1));
    if (!next.ok()) return next.status();
    return ctx.db->SetAttr(ctx.txn, ctx.self, "touches", *next);
  });
  (void)db->RegisterClass(BenchClass());
  std::vector<Oid> oids;
  TxnId t = db->Begin().value();
  for (size_t i = 0; i < kObjects; ++i) {
    Oid oid = db->New(t, "cell").value();
    (void)db->ActivateTrigger(t, oid, "T1");
    oids.push_back(oid);
  }
  (void)db->Commit(t);
  return oids;
}

/// Baseline: the pre-runtime idiom — one transaction per event, one
/// thread, no queueing.
void BM_SingleThreadTxnPerEvent(benchmark::State& state) {
  Database db;
  std::vector<Oid> oids = Setup(&db);
  size_t next = 0;
  for (auto _ : state) {
    for (int i = 0; i < kEventsPerIter; ++i) {
      TxnId t = db.Begin().value();
      (void)db.Call(t, oids[next++ % kObjects], "add", {Value(1)});
      (void)db.Commit(t);
    }
    db.txns().GarbageCollect();
  }
  state.SetItemsProcessed(state.iterations() * kEventsPerIter);
}
BENCHMARK(BM_SingleThreadTxnPerEvent)->Unit(benchmark::kMillisecond);

/// Baseline: hand-batched transactions on one thread — isolates the
/// Begin/Commit amortisation from the runtime's queue + thread overhead.
void BM_SingleThreadBatchedTxn(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  Database db;
  std::vector<Oid> oids = Setup(&db);
  size_t next = 0;
  for (auto _ : state) {
    for (int i = 0; i < kEventsPerIter; i += batch) {
      TxnId t = db.Begin().value();
      for (int j = 0; j < batch && i + j < kEventsPerIter; ++j) {
        (void)db.Call(t, oids[next++ % kObjects], "add", {Value(1)});
      }
      (void)db.Commit(t);
    }
    db.txns().GarbageCollect();
  }
  state.SetItemsProcessed(state.iterations() * kEventsPerIter);
  state.counters["batch"] = batch;
}
BENCHMARK(BM_SingleThreadBatchedTxn)
    ->Arg(16)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

/// The runtime: post kEventsPerIter events round-robin, then Drain — the
/// barrier puts the full queue backlog inside the timed region, so
/// items/sec is end-to-end ingest throughput. UseRealTime because the
/// work happens on the shard workers, not the posting thread.
void BM_IngestRuntime(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  const size_t batch = static_cast<size_t>(state.range(1));
  Database db;
  std::vector<Oid> oids = Setup(&db);
  IngestOptions opts;
  opts.num_shards = shards;
  opts.max_batch = batch;
  opts.queue_capacity = 4096;
  opts.record_latency = false;  // Pure throughput; no clock reads per event.
  IngestRuntime rt(&db, opts);
  (void)rt.Start();
  size_t next = 0;
  for (auto _ : state) {
    for (int i = 0; i < kEventsPerIter; ++i) {
      (void)rt.Post(oids[next++ % kObjects], "add", {Value(1)});
    }
    (void)rt.Drain();
  }
  (void)rt.Stop();
  state.SetItemsProcessed(state.iterations() * kEventsPerIter);
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["batch"] = static_cast<double>(batch);
  runtime::RuntimeMetricsSnapshot m = rt.Metrics();
  state.counters["mean_batch"] = m.total.MeanBatch();
  state.counters["queue_hw"] = static_cast<double>(m.total.queue_high_water);
}
BENCHMARK(BM_IngestRuntime)
    ->ArgsProduct({{1, 2, 4, 8}, {1, 16, 128, 512}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace ode
