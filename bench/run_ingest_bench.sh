#!/usr/bin/env bash
# Runs the ingest benchmarks and records machine-readable reports:
#
#   BENCH_ingest.json      — in-process sharded runtime (bench_ingest)
#   BENCH_net_ingest.json  — loopback network stack (bench_net_ingest)
#
# Then checks the PR-3 acceptance bar: at every shards x batch point with
# batch >= 128, the loopback path must reach >= 50% of the in-process
# events/sec (bench_net_ingest carries its own in-process baseline so the
# ratio compares identical runtime settings within one process run).
#
# Usage: bench/run_ingest_bench.sh [build-dir] [output-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-.}"
REPS="${BENCH_REPS:-1}"

for bench in bench_ingest bench_net_ingest; do
  if [ ! -x "${BUILD_DIR}/bench/${bench}" ]; then
    echo "run_ingest_bench: ${BUILD_DIR}/bench/${bench} not built" >&2
    echo "  (cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} --target ${bench})" >&2
    exit 2
  fi
done

"${BUILD_DIR}/bench/bench_ingest" \
  --benchmark_repetitions="${REPS}" \
  --benchmark_out="${OUT_DIR}/BENCH_ingest.json" \
  --benchmark_out_format=json

"${BUILD_DIR}/bench/bench_net_ingest" \
  --benchmark_repetitions="${REPS}" \
  --benchmark_out="${OUT_DIR}/BENCH_net_ingest.json" \
  --benchmark_out_format=json

python3 - "${OUT_DIR}/BENCH_net_ingest.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

# items_per_second keyed by (name, shards, batch), aggregate rows skipped.
rates = {}
for b in doc["benchmarks"]:
    if b.get("run_type") != "iteration":
        continue
    base = b["name"].split("/")[0]
    key = (int(b["shards"]), int(b["batch"]))
    rates.setdefault(base, {})[key] = b["items_per_second"]

net = rates.get("BM_NetIngestLoopback", {})
ref = rates.get("BM_NetBaselineInProcess", {})
failures = []
print(f"{'shards':>6} {'batch':>6} {'net ev/s':>12} {'in-proc ev/s':>13} {'ratio':>6}")
for key in sorted(net):
    if key not in ref:
        continue
    ratio = net[key] / ref[key]
    shards, batch = key
    bar = " <-- FAIL (< 0.50 at batch >= 128)" if batch >= 128 and ratio < 0.5 else ""
    print(f"{shards:>6} {batch:>6} {net[key]:>12.0f} {ref[key]:>13.0f} {ratio:>6.2f}{bar}")
    if bar:
        failures.append(key)

if failures:
    print(f"run_ingest_bench: FAIL: loopback below 50% of in-process at {failures}")
    sys.exit(1)
print("run_ingest_bench: ok: loopback >= 50% of in-process at every batch >= 128 point")
EOF
