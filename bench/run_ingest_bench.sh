#!/usr/bin/env bash
# Runs the ingest benchmarks and records machine-readable reports:
#
#   BENCH_ingest.json      — in-process sharded runtime (bench_ingest)
#   BENCH_net_ingest.json  — loopback network stack (bench_net_ingest)
#   BENCH_wal.json         — durable (WAL-on) runtime (bench_wal)
#   BENCH_seq.json         — class-scope sequencer scaling (bench_seq)
#
# Then checks three acceptance bars, each computed against a baseline
# carried inside the same benchmark binary so the ratio compares identical
# runtime settings within one process run:
#   PR-3: at every shards x batch point with batch >= 128, the loopback
#         path must reach >= 50% of the in-process events/sec.
#   PR-6: at every batch >= 128 point, durable ingest under the default
#         group-commit policy (fsync every-N) must reach >= 50% of the
#         in-memory (WAL-off) events/sec.
#   PR-8: class-scope ingest through the sequencer must scale: 4 shards
#         >= 2x the 1-shard events/sec on hosts with >= 4 CPUs (on
#         smaller hosts the bar degrades to "sharding must not collapse":
#         4-shard >= 0.6x 1-shard).
#   PR-10: no head-of-line blocking: with one peer wedged on a kBlock-full
#         shard, a healthy client must sustain >= 80% of its unstalled
#         loopback events/sec.
#
# Usage: bench/run_ingest_bench.sh [build-dir] [output-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-.}"
REPS="${BENCH_REPS:-1}"

for bench in bench_ingest bench_net_ingest bench_wal bench_seq; do
  if [ ! -x "${BUILD_DIR}/bench/${bench}" ]; then
    echo "run_ingest_bench: ${BUILD_DIR}/bench/${bench} not built" >&2
    echo "  (cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} --target ${bench})" >&2
    exit 2
  fi
done

"${BUILD_DIR}/bench/bench_ingest" \
  --benchmark_repetitions="${REPS}" \
  --benchmark_out="${OUT_DIR}/BENCH_ingest.json" \
  --benchmark_out_format=json

"${BUILD_DIR}/bench/bench_net_ingest" \
  --benchmark_repetitions="${REPS}" \
  --benchmark_out="${OUT_DIR}/BENCH_net_ingest.json" \
  --benchmark_out_format=json

"${BUILD_DIR}/bench/bench_wal" \
  --benchmark_repetitions="${REPS}" \
  --benchmark_out="${OUT_DIR}/BENCH_wal.json" \
  --benchmark_out_format=json

"${BUILD_DIR}/bench/bench_seq" \
  --benchmark_repetitions="${REPS}" \
  --benchmark_out="${OUT_DIR}/BENCH_seq.json" \
  --benchmark_out_format=json

python3 - "${OUT_DIR}/BENCH_net_ingest.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

# items_per_second keyed by (name, shards, batch), aggregate rows skipped.
rates = {}
for b in doc["benchmarks"]:
    if b.get("run_type") != "iteration":
        continue
    base = b["name"].split("/")[0]
    key = (int(b["shards"]), int(b["batch"]))
    rates.setdefault(base, {})[key] = b["items_per_second"]

net = rates.get("BM_NetIngestLoopback", {})
ref = rates.get("BM_NetBaselineInProcess", {})
failures = []
print(f"{'shards':>6} {'batch':>6} {'net ev/s':>12} {'in-proc ev/s':>13} {'ratio':>6}")
for key in sorted(net):
    if key not in ref:
        continue
    ratio = net[key] / ref[key]
    shards, batch = key
    bar = " <-- FAIL (< 0.50 at batch >= 128)" if batch >= 128 and ratio < 0.5 else ""
    print(f"{shards:>6} {batch:>6} {net[key]:>12.0f} {ref[key]:>13.0f} {ratio:>6.2f}{bar}")
    if bar:
        failures.append(key)

if failures:
    print(f"run_ingest_bench: FAIL: loopback below 50% of in-process at {failures}")
    sys.exit(1)
print("run_ingest_bench: ok: loopback >= 50% of in-process at every batch >= 128 point")

# PR-10: a peer parked on a kBlock-full shard must not drag down healthy
# connections — the stalled-peer variant holds >= 80% of the baseline
# (means across repetitions, since single runs on a loaded host are noisy).
def mean_rate(name):
    vals = [b["items_per_second"] for b in doc["benchmarks"]
            if b.get("run_type") == "iteration"
            and b["name"].split("/")[0] == name]
    return sum(vals) / len(vals) if vals else 0.0

base_rate = mean_rate("BM_NetHealthyBaseline")
stalled_rate = mean_rate("BM_NetHealthyWithStalledPeer")
if base_rate == 0.0 or stalled_rate == 0.0:
    print("run_ingest_bench: FAIL: BENCH_net_ingest.json missing stalled-peer rows")
    sys.exit(1)
ratio = stalled_rate / base_rate
print(f"stalled-peer: healthy {base_rate:.0f} ev/s, with stalled peer "
      f"{stalled_rate:.0f} ev/s, ratio {ratio:.2f}")
if ratio < 0.8:
    print(f"run_ingest_bench: FAIL: stalled-peer ratio {ratio:.2f} < 0.80 "
          "(head-of-line blocking)")
    sys.exit(1)
print("run_ingest_bench: ok: healthy connections hold >= 80% of baseline with a stalled peer")
EOF

python3 - "${OUT_DIR}/BENCH_wal.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

rates = {}
for b in doc["benchmarks"]:
    if b.get("run_type") != "iteration":
        continue
    base = b["name"].split("/")[0]
    key = (int(b["shards"]), int(b["batch"]))
    rates.setdefault(base, {})[key] = b["items_per_second"]

durable = rates.get("BM_WalDurableEveryN", {})
ref = rates.get("BM_WalBaselineInMemory", {})
failures = []
print(f"{'shards':>6} {'batch':>6} {'wal ev/s':>12} {'in-mem ev/s':>13} {'ratio':>6}")
for key in sorted(durable):
    if key not in ref:
        continue
    ratio = durable[key] / ref[key]
    shards, batch = key
    bar = " <-- FAIL (< 0.50 at batch >= 128)" if batch >= 128 and ratio < 0.5 else ""
    print(f"{shards:>6} {batch:>6} {durable[key]:>12.0f} {ref[key]:>13.0f} {ratio:>6.2f}{bar}")
    if bar:
        failures.append(key)

if failures:
    print(f"run_ingest_bench: FAIL: durable ingest below 50% of in-memory at {failures}")
    sys.exit(1)
print("run_ingest_bench: ok: durable ingest >= 50% of in-memory at every batch >= 128 point")
EOF

python3 - "${OUT_DIR}/BENCH_seq.json" <<'EOF'
import json
import os
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

rates = {}
for b in doc["benchmarks"]:
    if b.get("run_type") != "iteration":
        continue
    base = b["name"].split("/")[0]
    rates.setdefault(base, {})[int(b["shards"])] = b["items_per_second"]

seq = rates.get("BM_SeqClassScope", {})
inline = rates.get("BM_SeqLegacyInline", {})
print(f"{'shards':>6} {'seq ev/s':>12} {'inline ev/s':>12} {'vs 1-shard':>10}")
for shards in sorted(seq):
    scale = seq[shards] / seq[1] if 1 in seq and seq[1] > 0 else 0.0
    inl = inline.get(shards, 0.0)
    print(f"{shards:>6} {seq[shards]:>12.0f} {inl:>12.0f} {scale:>10.2f}")

cpus = os.cpu_count() or 1
# The shard axis needs cores: the full >= 2x bar only means something when
# 4 shard workers (plus the merge thread) can actually run in parallel.
bar, why = (2.0, ">= 4 CPUs") if cpus >= 4 else (0.6, f"only {cpus} CPU(s); no-collapse bar")
if 1 not in seq or 4 not in seq:
    print("run_ingest_bench: FAIL: BENCH_seq.json missing 1- or 4-shard class-scope rows")
    sys.exit(1)
ratio = seq[4] / seq[1]
if ratio < bar:
    print(f"run_ingest_bench: FAIL: class-scope 4-shard/1-shard = {ratio:.2f} < {bar} ({why})")
    sys.exit(1)
print(f"run_ingest_bench: ok: class-scope 4-shard/1-shard = {ratio:.2f} >= {bar} ({why})")
EOF
