// Durable-ingest throughput: events/sec through the sharded runtime with
// the per-shard WAL enabled, as a function of fsync policy (never /
// every-N / interval / always) and max batch size, against an in-memory
// (WAL-off) baseline in the same process. The acceptance bar for the
// durability PR: with the default group-commit policy (every-N) and
// batch >= 128, durable ingest must reach >= 50% of the in-memory rate —
// the WAL append is a buffered sequential write, and the fsync amortises
// across the batch exactly like Begin/Commit does.
//
// Each benchmark writes into a fresh mkdtemp directory under $TMPDIR (or
// /tmp) and removes it afterwards; nothing persists between runs.
#include <benchmark/benchmark.h>
#include <stdlib.h>

#include <string>
#include <vector>

#include "ode/database.h"
#include "runtime/ingest_runtime.h"
#include "wal/log_format.h"

namespace ode {
namespace {

using runtime::IngestOptions;
using runtime::IngestRuntime;

constexpr size_t kObjects = 16;
constexpr int kEventsPerIter = 4096;

class TempDir {
 public:
  TempDir() {
    const char* base = getenv("TMPDIR");
    std::string tmpl = std::string(base != nullptr ? base : "/tmp") +
                       "/ode-bench-wal-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    char* got = mkdtemp(buf.data());
    path_ = got != nullptr ? got : "";
  }
  ~TempDir() {
    if (!path_.empty()) {
      std::string cmd = "rm -rf '" + path_ + "'";
      (void)!system(cmd.c_str());
    }
  }
  bool ok() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

ClassDef BenchClass() {
  ClassDef def("cell");
  def.AddAttr("v", Value(0));
  def.AddAttr("touches", Value(0));
  def.AddMethod(MethodDef{
      "add",
      {{"int", "d"}},
      MethodKind::kUpdate,
      [](MethodContext* ctx) -> Status {
        ODE_ASSIGN_OR_RETURN(Value v, ctx->Get("v"));
        ODE_ASSIGN_OR_RETURN(Value d, ctx->Arg("d"));
        ODE_ASSIGN_OR_RETURN(Value next, v.Add(d));
        return ctx->Set("v", next);
      }});
  def.AddTrigger("T1(): perpetual every 3 (after add) ==> count");
  def.SetPostingPolicy(EventPostingPolicy{
      /*method_events=*/true, /*access_events=*/false,
      /*read_update_events=*/false});
  return def;
}

std::vector<Oid> Setup(Database* db) {
  (void)db->RegisterAction("count", [](const ActionContext& ctx) -> Status {
    Result<Value> t = ctx.db->PeekAttr(ctx.self, "touches");
    if (!t.ok()) return t.status();
    Result<Value> next = t->Add(Value(1));
    if (!next.ok()) return next.status();
    return ctx.db->SetAttr(ctx.txn, ctx.self, "touches", *next);
  });
  (void)db->RegisterClass(BenchClass());
  std::vector<Oid> oids;
  TxnId t = db->Begin().value();
  for (size_t i = 0; i < kObjects; ++i) {
    Oid oid = db->New(t, "cell").value();
    (void)db->ActivateTrigger(t, oid, "T1");
    oids.push_back(oid);
  }
  (void)db->Commit(t);
  return oids;
}

/// Runs the shared post-then-drain loop; `opts` decides whether the WAL
/// is on and how it syncs.
void RunIngest(benchmark::State& state, IngestOptions opts, size_t shards,
               size_t batch) {
  Database db;
  std::vector<Oid> oids = Setup(&db);
  opts.num_shards = shards;
  opts.max_batch = batch;
  opts.queue_capacity = 4096;
  opts.record_latency = false;
  IngestRuntime rt(&db, opts);
  (void)rt.Start();
  size_t next = 0;
  for (auto _ : state) {
    for (int i = 0; i < kEventsPerIter; ++i) {
      (void)rt.Post(oids[next++ % kObjects], "add", {Value(1)});
    }
    (void)rt.Drain();
  }
  (void)rt.Stop();
  state.SetItemsProcessed(state.iterations() * kEventsPerIter);
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["batch"] = static_cast<double>(batch);
  runtime::RuntimeMetricsSnapshot m = rt.Metrics();
  state.counters["wal_appends"] = static_cast<double>(m.wal.appends);
  state.counters["wal_fsyncs"] = static_cast<double>(m.wal.fsyncs);
  state.counters["wal_bytes"] = static_cast<double>(m.wal.bytes_written);
}

/// Baseline: same runtime, WAL off. The durable variants are measured
/// against this within one process run.
void BM_WalBaselineInMemory(benchmark::State& state) {
  RunIngest(state, IngestOptions{}, static_cast<size_t>(state.range(0)),
            static_cast<size_t>(state.range(1)));
}
BENCHMARK(BM_WalBaselineInMemory)
    ->ArgsProduct({{2}, {1, 16, 128, 512}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void RunDurable(benchmark::State& state, wal::FsyncPolicy policy) {
  TempDir dir;
  if (!dir.ok()) {
    state.SkipWithError("mkdtemp failed");
    return;
  }
  IngestOptions opts;
  opts.durability.dir = dir.path();
  opts.durability.fsync = policy;
  RunIngest(state, opts, static_cast<size_t>(state.range(0)),
            static_cast<size_t>(state.range(1)));
}

/// Group commit (default): fsync once per 64 appends per shard.
void BM_WalDurableEveryN(benchmark::State& state) {
  RunDurable(state, wal::FsyncPolicy::kEveryN);
}
BENCHMARK(BM_WalDurableEveryN)
    ->ArgsProduct({{2}, {1, 16, 128, 512}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Interval-based: fsync when 5ms have passed since the last sync.
void BM_WalDurableInterval(benchmark::State& state) {
  RunDurable(state, wal::FsyncPolicy::kEveryMs);
}
BENCHMARK(BM_WalDurableInterval)
    ->ArgsProduct({{2}, {1, 16, 128, 512}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// ACK-implies-durable: fsync after every append. The honest price of
/// the strongest guarantee — expected to be far below the bar at batch 1.
void BM_WalDurableAlways(benchmark::State& state) {
  RunDurable(state, wal::FsyncPolicy::kAlways);
}
BENCHMARK(BM_WalDurableAlways)
    ->ArgsProduct({{2}, {1, 16, 128, 512}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Append-only, never fsync (the OS decides): isolates the cost of the
/// record encoding + buffered write from the disk flush.
void BM_WalDurableNever(benchmark::State& state) {
  RunDurable(state, wal::FsyncPolicy::kNever);
}
BENCHMARK(BM_WalDurableNever)
    ->ArgsProduct({{2}, {1, 16, 128, 512}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace ode
