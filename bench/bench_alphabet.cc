// Experiment E5: the §5 mask disjointness rewrite. k distinct masks on one
// basic event expand into 2^k micro-symbols; classification of a posted
// event costs k mask evaluations and one table index. Measures both the
// alphabet blowup and the per-event classification cost as k grows.
#include <benchmark/benchmark.h>

#include "compile/compiler.h"
#include "lang/event_parser.h"
#include "mask/mask_eval.h"

namespace ode {
namespace {

/// after f(x) && x > 0 | after f(x) && x > 1 | ... (k masks).
std::string MaskedUnion(int k) {
  std::string out;
  for (int i = 0; i < k; ++i) {
    if (i > 0) out += " | ";
    out += "after f(x) && x > " + std::to_string(i);
  }
  return out;
}

void BM_MaskClassification(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  EventExprPtr expr = ParseEvent(MaskedUnion(k)).value();
  CompiledEvent compiled = CompileEvent(expr, CompileOptions()).value();

  PostedEvent event = MakePostedMethod(EventQualifier::kAfter, "f",
                                       {{"x", Value(k / 2)}});
  Alphabet::MaskEvalFn eval = [](const MaskSlot& slot,
                                 const PostedEvent& ev) -> Result<bool> {
    SimpleMaskEnv env;
    for (size_t i = 0; i < slot.params.size() && i < ev.args.size(); ++i) {
      env.Bind(slot.params[i].name, ev.args[i].value);
    }
    return EvalMaskBool(*slot.mask, env);
  };

  for (auto _ : state) {
    Result<SymbolId> sym = compiled.alphabet.Classify(event, eval);
    benchmark::DoNotOptimize(sym);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["masks"] = k;
  state.counters["alphabet"] = static_cast<double>(compiled.alphabet.size());
  state.counters["dfa_states"] =
      static_cast<double>(compiled.dfa.num_states());
}
BENCHMARK(BM_MaskClassification)->DenseRange(1, 8);

void BM_AlphabetBuild(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  EventExprPtr expr = ParseEvent(MaskedUnion(k)).value();
  for (auto _ : state) {
    Result<Alphabet> alphabet = Alphabet::Build(*expr);
    benchmark::DoNotOptimize(alphabet);
  }
  state.counters["masks"] = k;
}
BENCHMARK(BM_AlphabetBuild)->DenseRange(1, 8);

}  // namespace
}  // namespace ode
