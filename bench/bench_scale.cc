// Experiment E14: scaling with object and trigger population. The §5
// design shares one transition table per (class, trigger) and keeps one
// integer per active (object, trigger) pair, so posting throughput should
// be flat in the number of *objects* and linear only in the number of
// *active triggers on the posted-to object*.
#include <benchmark/benchmark.h>

#include <random>
#include <string>

#include "compile/combined.h"
#include "ode/database.h"

namespace ode {
namespace {

ClassDef ScaleClass(int num_triggers) {
  ClassDef def("scale");
  def.AddAttr("n", Value(0));
  def.AddMethod(MethodDef{"bump", {}, MethodKind::kUpdate, nullptr});
  for (int i = 0; i < num_triggers; ++i) {
    // Distinct automata so no sharing shortcut is possible across triggers.
    def.AddTrigger("T" + std::to_string(i) + "(): perpetual choose " +
                       std::to_string(1000 + i) + " (after bump) ==> noop",
                   HistoryView::kFull, /*auto_activate=*/true);
  }
  return def;
}

void BM_PostWithTriggers(benchmark::State& state) {
  const int num_triggers = static_cast<int>(state.range(0));
  DatabaseOptions opts;
  opts.record_histories = false;
  Database db(opts);
  (void)db.RegisterAction("noop", [](const ActionContext&) -> Status {
    return Status::OK();
  });
  if (!db.RegisterClass(ScaleClass(num_triggers)).ok()) {
    state.SkipWithError("register failed");
    return;
  }
  TxnId t = db.Begin().value();
  Oid obj = db.New(t, "scale").value();

  // One long transaction: measure pure posting cost per method call.
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.Call(t, obj, "bump"));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["triggers"] = num_triggers;
}
BENCHMARK(BM_PostWithTriggers)->Arg(0)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_PostManyObjects(benchmark::State& state) {
  // Population size must not affect per-post cost (state is per-object,
  // tables shared).
  const int num_objects = static_cast<int>(state.range(0));
  DatabaseOptions opts;
  opts.record_histories = false;
  Database db(opts);
  (void)db.RegisterAction("noop", [](const ActionContext&) -> Status {
    return Status::OK();
  });
  if (!db.RegisterClass(ScaleClass(4)).ok()) {
    state.SkipWithError("register failed");
    return;
  }
  TxnId t = db.Begin().value();
  std::vector<Oid> objects;
  objects.reserve(num_objects);
  for (int i = 0; i < num_objects; ++i) {
    objects.push_back(db.New(t, "scale").value());
  }

  size_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.Call(t, objects[next], "bump"));
    next = (next + 1) % objects.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["objects"] = num_objects;
  // Shared table storage is independent of the object count; per-object
  // monitoring state is 4 triggers x 4 bytes.
  state.counters["per_object_bytes"] = 4.0 * sizeof(int32_t);
}
BENCHMARK(BM_PostManyObjects)->Arg(1)->Arg(64)->Arg(4096);

// §5 footnote-5 ablation: K triggers monitored by one combined product
// automaton (one step/event) vs. K separate automata (K steps/event).
std::vector<TriggerSpec> GroupSpecs(int k) {
  std::vector<TriggerSpec> specs;
  for (int i = 0; i < k; ++i) {
    Result<TriggerSpec> spec = ParseTriggerSpec(
        "T" + std::to_string(i) + "(): perpetual every " +
        std::to_string(i + 2) + " (after f | before g)");
    specs.push_back(*spec);
  }
  return specs;
}

void BM_DetectSeparate(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  CombinedProgram::Options opts;
  CombinedProgram combined =
      CombinedProgram::Build(GroupSpecs(k), opts).value();
  std::mt19937 rng(3);
  std::vector<SymbolId> history(512);
  for (SymbolId& s : history) {
    s = static_cast<SymbolId>(rng() % combined.alphabet().size());
  }
  const std::vector<Dfa>& dfas = combined.component_dfas();
  for (auto _ : state) {
    std::vector<Dfa::State> states(dfas.size());
    for (size_t i = 0; i < dfas.size(); ++i) states[i] = dfas[i].start();
    int fires = 0;
    for (SymbolId sym : history) {
      for (size_t i = 0; i < dfas.size(); ++i) {
        states[i] = dfas[i].Step(states[i], sym);
        fires += dfas[i].accepting(states[i]) ? 1 : 0;
      }
    }
    benchmark::DoNotOptimize(fires);
  }
  state.SetItemsProcessed(state.iterations() * 512);
  size_t bytes = 0;
  for (const Dfa& d : dfas) bytes += d.TableBytes();
  state.counters["triggers"] = k;
  state.counters["table_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_DetectSeparate)->Arg(2)->Arg(4)->Arg(8);

void BM_DetectCombined(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  CombinedProgram::Options opts;
  CombinedProgram combined =
      CombinedProgram::Build(GroupSpecs(k), opts).value();
  std::mt19937 rng(3);
  std::vector<SymbolId> history(512);
  for (SymbolId& s : history) {
    s = static_cast<SymbolId>(rng() % combined.alphabet().size());
  }
  for (auto _ : state) {
    Dfa::State s = combined.dfa().start();
    int fires = 0;
    for (SymbolId sym : history) {
      s = combined.dfa().Step(s, sym);
      fires += __builtin_popcountll(combined.AcceptMask(s));
    }
    benchmark::DoNotOptimize(fires);
  }
  state.SetItemsProcessed(state.iterations() * 512);
  state.counters["triggers"] = k;
  state.counters["product_states"] =
      static_cast<double>(combined.dfa().num_states());
  state.counters["table_bytes"] =
      static_cast<double>(combined.CombinedTableBytes());
}
BENCHMARK(BM_DetectCombined)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace ode
