// Experiment E4: the §5 storage claim — "the extra storage required for
// storing the trigger state is small — one word per active trigger per
// object". Measures per-object monitoring state for the three detector
// families after consuming a history of growing length:
//   * DFA: one 4-byte integer, constant.
//   * Tree baseline: live instance nodes, grows with initiator count.
//   * Naive baseline: the whole history.
#include <benchmark/benchmark.h>

#include "baseline/naive_detector.h"
#include "baseline/tree_detector.h"
#include "bench_util.h"
#include "compile/trigger_program.h"

namespace ode {
namespace {

using bench_util::CompileNamed;
using bench_util::ExpressionSuite;
using bench_util::MakeHistory;

void BM_StoragePerObject(benchmark::State& state) {
  const int expr_idx = static_cast<int>(state.range(0));
  const size_t history_len = static_cast<size_t>(state.range(1));
  EventExprPtr expr =
      ParseEvent(ExpressionSuite()[expr_idx].text).value();
  CompiledEvent compiled = CompileNamed(expr_idx);
  std::vector<SymbolId> history =
      MakeHistory(compiled.alphabet.size(), history_len, 7);

  TreeDetector::Options opts;
  opts.max_instances = 1 << 24;
  size_t tree_instances = 0;
  for (auto _ : state) {
    auto tree = TreeDetector::Create(expr, &compiled.alphabet, opts).value();
    Dfa::State s = compiled.dfa.start();
    for (SymbolId sym : history) {
      s = compiled.dfa.Step(s, sym);
      (void)tree->Advance(sym);
    }
    tree_instances = tree->NumInstances();
    benchmark::DoNotOptimize(s);
  }
  state.SetLabel(ExpressionSuite()[expr_idx].name);
  // Per-object bytes after `history_len` events.
  state.counters["dfa_bytes"] =
      static_cast<double>(TriggerProgram::PerObjectBytes());
  state.counters["tree_nodes"] = static_cast<double>(tree_instances);
  state.counters["naive_bytes"] =
      static_cast<double>(history_len * sizeof(SymbolId));
  // The shared (per-class, amortized over all instances) table.
  state.counters["shared_table_bytes"] =
      static_cast<double>(compiled.dfa.TableBytes());
}

void StorageArgs(benchmark::internal::Benchmark* b) {
  for (int expr : {0, 3, 9}) {
    for (int len : {128, 1024, 8192}) {
      b->Args({expr, len});
    }
  }
}
BENCHMARK(BM_StoragePerObject)->Apply(StorageArgs);

}  // namespace
}  // namespace ode
