// Experiment E8 (quantified): cost of the §7 coupling modes through the
// full engine — transactions per second for a trigger in each coupling
// mode, including the gated-subevent machinery that immediate-condition
// modes require.
#include <benchmark/benchmark.h>

#include "ode/database.h"
#include "trigger/coupling.h"

namespace ode {
namespace {

ClassDef ObjClass() {
  ClassDef def("obj");
  def.AddAttr("n", Value(0));
  def.AddAttr("ready", Value(true));
  def.AddMethod(MethodDef{"bump",
                          {},
                          MethodKind::kUpdate,
                          [](MethodContext* ctx) -> Status {
                            ODE_ASSIGN_OR_RETURN(Value n, ctx->Get("n"));
                            ODE_ASSIGN_OR_RETURN(Value nx, n.Add(Value(1)));
                            return ctx->Set("n", nx);
                          }});
  return def;
}

void BM_CouplingMode(benchmark::State& state) {
  const CouplingMode mode = static_cast<CouplingMode>(state.range(0));
  EventExprPtr event =
      BuildCouplingFromText(mode, "after bump", "ready").value();

  DatabaseOptions opts;
  opts.record_histories = false;  // Pure engine cost.
  Database db(opts);
  (void)db.RegisterAction("noop", [](const ActionContext&) -> Status {
    return Status::OK();
  });
  ClassDef def = ObjClass();
  TriggerSpec spec;
  spec.name = "K";
  spec.perpetual = true;
  spec.event = event;
  spec.action = "noop";
  def.AddTrigger(spec, HistoryView::kFull, /*auto_activate=*/true);
  if (!db.RegisterClass(def).ok()) {
    state.SkipWithError("class registration failed");
    return;
  }
  TxnId setup = db.Begin().value();
  Oid obj = db.New(setup, "obj").value();
  (void)db.Commit(setup);

  int64_t since_gc = 0;
  for (auto _ : state) {
    TxnId t = db.Begin().value();
    (void)db.Call(t, obj, "bump");
    (void)db.Commit(t);
    if (++since_gc == 1024) {
      db.txns().GarbageCollect();
      since_gc = 0;
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::string(CouplingModeName(mode)));
  state.counters["fired"] = static_cast<double>(db.FireCount(obj, "K"));
  db.txns().GarbageCollect();
}
BENCHMARK(BM_CouplingMode)->DenseRange(1, 9);

// Baseline: the same transaction loop with no trigger at all.
void BM_NoTriggerTxn(benchmark::State& state) {
  DatabaseOptions opts;
  opts.record_histories = false;
  Database db(opts);
  (void)db.RegisterClass(ObjClass());
  TxnId setup = db.Begin().value();
  Oid obj = db.New(setup, "obj").value();
  (void)db.Commit(setup);
  int64_t since_gc = 0;
  for (auto _ : state) {
    TxnId t = db.Begin().value();
    (void)db.Call(t, obj, "bump");
    (void)db.Commit(t);
    if (++since_gc == 1024) {
      db.txns().GarbageCollect();
      since_gc = 0;
    }
  }
  state.SetItemsProcessed(state.iterations());
  db.txns().GarbageCollect();
}
BENCHMARK(BM_NoTriggerTxn);

}  // namespace
}  // namespace ode
