// Experiment E3: the paper's §5 efficiency claim. Event detection with the
// compiled DFA costs one table lookup per posted event, independent of
// history length; the naive §4 re-evaluation grows with the history; the
// Snoop-style tree accumulates instances. Reported as ns per event over a
// fixed-length history.
#include <benchmark/benchmark.h>

#include "baseline/naive_detector.h"
#include "baseline/tree_detector.h"
#include "bench_util.h"

namespace ode {
namespace {

using bench_util::CompileNamed;
using bench_util::ExpressionSuite;
using bench_util::MakeHistory;

void BM_DfaDetect(benchmark::State& state) {
  const int expr_idx = static_cast<int>(state.range(0));
  const size_t history_len = static_cast<size_t>(state.range(1));
  CompiledEvent compiled = CompileNamed(expr_idx);
  std::vector<SymbolId> history =
      MakeHistory(compiled.alphabet.size(), history_len, 42);

  for (auto _ : state) {
    Dfa::State s = compiled.dfa.start();
    int fires = 0;
    for (SymbolId sym : history) {
      s = compiled.dfa.Step(s, sym);
      fires += compiled.dfa.accepting(s) ? 1 : 0;
    }
    benchmark::DoNotOptimize(fires);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(history_len));
  state.SetLabel(ExpressionSuite()[expr_idx].name);
  state.counters["dfa_states"] =
      static_cast<double>(compiled.dfa.num_states());
}

void BM_NaiveDetect(benchmark::State& state) {
  const int expr_idx = static_cast<int>(state.range(0));
  const size_t history_len = static_cast<size_t>(state.range(1));
  EventExprPtr expr =
      ParseEvent(ExpressionSuite()[expr_idx].text).value();
  CompiledEvent compiled = CompileNamed(expr_idx);
  std::vector<SymbolId> history =
      MakeHistory(compiled.alphabet.size(), history_len, 42);

  for (auto _ : state) {
    NaiveDetector naive(expr, &compiled.alphabet);
    int fires = 0;
    for (SymbolId sym : history) {
      Result<bool> r = naive.Advance(sym);
      fires += (r.ok() && *r) ? 1 : 0;
    }
    benchmark::DoNotOptimize(fires);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(history_len));
  state.SetLabel(ExpressionSuite()[expr_idx].name);
}

void BM_TreeDetect(benchmark::State& state) {
  const int expr_idx = static_cast<int>(state.range(0));
  const size_t history_len = static_cast<size_t>(state.range(1));
  EventExprPtr expr =
      ParseEvent(ExpressionSuite()[expr_idx].text).value();
  CompiledEvent compiled = CompileNamed(expr_idx);
  std::vector<SymbolId> history =
      MakeHistory(compiled.alphabet.size(), history_len, 42);
  TreeDetector::Options opts;
  opts.max_instances = 1 << 24;

  size_t final_instances = 0;
  for (auto _ : state) {
    auto tree = TreeDetector::Create(expr, &compiled.alphabet, opts).value();
    int fires = 0;
    for (SymbolId sym : history) {
      Result<bool> r = tree->Advance(sym);
      if (!r.ok()) break;
      fires += *r ? 1 : 0;
    }
    final_instances = tree->NumInstances();
    benchmark::DoNotOptimize(fires);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(history_len));
  state.SetLabel(ExpressionSuite()[expr_idx].name);
  state.counters["instances"] = static_cast<double>(final_instances);
}

void DetectionArgs(benchmark::internal::Benchmark* b) {
  for (int expr : {0, 3, 5, 9, 11}) {
    for (int len : {64, 256, 1024}) {
      b->Args({expr, len});
    }
  }
}

// The naive detector is quadratic-ish; keep its histories shorter.
void NaiveArgs(benchmark::internal::Benchmark* b) {
  for (int expr : {0, 3, 5, 9, 11}) {
    for (int len : {64, 256}) {
      b->Args({expr, len});
    }
  }
}

BENCHMARK(BM_DfaDetect)->Apply(DetectionArgs);
BENCHMARK(BM_NaiveDetect)->Apply(NaiveArgs);
BENCHMARK(BM_TreeDetect)->Apply(NaiveArgs);

// Gated-subevent ablation: per-event cost with 0..3 gates (each gate is
// one extra sub-DFA step plus a mask evaluation when its automaton
// accepts; here the mask outcome is a constant, isolating the mechanism).
void BM_GatedDetect(benchmark::State& state) {
  const int gates = static_cast<int>(state.range(0));
  std::string text = "relative(after x, after y)";
  const char* gated_parts[] = {
      "fa((after a | after x) && m1, after y, after a)",
      "fa((after b | after y) && m2, after x, after b)",
      "fa((after c | after x) && m3, after y, after c)"};
  for (int g = 0; g < gates; ++g) {
    text += " | ";
    text += gated_parts[g];
  }
  EventExprPtr expr = ParseEvent(text).value();
  CompiledEvent compiled = CompileEvent(expr, CompileOptions()).value();
  std::vector<SymbolId> history =
      MakeHistory(compiled.alphabet.size(), 512, 11);

  for (auto _ : state) {
    Dfa::State s = compiled.dfa.start();
    std::vector<int32_t> gate_states(compiled.gates.size());
    for (size_t g = 0; g < compiled.gates.size(); ++g) {
      gate_states[g] = compiled.gates[g].dfa.start();
    }
    int fires = 0;
    for (SymbolId sym : history) {
      uint32_t bits = 0;
      for (size_t g = 0; g < compiled.gates.size(); ++g) {
        SymbolId ext = compiled.ExtendSymbol(sym, bits);
        gate_states[g] = compiled.gates[g].dfa.Step(gate_states[g], ext);
        if (compiled.gates[g].dfa.accepting(gate_states[g])) {
          bits |= (1u << g);  // Mask constantly true.
        }
      }
      s = compiled.dfa.Step(s, compiled.ExtendSymbol(sym, bits));
      fires += compiled.dfa.accepting(s) ? 1 : 0;
    }
    benchmark::DoNotOptimize(fires);
  }
  state.SetItemsProcessed(state.iterations() * 512);
  state.counters["gates"] = gates;
  state.counters["ext_alphabet"] =
      static_cast<double>(compiled.extended_alphabet_size());
}
BENCHMARK(BM_GatedDetect)->DenseRange(0, 3);

}  // namespace
}  // namespace ode
