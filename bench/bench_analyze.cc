// Analyzer throughput over a generated 1000-trigger rulebase, with a
// per-layer breakdown: parse, layer-1 spec checks, compile + automaton
// checks (the full per-trigger pipeline), whole-source analysis without
// pairwise, and the pairwise+grouping sweep over a 64-trigger slice
// (pairwise is quadratic; measuring it over the full rulebase would
// measure only itself).
//
// Plain main() rather than google-benchmark: the deliverable is
// BENCH_analyze.json (specs/sec per layer), not a time-per-iteration
// table. Usage: bench_analyze [output.json] [n_triggers]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analyze/analyzer.h"
#include "analyze/cascade.h"
#include "analyze/spec_check.h"
#include "common/strutil.h"
#include "lang/trigger_spec.h"

namespace ode {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

/// One generated declaration. The shapes cycle through the operator
/// repertoire so compilation cost is representative, and the method pool
/// keeps alphabets small but overlapping (pairwise work is real).
std::string MakeTrigger(size_t i) {
  static const char* kMethods[] = {"deposit", "withdraw", "audit",
                                   "restock", "take",     "close"};
  const char* m1 = kMethods[i % 6];
  const char* m2 = kMethods[(i / 6 + 1) % 6];
  switch (i % 7) {
    case 0:
      return StrFormat("t%zu(): after %s ==> log", i, m1);
    case 1:
      return StrFormat("t%zu(): after %s ; after %s ==> log", i, m1, m2);
    case 2:
      return StrFormat("t%zu(): every %zu (after %s) ==> log", i, 2 + i % 4,
                       m1);
    case 3:
      return StrFormat("t%zu(): after %s(q) && q > %zu ==> log", i, m1,
                       i % 100);
    case 4:
      return StrFormat("t%zu(): after %s | after %s ==> log", i, m1, m2);
    case 5:
      return StrFormat("t%zu(): relative 2 (after %s) ==> log", i, m1);
    default:
      return StrFormat("t%zu(): (after %s ; after %s) && q > %zu ==> log", i,
                       m1, m2, i % 50);
  }
}

std::string MakeRulebase(size_t n) {
  std::string source;
  for (size_t i = 0; i < n; ++i) {
    source += MakeTrigger(i);
    source += "\n\n";
  }
  return source;
}

int Run(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_analyze.json";
  size_t n = argc > 2 ? static_cast<size_t>(std::atol(argv[2])) : 1000;

  std::string source = MakeRulebase(n);

  // Layer 0: parse.
  Clock::time_point t0 = Clock::now();
  std::vector<TriggerSpec> specs;
  specs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Result<TriggerSpec> spec = ParseTriggerSpec(MakeTrigger(i));
    if (!spec.ok()) {
      std::fprintf(stderr, "generated trigger %zu does not parse: %s\n", i,
                   spec.status().ToString().c_str());
      return 1;
    }
    specs.push_back(std::move(*spec));
  }
  Clock::time_point t1 = Clock::now();
  double parse_s = Seconds(t0, t1);

  // Layer 1: spec checks (AST + masks, no automata).
  t0 = Clock::now();
  size_t layer1_diags = 0;
  for (const TriggerSpec& spec : specs) {
    std::vector<Diagnostic> diags;
    CheckTriggerSpec(spec, SpecCheckContext{}, &diags);
    layer1_diags += diags.size();
  }
  t1 = Clock::now();
  double spec_check_s = Seconds(t0, t1);

  // Layer 2: the full per-trigger pipeline (compile, automaton checks,
  // cost report). Witnesses off, so the layer timings stay comparable
  // with earlier runs; the witness engine is measured separately below.
  AnalyzeOptions witness_off;
  witness_off.witnesses = false;
  t0 = Clock::now();
  size_t compiled = 0;
  for (const TriggerSpec& spec : specs) {
    TriggerAnalysis ta = AnalyzeTrigger(spec, witness_off);
    compiled += ta.compiled ? 1 : 0;
  }
  t1 = Clock::now();
  double automaton_s = Seconds(t0, t1);

  // Whole-source analysis, pairwise off: what `ode-lint --no-pairwise
  // --witness=off` does per file (split, parse, per-trigger layers).
  AnalyzeOptions no_pairwise = witness_off;
  no_pairwise.pairwise_checks = false;
  t0 = Clock::now();
  AnalysisReport full = AnalyzeSpecSource(source, no_pairwise);
  t1 = Clock::now();
  double full_s = Seconds(t0, t1);

  // The witness engine: the same whole-source run with witnesses on. The
  // acceptance bar is a <= 2x slowdown of the full pipeline — witness
  // search only runs on triggers that produced a verdict, so it must not
  // dominate a clean-ish rulebase.
  AnalyzeOptions with_witness = no_pairwise;
  with_witness.witnesses = true;
  t0 = Clock::now();
  AnalysisReport witnessed = AnalyzeSpecSource(source, with_witness);
  t1 = Clock::now();
  double witness_s = Seconds(t0, t1);
  double witness_slowdown = witness_s / full_s;
  bool witness_ok = witness_slowdown <= 2.0;

  // Cascade analysis over the full rulebase: the same no-pairwise run
  // with an effects declaration for the shared `log` action, so the
  // triggering graph is built and every candidate source→target edge is
  // evaluated. All n triggers share one action and one (file) scope, so
  // the per-(target, action, class) memoization must collapse the n²
  // candidate evaluations to O(n) automaton work; the posted event
  // (`note_entry`) is one no generated trigger names, keeping the graph
  // sparse like a production rulebase (a dense graph is a T001 finding,
  // not a throughput scenario). Acceptance bar: <= 25% overhead on top
  // of the plain no-pairwise run.
  EffectMap effects;
  effects["log"] = ActionSignature{
      {ActionEffect::MakeMethod("note_entry", /*arity=*/-1)}};
  AnalyzeOptions with_cascade = no_pairwise;
  with_cascade.effects = &effects;
  t0 = Clock::now();
  AnalysisReport cascaded = AnalyzeSpecSource(source, with_cascade);
  t1 = Clock::now();
  double cascade_s = Seconds(t0, t1);
  double cascade_overhead = cascade_s / full_s - 1.0;
  bool cascade_ok = cascade_overhead <= 0.25;
  size_t graph_nodes = 0, graph_edges = 0;
  bool graph_cycle = false;
  if (cascaded.cascade.has_value()) {
    graph_nodes = cascaded.cascade->nodes.size();
    graph_edges = cascaded.cascade->edges.size();
    graph_cycle = cascaded.cascade->has_cycle;
  }

  // Pairwise + group planning over a 64-trigger slice (2016 pairs),
  // witnesses off for layer comparability.
  const size_t kSlice = n < 64 ? n : 64;
  std::string slice_source = MakeRulebase(kSlice);
  t0 = Clock::now();
  AnalysisReport sliced = AnalyzeSpecSource(slice_source, witness_off);
  t1 = Clock::now();
  double pairwise_s = Seconds(t0, t1);
  size_t pairs = kSlice * (kSlice - 1) / 2;

  // The same slice with witnesses on: the pairwise sweep produces
  // hundreds of findings here, so this measures real witness synthesis
  // (joint-alphabet recompiles, product BFS, oracle replays), not a
  // no-findings fast path.
  t0 = Clock::now();
  AnalysisReport sliced_witnessed = AnalyzeSpecSource(slice_source);
  t1 = Clock::now();
  double pairwise_witness_s = Seconds(t0, t1);
  double pairwise_witness_slowdown = pairwise_witness_s / pairwise_s;

  std::string json = StrFormat(
      "{\n"
      "  \"bench\": \"analyze\",\n"
      "  \"rulebase_triggers\": %zu,\n"
      "  \"compiled_triggers\": %zu,\n"
      "  \"layers\": {\n"
      "    \"parse\": {\"seconds\": %.6f, \"specs_per_sec\": %.1f},\n"
      "    \"spec_check\": {\"seconds\": %.6f, \"specs_per_sec\": %.1f},\n"
      "    \"compile_and_automaton\": "
      "{\"seconds\": %.6f, \"specs_per_sec\": %.1f},\n"
      "    \"full_no_pairwise\": "
      "{\"seconds\": %.6f, \"specs_per_sec\": %.1f},\n"
      "    \"full_with_witnesses\": "
      "{\"seconds\": %.6f, \"specs_per_sec\": %.1f, "
      "\"witnesses\": %zu, \"witness_failures\": %zu, "
      "\"slowdown_vs_no_witness\": %.3f, \"within_2x\": %s},\n"
      "    \"full_with_cascade\": "
      "{\"seconds\": %.6f, \"specs_per_sec\": %.1f, "
      "\"graph_nodes\": %zu, \"graph_edges\": %zu, \"has_cycle\": %s, "
      "\"overhead_vs_no_cascade\": %.3f, \"within_25pct\": %s},\n"
      "    \"pairwise_and_groups_64\": "
      "{\"seconds\": %.6f, \"pairs\": %zu, \"pairs_per_sec\": %.1f},\n"
      "    \"pairwise_with_witnesses_64\": "
      "{\"seconds\": %.6f, \"witnesses\": %zu, \"witness_failures\": %zu, "
      "\"slowdown_vs_no_witness\": %.3f}\n"
      "  },\n"
      "  \"specs_per_sec\": %.1f,\n"
      "  \"layer1_diagnostics\": %zu,\n"
      "  \"pairwise_findings_64\": %zu\n"
      "}\n",
      n, compiled, parse_s, n / parse_s, spec_check_s, n / spec_check_s,
      automaton_s, n / automaton_s, full_s, n / full_s, witness_s,
      n / witness_s, witnessed.witnesses, witnessed.witness_failures,
      witness_slowdown, witness_ok ? "true" : "false", cascade_s,
      n / cascade_s, graph_nodes, graph_edges, graph_cycle ? "true" : "false",
      cascade_overhead, cascade_ok ? "true" : "false", pairwise_s, pairs,
      pairs / pairwise_s, pairwise_witness_s, sliced_witnessed.witnesses,
      sliced_witnessed.witness_failures, pairwise_witness_slowdown,
      n / full_s, layer1_diags, sliced.pair_findings.size());

  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fputs(json.c_str(), out);
  std::fclose(out);
  std::fputs(json.c_str(), stdout);
  std::fprintf(stderr, "wrote %s (%zu triggers analyzed, %zu compiled)\n",
               out_path, full.triggers.size(), compiled);
  if (!witness_ok) {
    std::fprintf(stderr,
                 "witness engine slowdown %.2fx exceeds the 2x acceptance "
                 "bound\n",
                 witness_slowdown);
    return 1;
  }
  if (!cascade_ok) {
    std::fprintf(stderr,
                 "cascade analysis overhead %.1f%% exceeds the 25%% "
                 "acceptance bound\n",
                 cascade_overhead * 100.0);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ode

int main(int argc, char** argv) { return ode::Run(argc, argv); }
