// Network ingest throughput: events/sec through the full loopback stack
// (IngestClient → TCP → IngestServer → IngestRuntime) as a function of
// shard count and worker batch size, against the in-process Post() path
// as the baseline. The wire protocol's pipelining (buffered POSTs,
// cumulative ACKs roughly every 1024 accepted posts) is what keeps the
// network path within shouting distance of in-process ingest; the
// acceptance bar (BENCH_net_ingest.json, compared against
// BENCH_ingest.json by bench/run_ingest_bench.sh) is >= 50% of the
// in-process rate at batch >= 128 on loopback.
#include <benchmark/benchmark.h>

#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "ode/database.h"
#include "runtime/ingest_runtime.h"

namespace ode {
namespace {

using runtime::IngestOptions;
using runtime::IngestRuntime;

constexpr size_t kObjects = 16;
constexpr int kEventsPerIter = 4096;

// Same schema as bench_ingest so the two JSON reports compare
// like-for-like: a live counting trigger, state-event postings off.
ClassDef BenchClass() {
  ClassDef def("cell");
  def.AddAttr("v", Value(0));
  def.AddAttr("touches", Value(0));
  def.AddMethod(MethodDef{
      "add",
      {{"int", "d"}},
      MethodKind::kUpdate,
      [](MethodContext* ctx) -> Status {
        ODE_ASSIGN_OR_RETURN(Value v, ctx->Get("v"));
        ODE_ASSIGN_OR_RETURN(Value d, ctx->Arg("d"));
        ODE_ASSIGN_OR_RETURN(Value next, v.Add(d));
        return ctx->Set("v", next);
      }});
  def.AddTrigger("T1(): perpetual every 3 (after add) ==> count");
  def.SetPostingPolicy(EventPostingPolicy{
      /*method_events=*/true, /*access_events=*/false,
      /*read_update_events=*/false});
  return def;
}

std::vector<Oid> Setup(Database* db) {
  (void)db->RegisterAction("count", [](const ActionContext& ctx) -> Status {
    Result<Value> t = ctx.db->PeekAttr(ctx.self, "touches");
    if (!t.ok()) return t.status();
    Result<Value> next = t->Add(Value(1));
    if (!next.ok()) return next.status();
    return ctx.db->SetAttr(ctx.txn, ctx.self, "touches", *next);
  });
  (void)db->RegisterClass(BenchClass());
  std::vector<Oid> oids;
  TxnId t = db->Begin().value();
  for (size_t i = 0; i < kObjects; ++i) {
    Oid oid = db->New(t, "cell").value();
    (void)db->ActivateTrigger(t, oid, "T1");
    oids.push_back(oid);
  }
  (void)db->Commit(t);
  return oids;
}

/// The full network path on loopback: pipelined POSTs from one client,
/// DRAIN as the end-of-iteration barrier (which is also what forces the
/// reply stream to be consumed inside the timed region).
void BM_NetIngestLoopback(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  const size_t batch = static_cast<size_t>(state.range(1));
  Database db;
  std::vector<Oid> oids = Setup(&db);
  IngestOptions opts;
  opts.num_shards = shards;
  opts.max_batch = batch;
  opts.queue_capacity = 4096;
  opts.record_latency = false;
  IngestRuntime rt(&db, opts);
  (void)rt.Start();
  net::IngestServer server(&rt);
  (void)server.Start();

  net::ClientOptions client_options;
  client_options.port = server.port();
  client_options.recv_timeout_ms = 30000;
  net::IngestClient client(client_options);
  (void)client.Connect();

  size_t next = 0;
  for (auto _ : state) {
    for (int i = 0; i < kEventsPerIter; ++i) {
      (void)client.Post(oids[next++ % kObjects], "add", {Value(1)});
    }
    (void)client.Drain();
  }
  server.Stop();
  (void)rt.Stop();
  state.SetItemsProcessed(state.iterations() * kEventsPerIter);
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["batch"] = static_cast<double>(batch);
  state.counters["acked"] = static_cast<double>(client.stats().acked);
}
BENCHMARK(BM_NetIngestLoopback)
    ->ArgsProduct({{1, 2, 4}, {1, 16, 128, 512}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// In-process reference with identical runtime settings, so the report
/// carries its own baseline (run_ingest_bench.sh computes the ratio).
void BM_NetBaselineInProcess(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  const size_t batch = static_cast<size_t>(state.range(1));
  Database db;
  std::vector<Oid> oids = Setup(&db);
  IngestOptions opts;
  opts.num_shards = shards;
  opts.max_batch = batch;
  opts.queue_capacity = 4096;
  opts.record_latency = false;
  IngestRuntime rt(&db, opts);
  (void)rt.Start();
  size_t next = 0;
  for (auto _ : state) {
    for (int i = 0; i < kEventsPerIter; ++i) {
      (void)rt.Post(oids[next++ % kObjects], "add", {Value(1)});
    }
    (void)rt.Drain();
  }
  (void)rt.Stop();
  state.SetItemsProcessed(state.iterations() * kEventsPerIter);
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["batch"] = static_cast<double>(batch);
}
BENCHMARK(BM_NetBaselineInProcess)
    ->ArgsProduct({{1, 2, 4}, {1, 16, 128, 512}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace ode
