// Network ingest throughput: events/sec through the full loopback stack
// (IngestClient → TCP → IngestServer → IngestRuntime) as a function of
// shard count and worker batch size, against the in-process Post() path
// as the baseline. The wire protocol's pipelining (buffered POSTs,
// cumulative ACKs roughly every 1024 accepted posts) is what keeps the
// network path within shouting distance of in-process ingest; the
// acceptance bar (BENCH_net_ingest.json, compared against
// BENCH_ingest.json by bench/run_ingest_bench.sh) is >= 50% of the
// in-process rate at batch >= 128 on loopback.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "ode/database.h"
#include "runtime/ingest_runtime.h"

namespace ode {
namespace {

using runtime::BackpressurePolicy;
using runtime::IngestOptions;
using runtime::IngestRuntime;

constexpr size_t kObjects = 16;
constexpr int kEventsPerIter = 4096;

// Same schema as bench_ingest so the two JSON reports compare
// like-for-like: a live counting trigger, state-event postings off. The
// extra `slow` method exists only for the stalled-peer scenario: it
// burns ~0.5ms per event, so a peer spraying it at one shard wedges that
// shard's queue.
ClassDef BenchClass() {
  ClassDef def("cell");
  def.AddAttr("v", Value(0));
  def.AddAttr("touches", Value(0));
  def.AddMethod(MethodDef{
      "add",
      {{"int", "d"}},
      MethodKind::kUpdate,
      [](MethodContext* ctx) -> Status {
        ODE_ASSIGN_OR_RETURN(Value v, ctx->Get("v"));
        ODE_ASSIGN_OR_RETURN(Value d, ctx->Arg("d"));
        ODE_ASSIGN_OR_RETURN(Value next, v.Add(d));
        return ctx->Set("v", next);
      }});
  def.AddMethod(MethodDef{
      "slow",
      {},
      MethodKind::kUpdate,
      [](MethodContext* ctx) -> Status {
        std::this_thread::sleep_for(std::chrono::microseconds(500));
        ODE_ASSIGN_OR_RETURN(Value v, ctx->Get("v"));
        ODE_ASSIGN_OR_RETURN(Value next, v.Add(Value(1)));
        return ctx->Set("v", next);
      }});
  def.AddTrigger("T1(): perpetual every 3 (after add) ==> count");
  def.SetPostingPolicy(EventPostingPolicy{
      /*method_events=*/true, /*access_events=*/false,
      /*read_update_events=*/false});
  return def;
}

std::vector<Oid> Setup(Database* db) {
  (void)db->RegisterAction("count", [](const ActionContext& ctx) -> Status {
    Result<Value> t = ctx.db->PeekAttr(ctx.self, "touches");
    if (!t.ok()) return t.status();
    Result<Value> next = t->Add(Value(1));
    if (!next.ok()) return next.status();
    return ctx.db->SetAttr(ctx.txn, ctx.self, "touches", *next);
  });
  (void)db->RegisterClass(BenchClass());
  std::vector<Oid> oids;
  TxnId t = db->Begin().value();
  for (size_t i = 0; i < kObjects; ++i) {
    Oid oid = db->New(t, "cell").value();
    (void)db->ActivateTrigger(t, oid, "T1");
    oids.push_back(oid);
  }
  (void)db->Commit(t);
  return oids;
}

/// The full network path on loopback: pipelined POSTs from one client,
/// DRAIN as the end-of-iteration barrier (which is also what forces the
/// reply stream to be consumed inside the timed region).
void BM_NetIngestLoopback(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  const size_t batch = static_cast<size_t>(state.range(1));
  Database db;
  std::vector<Oid> oids = Setup(&db);
  IngestOptions opts;
  opts.num_shards = shards;
  opts.max_batch = batch;
  opts.queue_capacity = 4096;
  opts.record_latency = false;
  IngestRuntime rt(&db, opts);
  (void)rt.Start();
  net::IngestServer server(&rt);
  (void)server.Start();

  net::ClientOptions client_options;
  client_options.port = server.port();
  client_options.recv_timeout_ms = 30000;
  net::IngestClient client(client_options);
  (void)client.Connect();

  size_t next = 0;
  for (auto _ : state) {
    for (int i = 0; i < kEventsPerIter; ++i) {
      (void)client.Post(oids[next++ % kObjects], "add", {Value(1)});
    }
    (void)client.Drain();
  }
  server.Stop();
  (void)rt.Stop();
  state.SetItemsProcessed(state.iterations() * kEventsPerIter);
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["batch"] = static_cast<double>(batch);
  state.counters["acked"] = static_cast<double>(client.stats().acked);
}
BENCHMARK(BM_NetIngestLoopback)
    ->ArgsProduct({{1, 2, 4}, {1, 16, 128, 512}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// In-process reference with identical runtime settings, so the report
/// carries its own baseline (run_ingest_bench.sh computes the ratio).
void BM_NetBaselineInProcess(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  const size_t batch = static_cast<size_t>(state.range(1));
  Database db;
  std::vector<Oid> oids = Setup(&db);
  IngestOptions opts;
  opts.num_shards = shards;
  opts.max_batch = batch;
  opts.queue_capacity = 4096;
  opts.record_latency = false;
  IngestRuntime rt(&db, opts);
  (void)rt.Start();
  size_t next = 0;
  for (auto _ : state) {
    for (int i = 0; i < kEventsPerIter; ++i) {
      (void)rt.Post(oids[next++ % kObjects], "add", {Value(1)});
    }
    (void)rt.Drain();
  }
  (void)rt.Stop();
  state.SetItemsProcessed(state.iterations() * kEventsPerIter);
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["batch"] = static_cast<double>(batch);
}
BENCHMARK(BM_NetBaselineInProcess)
    ->ArgsProduct({{1, 2, 4}, {1, 16, 128, 512}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// The head-of-line scenario behind the multi-threaded front end: one
/// peer sprays `slow` events at a single kBlock shard until its queue
/// wedges (and the peer's frames park in its deferred queue), while a
/// healthy client keeps posting `add` to the other shards with a PING
/// round trip as the per-iteration barrier (DRAIN would wait on the
/// wedged shard by design). run_ingest_bench.sh demands the stalled
/// variant holds >= 80% of the unstalled items/sec: a full shard may
/// slow exactly one connection, never the front end.
void RunStalledPeerBench(benchmark::State& state, bool with_stalled_peer) {
  Database db;
  std::vector<Oid> oids = Setup(&db);
  IngestOptions opts;
  opts.num_shards = 4;
  opts.max_batch = 128;
  // Roomy enough that the healthy burst (kEventsPerIter spread over the
  // non-victim shards) rarely defers; the victim shard still wedges in
  // well under a second at ~2k slow ev/s.
  opts.queue_capacity = 2048;
  opts.backpressure = BackpressurePolicy::kBlock;
  opts.record_latency = false;
  IngestRuntime rt(&db, opts);
  (void)rt.Start();
  net::ServerOptions server_options;
  server_options.io_threads = 4;
  server_options.max_deferred_frames = 256;
  net::IngestServer server(&rt, server_options);
  (void)server.Start();

  const size_t victim_shard = rt.ShardOf(oids[0]);
  std::vector<Oid> healthy_oids;
  for (const Oid& oid : oids) {
    if (rt.ShardOf(oid) != victim_shard) healthy_oids.push_back(oid);
  }
  if (healthy_oids.empty()) {
    state.SkipWithError("every bench object landed on one shard");
    return;
  }

  std::atomic<bool> stop{false};
  std::thread stalled;
  if (with_stalled_peer) {
    stalled = std::thread([&] {
      net::ClientOptions stalled_options;
      stalled_options.port = server.port();
      stalled_options.recv_timeout_ms = 30000;
      stalled_options.auto_reconnect = false;
      stalled_options.flush_threshold = 4096;  // Reach the wire promptly.
      net::IngestClient peer(stalled_options);
      if (!peer.Connect().ok()) return;
      // Runs until the shutdown path severs the connection: once the
      // shard queue + deferred queue are full, read-masking makes TCP
      // pace this loop at the victim shard's ~2k ev/s.
      while (!stop.load(std::memory_order_relaxed)) {
        if (!peer.Post(oids[0], "slow").ok()) break;
        if (!peer.Flush().ok()) break;
      }
    });
    // Don't start timing until the victim shard is provably wedged: the
    // first parked frame means the queue is full and deferral is live.
    for (int spin = 0; spin < 10000 && server.frames_deferred() == 0;
         ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  net::ClientOptions client_options;
  client_options.port = server.port();
  client_options.recv_timeout_ms = 30000;
  net::IngestClient client(client_options);
  (void)client.Connect();

  size_t next = 0;
  for (auto _ : state) {
    for (int i = 0; i < kEventsPerIter; ++i) {
      (void)client.Post(healthy_oids[next++ % healthy_oids.size()], "add",
                        {Value(1)});
    }
    (void)client.Ping();
  }

  stop.store(true, std::memory_order_relaxed);
  server.Stop();  // Severs the stalled peer's socket if it is parked.
  if (stalled.joinable()) stalled.join();
  (void)rt.Stop();
  state.SetItemsProcessed(state.iterations() * kEventsPerIter);
  state.counters["shards"] = static_cast<double>(opts.num_shards);
  state.counters["batch"] = static_cast<double>(opts.max_batch);
  state.counters["stalled_peer"] = with_stalled_peer ? 1.0 : 0.0;
  state.counters["frames_deferred"] =
      static_cast<double>(server.frames_deferred());
}

// MinTime stretches both sides of the ratio over enough iterations that
// the >= 0.8 acceptance bar is judged on signal, not scheduler noise.
void BM_NetHealthyBaseline(benchmark::State& state) {
  RunStalledPeerBench(state, /*with_stalled_peer=*/false);
}
BENCHMARK(BM_NetHealthyBaseline)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(2.0)
    ->UseRealTime();

void BM_NetHealthyWithStalledPeer(benchmark::State& state) {
  RunStalledPeerBench(state, /*with_stalled_peer=*/true);
}
BENCHMARK(BM_NetHealthyWithStalledPeer)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(2.0)
    ->UseRealTime();

}  // namespace
}  // namespace ode
