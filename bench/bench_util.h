#ifndef ODE_BENCH_BENCH_UTIL_H_
#define ODE_BENCH_BENCH_UTIL_H_

#include <random>
#include <string>
#include <vector>

#include "compile/compiler.h"
#include "lang/event_parser.h"

namespace ode {
namespace bench_util {

/// The benchmark expression suite: a representative spread of the paper's
/// operators, from a single logical event to deeply composed forms.
struct NamedExpr {
  const char* name;
  const char* text;
};

inline const std::vector<NamedExpr>& ExpressionSuite() {
  static const std::vector<NamedExpr> kSuite = {
      {"atom", "after a"},
      {"union", "after a | before b | after c"},
      {"negation", "!(after a | after b)"},
      {"relative2", "relative(after a, after b)"},
      {"relative4", "relative(after a, after b, after c, after a)"},
      {"sequence3", "after a; after b; after c"},
      {"prior", "prior(after a, after b)"},
      {"choose16", "choose 16 (after a)"},
      {"every8", "every 8 (after a)"},
      {"fa", "fa(after a, after b, after c)"},
      {"faAbs", "faAbs(after a, after b, after c)"},
      {"t4_daily_report",
       "relative(at time(HR=9), prior(choose 5 (after tcommit), "
       "after tcommit) & !prior(at time(HR=9), after tcommit))"},
  };
  return kSuite;
}

inline CompiledEvent CompileNamed(int index) {
  EventExprPtr expr =
      ParseEvent(ExpressionSuite()[index].text).value();
  return CompileEvent(expr, CompileOptions()).value();
}

inline std::vector<SymbolId> MakeHistory(size_t alphabet_size, size_t length,
                                         uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dist(
      0, static_cast<int>(alphabet_size) - 1);
  std::vector<SymbolId> out(length);
  for (SymbolId& s : out) s = dist(rng);
  return out;
}

/// A chain expression of the given depth, e.g. relative(a, b, a, b, ...).
inline std::string ChainExpr(const char* op, int n) {
  std::string out(op);
  out += "(";
  for (int i = 0; i < n; ++i) {
    if (i > 0) out += ", ";
    out += (i % 2 == 0) ? "after a" : "after b";
  }
  out += ")";
  return out;
}

}  // namespace bench_util
}  // namespace ode

#endif  // ODE_BENCH_BENCH_UTIL_H_
