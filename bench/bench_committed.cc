// Experiment E15: the §6 mechanisms compared. Three ways to detect events
// over the committed history while transactions abort:
//   * kCommitted           — automaton state inside the object, undo-logged
//                            and restored on abort;
//   * kCommittedViaTransform — the §6 A′ pair-state automaton, state outside
//                            the object, never restored;
//   * kFull                — (contrast) sees aborted operations too.
// Workload: transactions of a few bumps; a fraction abort.
#include <benchmark/benchmark.h>

#include "ode/database.h"

namespace ode {
namespace {

void BM_HistoryView(benchmark::State& state) {
  const HistoryView view = static_cast<HistoryView>(state.range(0));
  const int abort_percent = static_cast<int>(state.range(1));

  DatabaseOptions opts;
  opts.record_histories = false;
  Database db(opts);
  (void)db.RegisterAction("noop", [](const ActionContext&) -> Status {
    return Status::OK();
  });
  ClassDef def("obj");
  def.AddAttr("n", Value(0));
  def.AddMethod(MethodDef{"bump", {}, MethodKind::kUpdate, nullptr});
  {
    Result<TriggerSpec> spec =
        ParseTriggerSpec("K(): perpetual every 10 (after bump) ==> noop");
    def.AddTrigger(*spec, view, /*auto_activate=*/true);
  }
  if (!db.RegisterClass(def).ok()) {
    state.SkipWithError("register failed");
    return;
  }
  TxnId setup = db.Begin().value();
  Oid obj = db.New(setup, "obj").value();
  (void)db.Commit(setup);

  uint32_t rng = 12345;
  int64_t since_gc = 0;
  for (auto _ : state) {
    TxnId t = db.Begin().value();
    (void)db.Call(t, obj, "bump");
    (void)db.Call(t, obj, "bump");
    rng = rng * 1664525u + 1013904223u;
    if (static_cast<int>(rng % 100) < abort_percent) {
      (void)db.Abort(t);
    } else {
      (void)db.Commit(t);
    }
    if (++since_gc == 1024) {
      db.txns().GarbageCollect();
      since_gc = 0;
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::string(HistoryViewName(view)) + "/abort" +
                 std::to_string(abort_percent) + "%");
  state.counters["fired"] = static_cast<double>(db.FireCount(obj, "K"));
}

void CommittedArgs(benchmark::internal::Benchmark* b) {
  for (int view = 0; view <= 2; ++view) {
    for (int abort_percent : {0, 20, 50}) {
      b->Args({view, abort_percent});
    }
  }
}
BENCHMARK(BM_HistoryView)->Apply(CommittedArgs);

// The A′ construction cost itself: pair-state blowup before minimization.
void BM_CommittedTransformBuild(benchmark::State& state) {
  Result<TriggerSpec> spec = ParseTriggerSpec(
      "K(): perpetual prior " + std::to_string(state.range(0)) +
      " (after bump) ==> noop");
  size_t states = 0;
  for (auto _ : state) {
    Result<TriggerProgram> program = CompileTrigger(
        *spec, HistoryView::kCommittedViaTransform, CompileOptions());
    if (!program.ok()) {
      state.SkipWithError("compile failed");
      return;
    }
    states = program->ActiveDfa().num_states();
    benchmark::DoNotOptimize(*program);
  }
  state.counters["aprime_states"] = static_cast<double>(states);
}
BENCHMARK(BM_CommittedTransformBuild)->Arg(2)->Arg(8)->Arg(32);

}  // namespace
}  // namespace ode
